"""Shared settings for the benchmark harness.

Every benchmark regenerates one of the paper's figures at a laptop-friendly
scale (fewer workloads and shorter traces than the paper, same structure).
The measured quantity is the wall-clock cost of regenerating the figure; the
figure's data series are attached to ``benchmark.extra_info`` and printed so
the shapes can be compared against the paper (see EXPERIMENTS.md).

Scale knobs can be raised through environment variables:

* ``REPRO_BENCH_WORKLOADS``     — workloads per (core count, category) cell,
* ``REPRO_BENCH_INSTRUCTIONS``  — instructions per core,
"""

from __future__ import annotations

import os

# Benchmarks measure figure *regeneration*: a warm content-addressed result
# cache would reduce them to pickle-load timings, so the cache is off here
# unless the caller explicitly sets REPRO_CACHE (e.g. to benchmark warm runs).
os.environ.setdefault("REPRO_CACHE", "0")

import pytest

from repro.experiments.figure6 import Figure6Settings
from repro.experiments.sweep import SweepSettings

WORKLOADS = int(os.environ.get("REPRO_BENCH_WORKLOADS", "1"))
INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "10000"))
INTERVAL = max(2_000, INSTRUCTIONS // 4)


@pytest.fixture(scope="session")
def sweep_settings() -> SweepSettings:
    """Accuracy-sweep size used by the Figure 3/4/5 benchmarks."""
    return SweepSettings(
        core_counts=(2, 4),
        categories=("H", "M", "L"),
        workloads_per_category=WORKLOADS,
        instructions_per_core=INSTRUCTIONS,
        interval_instructions=INTERVAL,
        collect_components=True,
    )


@pytest.fixture(scope="session")
def figure6_settings() -> Figure6Settings:
    """Case-study size used by the Figure 6 benchmark."""
    return Figure6Settings(
        core_counts=(4,),
        categories=("H", "M", "L"),
        workloads_per_category=WORKLOADS,
        instructions_per_core=max(INSTRUCTIONS, 20_000),
        interval_instructions=INTERVAL,
        repartition_interval_cycles=20_000.0,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
