"""Benchmark regenerating Figure 3: private-mode prediction accuracy.

Prints, per (core count, category) cell, the average per-benchmark absolute
RMS error of the IPC estimates (Figure 3a) and the SMS-load stall-cycle
estimates (Figure 3b) for ITCA, PTCA, ASM, GDP and GDP-O.
"""

from repro.experiments.figure3 import run_figure3

from benchmarks.conftest import run_once


def test_bench_figure3_accuracy_matrix(benchmark, sweep_settings):
    result = run_once(benchmark, run_figure3, sweep_settings)
    print()
    print(result.report())
    benchmark.extra_info["figure3a_ipc_rms"] = result.ipc_rms
    benchmark.extra_info["figure3b_stall_rms"] = result.stall_rms
    # Shape check mirroring the paper's headline: dataflow accounting is at
    # least as accurate as the architecture-centric baselines on the
    # contended H cells.
    for cell, errors in result.ipc_rms.items():
        if cell.endswith("-H"):
            assert min(errors["GDP"], errors["GDP-O"]) <= max(errors["ITCA"], errors["PTCA"])
