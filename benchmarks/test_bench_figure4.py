"""Benchmark regenerating Figure 4: sorted stall-cycle RMS error distributions."""

from repro.experiments.figure4 import run_figure4

from benchmarks.conftest import run_once


def test_bench_figure4_error_distributions(benchmark, sweep_settings):
    result = run_once(benchmark, run_figure4, sweep_settings)
    print()
    print(result.report())
    benchmark.extra_info["figure4_medians"] = {
        n_cores: {technique: result.median(n_cores, technique) for technique in by_technique}
        for n_cores, by_technique in result.distributions.items()
    }
    for n_cores, by_technique in result.distributions.items():
        for technique, series in by_technique.items():
            assert series == sorted(series)
