"""Benchmark regenerating Figure 5: GDP-O component estimation accuracy.

Reports the relative RMS error distributions of the CPL estimate (5a), the
overlap estimate (5b) and DIEF's private-latency estimate (5c).
"""

from repro.experiments.figure5 import run_figure5

from benchmarks.conftest import run_once


def test_bench_figure5_component_accuracy(benchmark, sweep_settings):
    result = run_once(benchmark, run_figure5, sweep_settings)
    print()
    print(result.report())
    benchmark.extra_info["figure5_medians"] = {
        component: {cell: result.median(component, cell) for cell in cells}
        for component, cells in result.distributions.items()
    }
    # The paper's key observation: the CPL median relative error is small for
    # the contended cells (it is the component GDP's accuracy rests on).
    for cell in result.distributions["cpl"]:
        if cell.endswith("-H"):
            assert abs(result.median("cpl", cell)) < 1.0
