"""Benchmark regenerating Figure 6: system throughput with LLC partitioning.

Reports the average STP of LRU, UCP, ASM-driven partitioning, MCP and MCP-O
per workload category (6a) and the per-workload STP of the H-workloads
relative to LRU (6b).
"""

from repro.experiments.figure6 import run_figure6

from benchmarks.conftest import run_once


def test_bench_figure6_partitioning_throughput(benchmark, figure6_settings):
    result = run_once(benchmark, run_figure6, figure6_settings)
    print()
    print(result.report())
    benchmark.extra_info["figure6a_average_stp"] = result.average_stp
    # Shape check: on the contended H cell, model-based partitioning (MCP or
    # MCP-O) must beat the unmanaged LRU baseline.
    for cell, stp in result.average_stp.items():
        if cell.endswith("-H"):
            assert max(stp.get("MCP", 0.0), stp.get("MCP-O", 0.0)) > stp["LRU"]
