"""Benchmarks regenerating Figure 7: GDP-O sensitivity analysis.

One benchmark per panel: LLC size, LLC associativity, DDR2 channel count,
DDR2-vs-DDR4, PRB entries and mixed workloads — each reporting GDP-O's
average absolute IPC RMS error for the 4-core H/M/L categories.
"""

import pytest

from repro.experiments.figure7 import Figure7Settings, run_figure7_panel
from repro.experiments.tables import format_cell_table

from benchmarks.conftest import INSTRUCTIONS, INTERVAL, WORKLOADS, run_once

SETTINGS = Figure7Settings(
    categories=("H", "M", "L"),
    workloads_per_category=WORKLOADS,
    instructions_per_core=INSTRUCTIONS,
    interval_instructions=INTERVAL,
)

PANELS = (
    "llc_size",
    "llc_associativity",
    "dram_channels",
    "dram_interface",
    "prb_entries",
    "mixed_workloads",
)


@pytest.mark.parametrize("panel", PANELS)
def test_bench_figure7_panel(benchmark, panel):
    cells = run_once(benchmark, run_figure7_panel, panel, SETTINGS)
    print()
    print(f"Figure 7 ({panel}): GDP-O average absolute IPC RMS error")
    print(format_cell_table(cells))
    benchmark.extra_info[f"figure7_{panel}"] = cells
    for row in cells.values():
        for value in row.values():
            assert value >= 0.0
