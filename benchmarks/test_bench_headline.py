"""Benchmark regenerating the paper's headline aggregates (Sections I and VII).

Reports the reproduction's equivalents of:

* GDP's mean IPC estimation error on the 4-core and 8-core CMPs,
* the accuracy advantage of GDP over invasive ASM accounting,
* GDP-O's stall-cycle RMS reduction relative to GDP,
* MCP's average STP improvement over ASM-driven partitioning and LRU.
"""

from repro.experiments.figure6 import Figure6Settings
from repro.experiments.summary import run_headline_summary
from repro.experiments.sweep import SweepSettings

from benchmarks.conftest import INSTRUCTIONS, INTERVAL, WORKLOADS, run_once


def test_bench_headline_summary(benchmark):
    sweep_settings = SweepSettings(
        core_counts=(4, 8),
        categories=("H", "M", "L"),
        workloads_per_category=WORKLOADS,
        instructions_per_core=INSTRUCTIONS,
        interval_instructions=INTERVAL,
    )
    figure6_settings = Figure6Settings(
        core_counts=(4, 8),
        categories=("H",),
        workloads_per_category=WORKLOADS,
        instructions_per_core=max(INSTRUCTIONS, 20_000),
        interval_instructions=INTERVAL,
        repartition_interval_cycles=20_000.0,
    )
    result = run_once(
        benchmark,
        run_headline_summary,
        sweep_settings=sweep_settings,
        figure6_settings=figure6_settings,
    )
    print()
    print(result.report())
    benchmark.extra_info["mean_ipc_error"] = result.mean_ipc_error
    benchmark.extra_info["mcp_vs_asm_stp_improvement"] = result.mcp_vs_asm_stp_improvement
    benchmark.extra_info["mcp_vs_lru_stp_improvement"] = result.mcp_vs_lru_stp_improvement
    # Shape checks on the headline claims: GDP is more accurate than ASM, and
    # MCP improves throughput over unmanaged LRU.
    for n_cores, ratio in result.gdp_vs_asm_rms_ratio.items():
        assert ratio > 1.0
    for n_cores, improvement in result.mcp_vs_lru_stp_improvement.items():
        assert improvement > -0.05
