"""Service-submit latency probe for the scenario service.

Measures the full HTTP round trip of submitting a scenario whose result is
already in the scenario-level artifact cache and fetching the result:
request parsing, spec validation, whole-spec digesting, artifact-store load
and two JSON responses.  The simulation itself runs exactly once, *outside*
the measured region — the probe tracks the service's serving overhead, which
is what a regression in the HTTP/job-manager/artifact layers would move.
"""

from __future__ import annotations

import threading

from benchmarks.conftest import INSTRUCTIONS, INTERVAL

SPEC = {
    "name": "bench-service-submit",
    "kind": "accuracy",
    "machine": {"core_counts": [2], "llc_kilobytes": 64},
    "workloads": {"groups": ["H"], "per_group": 1},
    "techniques": ["GDP"],
    "instructions_per_core": min(INSTRUCTIONS, 4000),
    "interval_instructions": min(INTERVAL, 2000),
}


def test_bench_service_submit_latency(benchmark, tmp_path):
    from repro.experiments.common import shutdown_executor
    from repro.service import ArtifactStore, ServiceClient, create_server

    server = create_server(
        port=0, sweep_jobs=1,
        artifacts=ArtifactStore(tmp_path / "artifacts", max_bytes=1 << 22),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.port}")
    try:
        # Populate the scenario-level cache once (the only simulation).
        first = client.submit(SPEC)
        assert client.wait(first["id"], timeout=600)["state"] == "done"

        def submit_round_trip():
            job = client.submit(SPEC)
            return client.result(job["id"])

        result = benchmark(submit_round_trip)
        assert "tables" in result
        stats = client.stats()
        assert stats["scenario_cache"]["hits"] >= 1
        benchmark.extra_info["scenario_cache_hits"] = stats["scenario_cache"]["hits"]
    finally:
        server.shutdown()
        server.server_close()
        server.manager.shutdown()
        shutdown_executor()
