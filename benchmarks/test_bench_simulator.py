"""Micro-benchmarks of the simulator substrate itself.

These do not correspond to a paper figure; they track the cost of the building
blocks (single-core simulation, shared-mode co-simulation, CPL estimation) so
performance regressions in the substrate are visible independently of the
figure-level benchmarks.
"""

from repro.core.cpl import estimate_interval_cpl
from repro.experiments.common import default_experiment_config
from repro.sim.runner import build_trace, run_private_mode, run_shared_mode

INSTRUCTIONS = 10_000


def test_bench_private_mode_simulation(benchmark):
    config = default_experiment_config(4)
    trace = build_trace("art_like", INSTRUCTIONS, seed=0)
    result = benchmark(run_private_mode, trace, config)
    assert result.cpi > 0


def test_bench_shared_mode_simulation_4core(benchmark):
    config = default_experiment_config(4)
    names = ["art_like", "lbm_like", "hmmer_like", "wrf_like"]
    traces = {core: build_trace(name, INSTRUCTIONS, seed=core) for core, name in enumerate(names)}

    def run():
        return run_shared_mode(traces, config, target_instructions=INSTRUCTIONS)

    result = benchmark(run)
    assert all(core.instructions == INSTRUCTIONS for core in result.cores.values())


def test_bench_cpl_estimation(benchmark):
    config = default_experiment_config(4)
    trace = build_trace("sphinx3_like", INSTRUCTIONS, seed=0)
    interval = run_private_mode(trace, config, interval_instructions=INSTRUCTIONS).intervals[0]
    result = benchmark(estimate_interval_cpl, interval, 32)
    assert result.cpl >= 0
