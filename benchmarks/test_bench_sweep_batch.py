"""Benchmark the cross-cell vectorised sweep kernel (cells per second).

Sweep-dominated scenarios replay many independent per-cell cache and ATD
states over long access streams.  This benchmark stacks ``LANES`` such cells
and replays them through :class:`~repro.cache.batch.BatchedCacheReplay` and
:class:`~repro.cache.batch.BatchedATDReplay` with the resolved kernel
(numpy when available), then measures the pure-Python per-cell kernel once
outside the timed region so the reported ``speedup`` row compares the two on
identical inputs.  ``cells_per_second`` is the headline number pinned in
``baseline.json``.

Scale knobs:

* ``REPRO_BENCH_BATCH_LANES``    — sweep cells per batch (default 128),
* ``REPRO_BENCH_BATCH_ACCESSES`` — accesses per cell (default 10000).

The defaults keep the stacked arrays cache-resident (the kernel's sweet
spot); past roughly 3M total accesses the numpy kernel turns bandwidth-bound
and the advantage narrows to ~2x.
"""

from __future__ import annotations

import os
import random
import time

from repro.cache.batch import BatchedATDReplay, BatchedCacheReplay, resolve_vec_kernel
from repro.config import CacheConfig

from benchmarks.conftest import run_once

LANES = int(os.environ.get("REPRO_BENCH_BATCH_LANES", "128"))
ACCESSES = int(os.environ.get("REPRO_BENCH_BATCH_ACCESSES", "10000"))

CONFIG = CacheConfig(
    size_bytes=128 * 1024,
    associativity=16,
    latency=30,
    mshrs=16,
    line_bytes=64,
)


def _streams(lanes: int, accesses: int):
    rng = random.Random(1234)
    addresses, stores = [], []
    for _ in range(lanes):
        base = rng.randrange(0, 1 << 20) & ~63
        lane_addresses = []
        for _ in range(accesses):
            # A mix of streaming and reuse, the shape sweep cells see.
            if rng.random() < 0.7:
                base = (base + 64) & ((1 << 26) - 1)
                lane_addresses.append(base)
            else:
                lane_addresses.append(rng.randrange(0, 1 << 22) & ~63)
        addresses.append(lane_addresses)
        stores.append([a % 256 == 0 for a in lane_addresses])
    return addresses, stores


def _replay_all(kernel: str, addresses, stores):
    cache = BatchedCacheReplay(CONFIG, len(addresses), kernel=kernel)
    cache.run(addresses, stores)
    atd = BatchedATDReplay(CONFIG, len(addresses), sampled_sets=32, kernel=kernel)
    atd.run(addresses)
    return cache, atd


def test_bench_sweep_batch_kernel(benchmark):
    kernel = resolve_vec_kernel()
    addresses, stores = _streams(LANES, ACCESSES)

    cache, atd = run_once(benchmark, _replay_all, kernel, addresses, stores)
    elapsed = benchmark.stats.stats.min
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["lanes"] = LANES
    benchmark.extra_info["accesses_per_lane"] = ACCESSES
    benchmark.extra_info["cells_per_second"] = LANES / elapsed

    # One untimed per-cell (pure Python) replay of the same inputs for the
    # speedup row; skipped when the resolved kernel already is python.
    if kernel != "python":
        started = time.perf_counter()
        reference, reference_atd = _replay_all("python", addresses, stores)
        per_cell_elapsed = time.perf_counter() - started
        benchmark.extra_info["per_cell_seconds"] = per_cell_elapsed
        benchmark.extra_info["speedup_vs_per_cell"] = per_cell_elapsed / elapsed
        print(f"\nbatched {kernel}: {elapsed:.3f}s  per-cell python: "
              f"{per_cell_elapsed:.3f}s  speedup: {per_cell_elapsed / elapsed:.2f}x  "
              f"({LANES / elapsed:.1f} cells/s)")
        # The batched kernel must agree with the per-cell replay exactly.
        assert cache.hits == reference.hits and cache.misses == reference.misses
        for lane in (0, LANES // 2, LANES - 1):
            assert atd.hit_position_histogram(lane) == \
                reference_atd.hit_position_histogram(lane)
    else:
        print(f"\nbatched python fallback: {elapsed:.3f}s "
              f"({LANES / elapsed:.1f} cells/s)")
