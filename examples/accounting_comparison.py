#!/usr/bin/env python3
"""Compare every accounting technique on a latency-sensitive co-location scenario.

The scenario is the one the paper's introduction motivates: a latency-
sensitive application (a pointer-chasing, cache-sensitive workload standing in
for an interactive service) shares a CMP with three memory-hungry batch jobs.
An interference-aware OS scheduler or a data-centre operator wants to know how
much the latency-sensitive application is being slowed down — without
perturbing it.  The script runs ITCA, PTCA, ASM, GDP and GDP-O and compares
their private-mode IPC estimates against the measured private-mode run.

Run with:  python examples/accounting_comparison.py
"""

from repro import (
    ASMAccounting,
    GDPAccounting,
    GDPOAccounting,
    ITCAAccounting,
    PTCAAccounting,
    build_trace,
    default_experiment_config,
    run_private_mode,
    run_shared_mode,
)
from repro.baselines import install_asm_rotation
from repro.metrics import rms

INSTRUCTIONS = 24_000
INTERVAL = 6_000
LATENCY_SENSITIVE = "omnetpp_like"      # pointer-heavy, LLC-sensitive
BATCH_JOBS = ["lbm_like", "sphinx3_like", "ammp_like"]


def main() -> None:
    config = default_experiment_config(4)
    workload = [LATENCY_SENSITIVE, *BATCH_JOBS]
    traces = {core: build_trace(name, INSTRUCTIONS, seed=core) for core, name in enumerate(workload)}

    print(f"Co-location scenario: {LATENCY_SENSITIVE} (latency-sensitive) vs {', '.join(BATCH_JOBS)}")
    print("Running shared mode (transparent techniques observe this run)...")
    shared = run_shared_mode(
        traces, config, target_instructions=INSTRUCTIONS, interval_instructions=INTERVAL
    )
    print("Running shared mode again with ASM's epoch priority rotation (invasive)...")
    shared_asm = run_shared_mode(
        traces, config, target_instructions=INSTRUCTIONS, interval_instructions=INTERVAL,
        configure_system=install_asm_rotation,
    )
    print("Running the latency-sensitive application alone for ground truth...\n")
    private = run_private_mode(traces[0], config, core_id=0, interval_instructions=INTERVAL)

    techniques = {
        "ITCA": (ITCAAccounting(), shared),
        "PTCA": (PTCAAccounting(), shared),
        "ASM": (ASMAccounting(n_cores=4, epoch_cycles=config.accounting.asm_epoch_cycles), shared_asm),
        "GDP": (GDPAccounting(), shared),
        "GDP-O": (GDPOAccounting(), shared),
    }

    slowdown = shared.cores[0].cpi / private.cpi
    print(f"Measured slowdown of {LATENCY_SENSITIVE}: {slowdown:.2f}x "
          f"(shared CPI {shared.cores[0].cpi:.2f} vs private CPI {private.cpi:.2f})\n")

    header = f"{'technique':<8} {'mean IPC estimate':>18} {'true IPC':>9} {'per-interval RMS error':>23}"
    print(header)
    print("-" * len(header))
    for name, (technique, run) in techniques.items():
        intervals = run.cores[0].intervals
        paired = min(len(intervals), len(private.intervals))
        estimates = [technique.estimate(intervals[i]) for i in range(paired)]
        errors = [estimates[i].ipc - private.intervals[i].ipc for i in range(paired)]
        mean_ipc = sum(e.ipc for e in estimates) / len(estimates)
        print(f"{name:<8} {mean_ipc:>18.3f} {private.ipc:>9.3f} {rms(errors):>23.4f}")

    print("\nTransparent dataflow accounting (GDP/GDP-O) recovers the interference-free")
    print("performance of the latency-sensitive application without giving it special")
    print("treatment in the memory controller, which is what ASM has to do.")


if __name__ == "__main__":
    main()
