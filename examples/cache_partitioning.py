#!/usr/bin/env python3
"""Model-based Cache Partitioning (MCP) on a contended LLC — the Figure 6 scenario.

Four cache-sensitive applications fight over a shared LLC that cannot hold all
of their working sets.  The script compares how the system fares under:

* LRU         — an unmanaged, shared LLC,
* UCP         — miss-minimising utility-based partitioning,
* ASM         — partitioning driven by the invasive ASM slowdown estimates,
* MCP / MCP-O — the paper's policy, driven by GDP / GDP-O estimates and an
                online System Throughput model.

System Throughput (STP) is computed against true private-mode runs, exactly as
the paper evaluates Figure 6.

Run with:  python examples/cache_partitioning.py
"""

from repro.experiments.case_study import evaluate_workload_throughput
from repro.experiments.common import default_experiment_config
from repro.workloads.mixes import Workload

INSTRUCTIONS = 40_000
INTERVAL = 6_000
REPARTITION_CYCLES = 20_000.0
BENCHMARKS = ("art_like", "sphinx3_like", "ammp_like", "lbm_like")


def main() -> None:
    config = default_experiment_config(4)
    workload = Workload(name="example-4c-H", benchmarks=BENCHMARKS, category="H")

    llc_kb = config.llc.size_bytes // 1024
    print(f"Workload: {', '.join(BENCHMARKS)}")
    print(f"Shared LLC: {llc_kb} KB, {config.llc.associativity}-way "
          f"(working sets together exceed the LLC)\n")
    print("Running every policy plus the private-mode reference runs; this takes a moment...\n")

    result = evaluate_workload_throughput(
        workload,
        config,
        instructions_per_core=INSTRUCTIONS,
        interval_instructions=INTERVAL,
        repartition_interval_cycles=REPARTITION_CYCLES,
    )

    header = f"{'policy':<7} {'STP':>7} {'vs LRU':>8}"
    print(header)
    print("-" * len(header))
    lru = result.stp.get("LRU", 0.0)
    for policy, stp in result.stp.items():
        relative = stp / lru if lru > 0 else 0.0
        print(f"{policy:<7} {stp:>7.3f} {relative:>7.2f}x")

    print("\nPer-core shared-mode CPI under each policy (lower is better):")
    for policy, cpis in result.shared_cpis.items():
        rendered = ", ".join(
            f"{BENCHMARKS[core]}={cpi:.1f}" for core, cpi in sorted(cpis.items())
        )
        print(f"  {policy:<7} {rendered}")

    best = max(result.stp, key=result.stp.get)
    print(f"\nBest policy for this workload: {best}.")
    print("MCP's advantage comes from combining the ATD miss curves with GDP's")
    print("private-mode performance estimates, so it protects the working sets that")
    print("contribute most to system throughput rather than just minimising misses.")


if __name__ == "__main__":
    main()
