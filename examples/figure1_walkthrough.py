#!/usr/bin/env python3
"""Walk through the paper's Figure 1 example with a hand-built event stream.

The paper motivates dataflow accounting with a small scenario: five loads
(L1..L5) and five commit periods (C1..C5), where L1-L3 overlap each other,
L4 and L5 are serviced in parallel, and the critical path of the resulting
dataflow graph contains two loads.  This script rebuilds that scenario from
hand-written load/stall events, constructs the dataflow graph with the
offline reference implementation, runs the PRB/PCB-based online estimator
(Algorithms 1-3), and evaluates GDP and GDP-O exactly as Section IV-A does.

Run with:  python examples/figure1_walkthrough.py
"""

from repro.core.cpl import CPLEstimator
from repro.core.dataflow_graph import build_dataflow_graph
from repro.core.performance_model import CPIComponents, private_mode_cpi
from repro.cpu.events import CommitStall, LoadRecord, StallCause, annotate_overlap

# The shared-mode timeline, loosely following Figure 1a: times are in cycles.
# L1, L2 and L3 issue during the first commit period and are serviced in
# parallel (with staggered completions caused by memory-controller
# serialisation); L4 and L5 issue later and overlap each other.
LOADS = [
    LoadRecord(instr_index=10, address=0x1000, issue_time=20.0, completion_time=170.0,
               is_sms=True, latency=150.0),
    LoadRecord(instr_index=30, address=0x2000, issue_time=30.0, completion_time=230.0,
               is_sms=True, latency=200.0),
    LoadRecord(instr_index=50, address=0x3000, issue_time=40.0, completion_time=290.0,
               is_sms=True, latency=250.0),
    LoadRecord(instr_index=120, address=0x4000, issue_time=330.0, completion_time=470.0,
               is_sms=True, latency=140.0),
    LoadRecord(instr_index=140, address=0x5000, issue_time=340.0, completion_time=480.0,
               is_sms=True, latency=140.0),
]

# Commit stalls: the processor stalls when the load at the head of the ROB has
# not completed, and resumes when it does.
STALLS = [
    CommitStall(start=60.0, end=170.0, cause=StallCause.SMS_LOAD, load_address=0x1000, load_is_sms=True),
    CommitStall(start=185.0, end=230.0, cause=StallCause.SMS_LOAD, load_address=0x2000, load_is_sms=True),
    CommitStall(start=245.0, end=290.0, cause=StallCause.SMS_LOAD, load_address=0x3000, load_is_sms=True),
    CommitStall(start=360.0, end=470.0, cause=StallCause.SMS_LOAD, load_address=0x4000, load_is_sms=True),
    CommitStall(start=475.0, end=480.0, cause=StallCause.SMS_LOAD, load_address=0x5000, load_is_sms=True),
]

INTERVAL_START = 0.0
INTERVAL_END = 500.0
INSTRUCTIONS = 190
COMMIT_CYCLES = 190.0
PRIVATE_LATENCY = 140.0  # the example assumes a perfect private-mode latency estimate


def main() -> None:
    annotate_overlap(LOADS, STALLS)

    print("Step 1: the offline dataflow graph (rules 1 and 2 of Section II)")
    graph = build_dataflow_graph(LOADS, STALLS, INTERVAL_START, INTERVAL_END)
    print(f"  commit periods : {len(graph.commit_periods)}")
    print(f"  SMS loads      : {len(graph.loads)}")
    for index, load in enumerate(graph.loads):
        parent = graph.load_parent[index]
        child = graph.load_child[index]
        print(f"    L{index + 1}: parent commit period C{parent + 1}, feeds commit period "
              f"C{child + 1 if child >= 0 else '-'}")
    cpl_offline = graph.critical_path_length()
    print(f"  critical path length (offline reference) : {cpl_offline}")

    print("\nStep 2: the online PRB/PCB estimator (Algorithms 1-3)")
    estimator = CPLEstimator(prb_entries=32)
    result = estimator.replay(LOADS, STALLS)
    print(f"  critical path length (online estimator)  : {result.cpl}")
    print(f"  average commit/load overlap               : {result.average_overlap:.1f} cycles")

    print("\nStep 3: GDP and GDP-O private-mode estimates (Section IV-A)")
    components = CPIComponents(
        instructions=INSTRUCTIONS,
        commit_cycles=COMMIT_CYCLES,
        independent_stall_cycles=0.0,
        pms_stall_cycles=0.0,
        sms_stall_cycles=sum(stall.cycles for stall in STALLS),
        other_stall_cycles=0.0,
    )
    gdp_stalls = result.cpl * PRIVATE_LATENCY
    gdp_cpi = private_mode_cpi(components, gdp_stalls, other_stall_estimate=0.0)
    gdp_o_stalls = result.cpl * max(0.0, PRIVATE_LATENCY - result.average_overlap)
    gdp_o_cpi = private_mode_cpi(components, gdp_o_stalls, other_stall_estimate=0.0)

    print(f"  GDP   : sigma_SMS = CPL x lambda = {result.cpl} x {PRIVATE_LATENCY:.0f} "
          f"= {gdp_stalls:.0f} cycles  ->  CPI estimate {gdp_cpi:.2f}")
    print(f"  GDP-O : sigma_SMS = CPL x (lambda - O) = {result.cpl} x "
          f"({PRIVATE_LATENCY:.0f} - {result.average_overlap:.0f}) = {gdp_o_stalls:.0f} cycles"
          f"  ->  CPI estimate {gdp_o_cpi:.2f}")
    print("\nAs in the paper's example, GDP slightly overestimates the stall cycles because")
    print("it ignores the cycles where the CPU commits while loads are pending; GDP-O")
    print("subtracts the measured overlap and lands closer to the true private-mode CPI.")


if __name__ == "__main__":
    main()
