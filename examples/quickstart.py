#!/usr/bin/env python3
"""Quickstart: estimate interference-free performance of co-running applications.

The script builds a 4-core CMP (the paper's Table I configuration, scaled for
short traces), runs a mixed multi-programmed workload in shared mode, and uses
GDP and GDP-O to estimate what each application's performance *would have
been* with the memory system to itself.  It then runs the actual private-mode
simulations and reports the estimation error, which is the paper's core
accuracy experiment in miniature.

Run with:  python examples/quickstart.py
"""

from repro import (
    GDPAccounting,
    GDPOAccounting,
    build_trace,
    default_experiment_config,
    run_private_mode,
    run_shared_mode,
)

INSTRUCTIONS = 24_000
INTERVAL = 6_000
WORKLOAD = ["art_like", "lbm_like", "hmmer_like", "wrf_like"]


def main() -> None:
    config = default_experiment_config(4)
    print("CMP configuration (scaled Table I):")
    print(f"  cores            : {config.n_cores}")
    print(f"  L1 / L2 / LLC    : {config.l1d.size_bytes // 1024} KB / "
          f"{config.l2.size_bytes // 1024} KB / {config.llc.size_bytes // 1024} KB")
    print(f"  LLC organisation : {config.llc.associativity}-way, {config.llc.banks} banks")
    print(f"  DRAM             : {config.dram.timing.name}, {config.dram.channels} channel(s)")
    print(f"  PRB entries      : {config.accounting.prb_entries}")
    print()

    traces = {core: build_trace(name, INSTRUCTIONS, seed=core) for core, name in enumerate(WORKLOAD)}

    print(f"Running shared mode ({INSTRUCTIONS} instructions per core)...")
    shared = run_shared_mode(
        traces, config, target_instructions=INSTRUCTIONS, interval_instructions=INTERVAL
    )

    gdp = GDPAccounting(prb_entries=config.accounting.prb_entries)
    gdp_o = GDPOAccounting(prb_entries=config.accounting.prb_entries)

    print("Running private mode for ground truth...\n")
    header = (
        f"{'benchmark':<14} {'shared CPI':>10} {'private CPI':>11} "
        f"{'GDP est.':>9} {'GDP-O est.':>10} {'GDP err':>8} {'GDP-O err':>9}"
    )
    print(header)
    print("-" * len(header))
    for core, name in enumerate(WORKLOAD):
        private = run_private_mode(traces[core], config, core_id=core, interval_instructions=INTERVAL)
        shared_core = shared.cores[core]

        # Aggregate per-interval estimates into a whole-run CPI estimate by
        # averaging over the aligned intervals (as a resource manager would).
        gdp_cpis = [gdp.estimate(interval).cpi for interval in shared_core.intervals]
        gdp_o_cpis = [gdp_o.estimate(interval).cpi for interval in shared_core.intervals]
        gdp_cpi = sum(gdp_cpis) / len(gdp_cpis)
        gdp_o_cpi = sum(gdp_o_cpis) / len(gdp_o_cpis)

        gdp_error = (gdp_cpi - private.cpi) / private.cpi
        gdp_o_error = (gdp_o_cpi - private.cpi) / private.cpi
        print(
            f"{name:<14} {shared_core.cpi:>10.2f} {private.cpi:>11.2f} "
            f"{gdp_cpi:>9.2f} {gdp_o_cpi:>10.2f} {gdp_error:>7.1%} {gdp_o_error:>8.1%}"
        )

    print("\nGDP/GDP-O estimated the private-mode CPI of each co-running application")
    print("from shared-mode observations only (dataflow graph CPL x private latency).")


if __name__ == "__main__":
    main()
