#!/usr/bin/env python3
"""Run every figure harness at a moderate scale and dump the reports.

Used to populate EXPERIMENTS.md with measured numbers.  Larger than the
benchmark defaults, smaller than the paper (see DESIGN.md for the scaling
discussion).
"""

from __future__ import annotations

import json
import sys
import time

from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import Figure6Settings, run_figure6
from repro.experiments.figure7 import Figure7Settings, run_figure7
from repro.experiments.summary import run_headline_summary
from repro.experiments.sweep import SweepSettings, run_accuracy_sweep


def main() -> None:
    start = time.time()
    sweep_settings = SweepSettings(
        core_counts=(2, 4, 8),
        categories=("H", "M", "L"),
        workloads_per_category=2,
        instructions_per_core=16_000,
        interval_instructions=4_000,
        collect_components=True,
    )
    figure6_settings = Figure6Settings(
        core_counts=(2, 4, 8),
        categories=("H", "M", "L"),
        workloads_per_category=2,
        instructions_per_core=24_000,
        interval_instructions=6_000,
        repartition_interval_cycles=20_000.0,
    )
    figure7_settings = Figure7Settings(
        categories=("H", "M", "L"),
        workloads_per_category=2,
        instructions_per_core=12_000,
        interval_instructions=4_000,
    )

    print("== accuracy sweep ==", flush=True)
    sweep = run_accuracy_sweep(sweep_settings)
    print(f"sweep done in {time.time() - start:.0f}s", flush=True)

    figure3 = run_figure3(sweep=sweep)
    print(figure3.report(), flush=True)
    figure4 = run_figure4(sweep=sweep)
    print(figure4.report(), flush=True)
    figure5 = run_figure5(sweep=sweep)
    print(figure5.report(), flush=True)

    print("\n== figure 6 ==", flush=True)
    figure6 = run_figure6(figure6_settings)
    print(figure6.report(), flush=True)

    print("\n== figure 7 ==", flush=True)
    figure7 = run_figure7(figure7_settings)
    print(figure7.report(), flush=True)

    print("\n== headline ==", flush=True)
    headline = run_headline_summary(accuracy_sweep=sweep, figure6=figure6)
    print(headline.report(), flush=True)

    summary = {
        "figure3_ipc": figure3.ipc_rms,
        "figure3_stall": figure3.stall_rms,
        "figure6_stp": figure6.average_stp,
        "figure7": figure7.panels,
        "headline_mean_ipc_error": headline.mean_ipc_error,
        "headline_mcp_vs_asm": headline.mcp_vs_asm_stp_improvement,
        "headline_mcp_vs_lru": headline.mcp_vs_lru_stp_improvement,
        "elapsed_seconds": time.time() - start,
    }
    with open(sys.argv[1] if len(sys.argv) > 1 else "results_summary.json", "w") as handle:
        json.dump(summary, handle, indent=2, default=str)
    print(f"\ntotal elapsed: {time.time() - start:.0f}s", flush=True)


if __name__ == "__main__":
    main()
