#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and fail on wall-clock regressions.

Usage::

    python scripts/compare_bench.py BASELINE.json CURRENT.json \
        [--max-regression 0.25] [--metric min]

Benchmarks are matched by their pytest node name.  For every benchmark
present in both files the chosen statistic (default: ``min`` wall-clock,
which is the most noise-resistant point of a benchmark distribution) is
compared; the run fails (exit code 1) when any benchmark regressed by more
than ``--max-regression`` (a fraction: 0.25 means "25% slower than the
baseline").  Benchmarks that only exist on one side are reported but do not
fail the comparison, so the suite can grow without invalidating history.

Absolute timings move with the host; compare files recorded on comparable
machines (CI runners of the same class, or the same laptop).  The committed
``benchmarks/baseline.json`` is the repo's reference trajectory: regenerate
it with ``pytest benchmarks/... --benchmark-json=benchmarks/baseline.json``
whenever a PR intentionally shifts performance.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_MAX_REGRESSION = 0.25


def load_benchmarks(path: str) -> dict[str, dict]:
    """Map benchmark node name -> stats dict for one pytest-benchmark file."""
    with open(path) as handle:
        payload = json.load(handle)
    benchmarks = payload.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise SystemExit(f"{path}: not a pytest-benchmark JSON file")
    return {entry["name"]: entry.get("stats", {}) for entry in benchmarks}


def compare(baseline: dict[str, dict], current: dict[str, dict],
            max_regression: float, metric: str) -> tuple[list[str], bool]:
    """Return (report lines, failed) for the two benchmark maps."""
    lines: list[str] = []
    failed = False
    shared = sorted(set(baseline) & set(current))
    if not shared:
        return [f"no common benchmarks between the two files "
                f"({len(baseline)} baseline, {len(current)} current)"], True
    width = max(len(name) for name in shared)
    for name in shared:
        old = baseline[name].get(metric)
        new = current[name].get(metric)
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)) or old <= 0:
            lines.append(f"{name:<{width}}  SKIP (missing or invalid '{metric}' stat)")
            continue
        change = new / old - 1.0
        status = "ok"
        if change > max_regression:
            status = "REGRESSION"
            failed = True
        elif change < -max_regression:
            status = "improved"
        lines.append(
            f"{name:<{width}}  {metric} {old:.4f}s -> {new:.4f}s  "
            f"({change:+.1%})  {status}"
        )
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"{name:<{width}}  only in baseline (removed?)")
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"{name:<{width}}  only in current (new benchmark)")
    return lines, failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="reference BENCH_*.json (e.g. benchmarks/baseline.json)")
    parser.add_argument("current", help="freshly recorded BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
                        help="failure threshold as a fraction (default: 0.25 = 25%%)")
    parser.add_argument("--metric", default="min", choices=("min", "mean", "median"),
                        help="which wall-clock statistic to compare (default: min)")
    arguments = parser.parse_args(argv)
    if arguments.max_regression < 0:
        parser.error("--max-regression cannot be negative")

    baseline = load_benchmarks(arguments.baseline)
    current = load_benchmarks(arguments.current)
    lines, failed = compare(baseline, current, arguments.max_regression, arguments.metric)
    header = (f"benchmark comparison ({arguments.metric} wall-clock, "
              f"fail over +{arguments.max_regression:.0%})")
    print(header)
    print("-" * len(header))
    for line in lines:
        print(line)
    if failed:
        print("FAILED: at least one benchmark regressed past the threshold")
        return 1
    print("OK: no benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
