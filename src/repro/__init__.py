"""Reproduction of "GDP: Using Dataflow Properties to Accurately Estimate
Interference-Free Performance at Runtime" (Jahre and Eeckhout, HPCA 2018).

The package is organised bottom-up:

* substrates — :mod:`repro.workloads`, :mod:`repro.cpu`, :mod:`repro.cache`,
  :mod:`repro.interconnect`, :mod:`repro.dram`, :mod:`repro.mem` and
  :mod:`repro.sim` form a trace-driven CMP timing simulator;
* the paper's contribution — :mod:`repro.core` implements dataflow accounting
  (GDP and GDP-O) on top of :mod:`repro.latency` (DIEF latency estimation),
  with :mod:`repro.baselines` providing ITCA, PTCA and ASM for comparison;
* the case study — :mod:`repro.partitioning` implements the MCP/MCP-O cache
  partitioning policies next to LRU, UCP and ASM-driven partitioning;
* evaluation — :mod:`repro.metrics` and :mod:`repro.experiments` regenerate
  every figure in the paper's evaluation section.

Quick start::

    from repro import (
        GDPAccounting, default_experiment_config, build_trace,
        run_shared_mode,
    )

    config = default_experiment_config(4)
    traces = {core: build_trace(name, 20_000, seed=core)
              for core, name in enumerate(
                  ["art_like", "lbm_like", "hmmer_like", "wrf_like"])}
    shared = run_shared_mode(traces, config, target_instructions=20_000)
    gdp = GDPAccounting()
    for interval in shared.cores[0].intervals:
        print(gdp.estimate(interval))
"""

from repro.core import (
    AccountingTechnique,
    CPLEstimator,
    GDPAccounting,
    GDPOAccounting,
    PendingCommitBuffer,
    PendingRequestBuffer,
    PrivateModeEstimate,
)
from repro.baselines import ASMAccounting, ITCAAccounting, PTCAAccounting
from repro.latency import DIEFLatencyEstimator
from repro.partitioning import (
    ASMPartitioningPolicy,
    LRUSharingPolicy,
    MCPOPolicy,
    MCPPolicy,
    UCPPolicy,
)
from repro.experiments.common import default_experiment_config
from repro.config import CMPConfig
from repro.registry import (
    accounting_techniques,
    latency_estimators,
    partitioning_policies,
    workload_generators,
)
from repro.scenarios import ScenarioSpec, load_spec, run_scenario
from repro.sim import CMPSystem, build_trace, run_private_mode, run_shared_mode, run_workload
from repro.workloads import (
    Workload,
    benchmark_names,
    generate_category_workloads,
    generate_mixed_workloads,
    generate_trace,
    get_benchmark,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "AccountingTechnique",
    "PrivateModeEstimate",
    "GDPAccounting",
    "GDPOAccounting",
    "CPLEstimator",
    "PendingRequestBuffer",
    "PendingCommitBuffer",
    "ITCAAccounting",
    "PTCAAccounting",
    "ASMAccounting",
    "DIEFLatencyEstimator",
    "LRUSharingPolicy",
    "UCPPolicy",
    "ASMPartitioningPolicy",
    "MCPPolicy",
    "MCPOPolicy",
    "default_experiment_config",
    "CMPConfig",
    "accounting_techniques",
    "partitioning_policies",
    "latency_estimators",
    "workload_generators",
    "ScenarioSpec",
    "load_spec",
    "run_scenario",
    "CMPSystem",
    "build_trace",
    "run_private_mode",
    "run_shared_mode",
    "run_workload",
    "Workload",
    "benchmark_names",
    "generate_trace",
    "get_benchmark",
    "generate_category_workloads",
    "generate_mixed_workloads",
]
