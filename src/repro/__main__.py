"""Command-line interface for the scenario engine.

Usage::

    python -m repro list                          # catalogue + registries
    python -m repro show figure7 [--scale medium] # print a builtin's spec JSON
    python -m repro run figure3 [--scale small] [--jobs N] [--json OUT]
    python -m repro run path/to/scenario.json [--jobs N] [--json OUT]
    python -m repro run-composite path/to/composite.json [--jobs N] [--json OUT]
    python -m repro query path/to/query.json [--jobs N] [--json OUT]
    python -m repro query path/to/query.json --broker http://HOST:PORT
    python -m repro run-all [--scale small] [--jobs N] [--json OUT]
    python -m repro serve [--port P] [--jobs N] [--local-workers N]
    python -m repro worker --broker http://HOST:PORT [--jobs N] [--lease-cells N]

``run`` accepts either a built-in scenario name (see ``list``) or a path to a
JSON scenario spec — arbitrary machine/workload/estimator/sweep combinations
run without writing any Python.  Configuration mistakes (unknown scenario,
scale, technique, policy or axis names, malformed spec files) exit with
status 2 and a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro.errors import ConfigurationError

__all__ = ["main"]

DEFAULT_SCALE = "small"


def _jsonify(value):
    """Best-effort conversion of result objects to JSON-serialisable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    print(f"results written to {path}")


def _cmd_list() -> int:
    from repro import registry
    from repro.scenarios import AXIS_NAMES, SCENARIO_KINDS, builtin_scenarios

    print("Built-in scenarios (python -m repro run <name>):")
    for scenario in builtin_scenarios():
        print(f"  {scenario.name:<20} {scenario.description}")
    print("\nRegistered accounting techniques:",
          ", ".join(registry.accounting_techniques.names()))
    print("Registered partitioning policies:",
          ", ".join(registry.partitioning_policies.names()))
    print("Registered latency estimators:  ",
          ", ".join(registry.latency_estimators.names()))
    print("Registered workload generators: ",
          ", ".join(registry.workload_generators.names()))
    print("Sweep axes:                     ", ", ".join(AXIS_NAMES))
    print("Scenario kinds:                 ", ", ".join(SCENARIO_KINDS))
    print("\nCustom scenarios: python -m repro run path/to/scenario.json "
          "(see examples/scenario_spec.json)")
    print("Composite DAGs:   python -m repro run-composite path/to/composite.json "
          "(see examples/composite_spec.json)")
    print("Scenario service: python -m repro serve (HTTP job server; "
          "see README.md)")
    return 0


def _cmd_show(name: str, scale: str) -> int:
    from repro.scenarios import get_builtin

    scenario = get_builtin(name)
    specs = scenario.build_specs(scale)
    payload = [spec.to_dict() for spec in specs]
    print(json.dumps(payload[0] if len(payload) == 1 else payload, indent=2))
    return 0


def _is_spec_path(scenario: str) -> bool:
    # Only an explicit .json suffix or a path separator selects the spec-file
    # route: probing the filesystem here would let a stray file named like a
    # builtin (e.g. ./figure3) silently shadow that scenario.
    return scenario.endswith(".json") or os.path.sep in scenario


def _cmd_run(scenario: str, scale: str | None, jobs: int | None,
             json_path: str | None) -> int:
    from repro.experiments.common import shutdown_executor
    from repro.scenarios import get_builtin, load_spec, run_scenario

    try:
        if _is_spec_path(scenario):
            if scale is not None:
                raise ConfigurationError(
                    "--scale applies only to built-in scenarios; a JSON spec "
                    "carries its own budgets"
                )
            spec = load_spec(scenario)
            result = run_scenario(spec, jobs=jobs)
            payload = result.to_dict()
        else:
            builtin = get_builtin(scenario)
            result = builtin.run(scale or DEFAULT_SCALE, jobs)
            payload = {"scenario": scenario, "scale": scale or DEFAULT_SCALE,
                       "result": _jsonify(result)}
    finally:
        # The persistent pool would otherwise idle until interpreter exit.
        shutdown_executor()
    print(result.report())
    _print_cache_stats()
    if json_path:
        _write_json(json_path, payload)
    return 0


def _cmd_run_composite(path: str, jobs: int | None, json_path: str | None) -> int:
    from repro.errors import CompositeExecutionError
    from repro.experiments.common import shutdown_executor
    from repro.scenarios import load_composite, run_composite

    composite = load_composite(path)

    def observer(event: dict) -> None:
        node = event.get("node", "")
        if event["event"] == "node_progress":
            print(f"  [{node}] {event['done']}/{event['total']} cells", flush=True)
        elif event["event"] == "node_failed":
            print(f"  [{node}] FAILED: {event.get('error', '')}", flush=True)
        else:
            print(f"  [{node}] {event['event'].removeprefix('node_')}", flush=True)

    print(f"running composite '{composite.name}' "
          f"({len(composite.nodes)} nodes)")
    try:
        result = run_composite(composite, jobs=jobs, observer=observer)
    except CompositeExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.result is not None:
            print(error.result.report())
            if json_path:
                _write_json(json_path, error.result.to_dict())
        return 1
    finally:
        shutdown_executor()
    print(result.report())
    _print_cache_stats()
    if json_path:
        _write_json(json_path, result.to_dict())
    return 0


def _cmd_query(path: str, jobs: int | None, broker: str | None,
               json_path: str | None, timeout: float) -> int:
    from repro.scenarios import format_query_payload, load_query

    query = load_query(path)
    if broker is None:
        from repro.experiments.common import shutdown_executor
        from repro.scenarios import run_query

        def observer(event: dict) -> None:
            name = event.get("event", "")
            arm = event.get("arm") or event.get("candidate") or ""
            if name == "wave_done":
                print(f"  [{arm}] wave {event['wave']}: "
                      f"{event['cells']} cell(s) done", flush=True)
            elif name == "candidate_eliminated":
                print(f"  [{arm}] eliminated after "
                      f"{event['after_cells']} cell(s)", flush=True)

        print(f"answering query '{query.name}' ({query.kind})")
        try:
            result = run_query(query, jobs=jobs, observer=observer)
        finally:
            shutdown_executor()
        payload = result.to_dict()
        print(result.report())
        _print_cache_stats()
        if json_path:
            _write_json(json_path, payload)
        return 0

    from repro.service.client import ServiceClient

    broker = broker.rstrip("/")
    if not broker.startswith(("http://", "https://")):
        raise ConfigurationError(
            f"--broker must be an http(s) base URL such as "
            f"'http://127.0.0.1:8642', got {broker!r}"
        )
    client = ServiceClient(broker)
    job = client.submit_query(query)
    print(f"submitted query '{query.name}' as job {job['id']} to {broker}")
    for event in client.iter_events(job["id"]):
        name = event.get("event", "")
        if name == "wave_done":
            print(f"  [{event.get('arm', '')}] wave {event.get('wave')}: "
                  f"{event.get('cells')} cell(s) done", flush=True)
        elif name == "candidate_eliminated":
            print(f"  [{event.get('candidate', '')}] eliminated after "
                  f"{event.get('after_cells')} cell(s)", flush=True)
        elif name in ("failed", "cancelled"):
            print(f"  job {name}: {event.get('error') or ''}", flush=True)
    status = client.wait(job["id"], timeout=timeout)
    if status["state"] != "done":
        detail = f": {status['error']}" if status.get("error") else ""
        print(f"error: query job {job['id']} finished "
              f"{status['state']}{detail}", file=sys.stderr)
        return 1
    payload = client.result(job["id"])
    print(format_query_payload(payload))
    if json_path:
        _write_json(json_path, payload)
    return 0


def _cmd_run_all(scale: str | None, jobs: int | None, json_path: str | None) -> int:
    from repro.experiments.run_all import run_all

    summary = run_all(scale or DEFAULT_SCALE, jobs=jobs)
    if json_path:
        _write_json(json_path, summary)
    return 0


def _cmd_serve(port: int | None, host: str, jobs: int | None,
               local_workers: int) -> int:
    from repro.service.http import serve

    if local_workers < 0:
        raise ConfigurationError(
            f"--local-workers must be non-negative, got {local_workers}")
    return serve(port=port, host=host, sweep_jobs=jobs,
                 local_workers=local_workers)


def _cmd_worker(broker: str, worker_id: str | None, jobs: int | None,
                lease_cells: int | None, poll: float | None,
                max_leases: int | None) -> int:
    from repro.experiments.common import shutdown_executor

    broker = broker.rstrip("/")
    if not broker.startswith(("http://", "https://")):
        raise ConfigurationError(
            f"--broker must be an http(s) base URL such as "
            f"'http://127.0.0.1:8642', got {broker!r}"
        )
    # Unless the operator chose otherwise, a remote worker reads and writes
    # the *broker's* content-addressed caches, so no cell in the fleet is
    # ever computed twice.
    os.environ.setdefault("REPRO_ARTIFACT_BACKEND", "http")
    os.environ.setdefault("REPRO_ARTIFACT_URL", broker)

    from repro.service.workers.remote import RemoteWorker

    worker = RemoteWorker(broker, worker_id=worker_id, jobs=jobs,
                          lease_cells=lease_cells, poll=poll)
    print(f"worker '{worker.worker_id}' leasing from {broker} "
          f"(poll {worker.poll:g}s, up to {worker.lease_cells} cells/lease)")
    try:
        worker.run(max_leases=max_leases)
    except KeyboardInterrupt:
        print("\nworker stopping")
    finally:
        shutdown_executor()
    print(f"worker '{worker.worker_id}' ran {worker.leases_run} lease(s), "
          f"{worker.cells_run} cell(s)")
    return 0


def _print_cache_stats() -> None:
    from repro.sim.result_cache import get_result_cache

    cache = get_result_cache()
    if cache.enabled:
        stats = cache.stats
        print(f"\nresult cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.stores} stored ({cache.directory})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run GDP-reproduction scenarios (built-in figures or JSON specs).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list built-in scenarios and registries")

    show = subparsers.add_parser("show", help="print a built-in scenario's spec as JSON")
    show.add_argument("scenario")
    show.add_argument("--scale", default=DEFAULT_SCALE,
                      help="size the spec for this scale (default: small)")

    run = subparsers.add_parser("run", help="run one scenario (built-in name or JSON spec path)")
    run.add_argument("scenario", help="built-in scenario name or path to a JSON spec file")
    run.add_argument("--scale", default=None,
                     help="built-in scenario size: small, medium or large (default: small)")
    run.add_argument("--jobs", type=int, default=None,
                     help="parallel sweep workers (default: REPRO_JOBS or CPU count)")
    run.add_argument("--json", dest="json_path", metavar="OUT",
                     help="write a JSON summary to this path")

    run_composite = subparsers.add_parser(
        "run-composite",
        help="run a composite-scenario DAG from a JSON spec file")
    run_composite.add_argument(
        "composite", help="path to a JSON composite spec (see examples/composite_spec.json)")
    run_composite.add_argument("--jobs", type=int, default=None,
                               help="parallel sweep workers (default: REPRO_JOBS or CPU count)")
    run_composite.add_argument("--json", dest="json_path", metavar="OUT",
                               help="write a JSON summary to this path")

    query = subparsers.add_parser(
        "query",
        help="answer an on-demand query (best-of race, adaptive refinement, "
             "confidence sampling) from a JSON query spec")
    query.add_argument(
        "query", help="path to a JSON query spec (see examples/query_best_of.json)")
    query.add_argument("--jobs", type=int, default=None,
                       help="parallel sweep workers for in-process execution "
                            "(default: REPRO_JOBS or CPU count)")
    query.add_argument("--broker", default=None,
                       help="submit to a running scenario service instead of "
                            "executing in-process, e.g. http://127.0.0.1:8642")
    query.add_argument("--timeout", type=float, default=600.0,
                       help="broker mode: seconds to wait for the answer "
                            "(default: 600)")
    query.add_argument("--json", dest="json_path", metavar="OUT",
                       help="write the full answer payload to this path")

    run_all = subparsers.add_parser("run-all", help="run every figure plus the headline summary")
    run_all.add_argument("--scale", default=None,
                         help="small, medium or large (default: small)")
    run_all.add_argument("--jobs", type=int, default=None)
    run_all.add_argument("--json", dest="json_path", metavar="OUT")

    serve = subparsers.add_parser(
        "serve", help="run the long-lived scenario service (HTTP job server)")
    serve.add_argument("--port", type=int, default=None,
                       help="listen port (default: REPRO_SERVICE_PORT or 8642)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="sweep workers per job (default: REPRO_JOBS or CPU count)")
    serve.add_argument("--local-workers", type=int, default=1,
                       help="in-process lease workers (0 = broker-only: all "
                            "cells run on remote workers; default: 1)")

    worker = subparsers.add_parser(
        "worker", help="attach a remote worker to a scenario broker")
    worker.add_argument("--broker", required=True,
                        help="broker base URL, e.g. http://127.0.0.1:8642")
    worker.add_argument("--id", dest="worker_id", default=None,
                        help="worker name shown in /stats (default: host-pid)")
    worker.add_argument("--jobs", type=int, default=None,
                        help="local process-pool width (default: REPRO_JOBS "
                             "or CPU count)")
    worker.add_argument("--lease-cells", type=int, default=None,
                        help="max cells per lease (default: the pool width)")
    worker.add_argument("--poll", type=float, default=None,
                        help="long-poll seconds per lease request (default: "
                             "REPRO_WORKER_POLL or 2)")
    worker.add_argument("--max-leases", type=int, default=None,
                        help="exit after this many leases (default: run "
                             "until interrupted)")

    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "list":
            return _cmd_list()
        if arguments.command == "show":
            return _cmd_show(arguments.scenario, arguments.scale)
        if arguments.command == "run":
            return _cmd_run(arguments.scenario, arguments.scale, arguments.jobs,
                            arguments.json_path)
        if arguments.command == "run-composite":
            return _cmd_run_composite(arguments.composite, arguments.jobs,
                                      arguments.json_path)
        if arguments.command == "query":
            return _cmd_query(arguments.query, arguments.jobs,
                              arguments.broker, arguments.json_path,
                              arguments.timeout)
        if arguments.command == "serve":
            return _cmd_serve(arguments.port, arguments.host, arguments.jobs,
                              arguments.local_workers)
        if arguments.command == "worker":
            return _cmd_worker(arguments.broker, arguments.worker_id,
                               arguments.jobs, arguments.lease_cells,
                               arguments.poll, arguments.max_leases)
        return _cmd_run_all(arguments.scale, arguments.jobs, arguments.json_path)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
