"""Pluggable storage backends for the content-addressed artifact caches.

Both caches — per-cell results (:mod:`repro.sim.result_cache`) and
whole-scenario payloads (:mod:`repro.service.artifacts`) — address opaque
byte blobs by hex digest.  This module separates *where those bytes live*
from the cache semantics built on top, so a distributed worker fleet can
share one store:

``directory``
    One flat directory of ``<key><suffix>`` files — the historical layout of
    the scenario artifact store.
``sharded``
    ``<key[:2]>/<key><suffix>`` — two-character fan-out so directory listings
    stay manageable at hundreds of thousands of entries (the cell cache has
    always used this shape).
``http``
    A proxy to a scenario broker's ``/artifacts/{namespace}/{key}`` routes,
    so remote workers read and write the *broker's* caches instead of
    recomputing cells another machine already paid for.  Failures degrade to
    misses — a worker with a flaky link to the broker recomputes, it never
    crashes.

The backend is selected by ``REPRO_ARTIFACT_BACKEND`` (default
``directory``); ``http`` additionally needs ``REPRO_ARTIFACT_URL`` pointing
at the broker (``python -m repro worker`` defaults both to its ``--broker``
URL).  Validation is strict with did-you-mean hints, mirroring
``REPRO_VEC_BATCH``: a typo must surface at startup, not as a silent cache
miss storm deep into a fleet run.
"""

from __future__ import annotations

import os
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "ARTIFACT_BACKENDS",
    "ArtifactBackend",
    "DirectoryBackend",
    "HTTPArtifactBackend",
    "ShardedDirectoryBackend",
    "artifact_url_from_env",
    "backend_from_env",
    "resolve_artifact_backend",
]

ARTIFACT_BACKENDS = ("directory", "sharded", "http")


def resolve_artifact_backend(value: str | None = None) -> str:
    """The backend name: explicit ``value``, else ``REPRO_ARTIFACT_BACKEND``.

    Unset/empty means ``directory`` (the single-node default).  Unknown names
    are a :class:`~repro.errors.ConfigurationError` with a did-you-mean hint
    — the same eager strictness as ``REPRO_VEC_BATCH``/``REPRO_JOBS``.
    """
    if value is None:
        env = os.environ.get("REPRO_ARTIFACT_BACKEND")
        if env is None or env.strip() == "":
            return "directory"
        value = env
    name = str(value).strip().lower()
    if name not in ARTIFACT_BACKENDS:
        from repro.registry import suggest_name

        raise ConfigurationError(
            f"REPRO_ARTIFACT_BACKEND must be one of: "
            f"{', '.join(ARTIFACT_BACKENDS)}; got {value!r}"
            f"{suggest_name(name, ARTIFACT_BACKENDS)}"
        )
    return name


def artifact_url_from_env() -> str | None:
    """The broker base URL selected by ``REPRO_ARTIFACT_URL`` (http backend)."""
    env = os.environ.get("REPRO_ARTIFACT_URL")
    if env is None or env.strip() == "":
        return None
    url = env.strip().rstrip("/")
    if not url.startswith(("http://", "https://")):
        raise ConfigurationError(
            f"REPRO_ARTIFACT_URL must be an http(s) base URL such as "
            f"'http://127.0.0.1:8642', got {env!r}"
        )
    return url


class ArtifactBackend:
    """Where one cache family's byte blobs live, addressed by hex key.

    ``listable`` backends (the directory kinds) additionally expose entry
    paths so LRU eviction and inspection keep working; the HTTP proxy is not
    listable — the broker owns eviction of its own stores.
    """

    kind = "abstract"
    listable = False
    # Reads that failed for a reason other than the entry being absent
    # (unreadable file, non-404 HTTP failure); the caches built on top fold
    # this into their error stats to keep miss and corruption distinguishable.
    read_errors = 0

    def get(self, key: str) -> bytes | None:
        raise NotImplementedError

    def put(self, key: str, data: bytes) -> bool:
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        return False

    def touch(self, key: str) -> None:
        """Mark an entry recently used (LRU aid; best-effort no-op remotely)."""

    def path_for(self, key: str) -> Path:
        raise ConfigurationError(
            f"the '{self.kind}' artifact backend has no local entry paths"
        )

    def entry_paths(self) -> list[Path]:
        """Local entry files, least recently used first ([] when not listable)."""
        return []


class DirectoryBackend(ArtifactBackend):
    """One flat directory of ``<key><suffix>`` files with atomic writes."""

    kind = "directory"
    listable = True

    def __init__(self, directory: str | os.PathLike, suffix: str = ".bin"):
        self.directory = Path(directory)
        self.suffix = suffix
        self.read_errors = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}{self.suffix}"

    def get(self, key: str) -> bytes | None:
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            # Unreadable entry: drop it so the recompute can overwrite.
            self.read_errors += 1
            self.delete(key)
            return None

    def put(self, key: str, data: bytes) -> bool:
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.write(data)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except Exception:
            # A full disk must degrade to "no artifact", never fail the job.
            return False
        return True

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        return True

    def touch(self, key: str) -> None:
        try:
            now = time.time()
            os.utime(self.path_for(key), (now, now))
        except OSError:
            pass

    def _glob_pattern(self) -> str:
        return f"*{self.suffix}"

    def entry_paths(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        stamped = []
        for path in self.directory.glob(self._glob_pattern()):
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue
        return [path for _mtime, path in sorted(stamped, key=lambda item: item[0])]


class ShardedDirectoryBackend(DirectoryBackend):
    """``<key[:2]>/<key><suffix>`` fan-out for very large stores."""

    kind = "sharded"

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}{self.suffix}"

    def _glob_pattern(self) -> str:
        return f"??/*{self.suffix}"


class HTTPArtifactBackend(ArtifactBackend):
    """Proxy to a scenario broker's ``/artifacts/{namespace}/{key}`` routes.

    Every failure — broker down, 404, timeout — degrades to a miss (``get``)
    or a dropped write (``put``): a remote worker must keep computing when
    its cache link flakes, exactly as a full local disk degrades.
    """

    kind = "http"
    listable = False

    def __init__(self, base_url: str, namespace: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.namespace = namespace
        self.timeout = timeout
        self.read_errors = 0

    def _url(self, key: str) -> str:
        return f"{self.base_url}/artifacts/{self.namespace}/{key}"

    def get(self, key: str) -> bytes | None:
        request = urllib.request.Request(self._url(key), method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            if error.code != 404:
                self.read_errors += 1
            return None
        except (urllib.error.URLError, OSError, ValueError):
            self.read_errors += 1
            return None

    def put(self, key: str, data: bytes) -> bool:
        request = urllib.request.Request(
            self._url(key), data=data, method="PUT",
            headers={"Content-Type": "application/octet-stream"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                return True
        except (urllib.error.URLError, OSError, ValueError):
            return False


def backend_from_env(directory: str | os.PathLike, suffix: str,
                     namespace: str) -> ArtifactBackend:
    """Build the environment-selected backend for one cache family.

    ``directory``/``suffix`` shape the local kinds; ``namespace`` routes the
    HTTP kind to the right broker store (``cells`` or ``scenarios``).
    """
    name = resolve_artifact_backend()
    if name == "http":
        url = artifact_url_from_env()
        if url is None:
            raise ConfigurationError(
                "REPRO_ARTIFACT_BACKEND=http requires REPRO_ARTIFACT_URL to "
                "point at a scenario broker (e.g. 'http://127.0.0.1:8642')"
            )
        return HTTPArtifactBackend(url, namespace)
    if name == "sharded":
        return ShardedDirectoryBackend(directory, suffix=suffix)
    return DirectoryBackend(directory, suffix=suffix)
