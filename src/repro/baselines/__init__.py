"""Baseline accounting techniques the paper compares against: ITCA, PTCA and ASM."""

from repro.baselines.asm import ASMAccounting, asm_priority_core, install_asm_rotation
from repro.baselines.itca import ITCAAccounting
from repro.baselines.ptca import PTCAAccounting

__all__ = [
    "ASMAccounting",
    "asm_priority_core",
    "install_asm_rotation",
    "ITCAAccounting",
    "PTCAAccounting",
]
