"""ASM: the Application Slowdown Model (Subramanian et al.), the invasive baseline.

ASM periodically gives each core the highest priority in the memory controller
for one *epoch* (a few thousand cycles) and measures the application's shared-
cache access rate during those epochs.  The ratio of that "alone" cache access
rate to the cache access rate measured over the whole interval estimates the
application's slowdown, from which a private-mode CPI estimate follows:

    slowdown  = CAR_alone / CAR_shared
    pi_hat    = CPI_shared / slowdown

ASM is *invasive*: rotating the memory-controller priority changes the
schedule for every core.  The paper shows two consequences this reproduction
recreates:

* backlogs — a core that just finished a string of low-priority epochs spends
  its own high-priority epoch draining queued requests, so its measured
  "alone" behaviour is not its real private-mode behaviour (Figure 1c); and
* degenerate estimates — when nearly every cycle of the high-priority epochs
  is an interference-induced stall, the effective cycle count ASM divides by
  becomes tiny and the slowdown (and hence the IPC estimate) explodes, which
  is the paper's explanation for the enormous 8-core L-workload errors.

Use :func:`install_asm_rotation` to enable the epoch-based priority rotation
in a shared-mode run before estimating with :class:`ASMAccounting`.
"""

from __future__ import annotations

from repro.core.base import AccountingTechnique, PrivateModeEstimate
from repro.core.performance_model import components_from_interval
from repro.cpu.events import IntervalStats
from repro.sim.system import CMPSystem

__all__ = ["ASMAccounting", "install_asm_rotation", "asm_priority_core"]

# Guard against division by vanishing effective cycle counts; chosen small so
# the degenerate behaviour the paper describes still shows up as huge errors.
_MIN_EFFECTIVE_CYCLES = 1.0


def asm_priority_core(epoch_index: int, n_cores: int) -> int:
    """The core that holds memory-controller priority during ``epoch_index``."""
    return epoch_index % n_cores


def install_asm_rotation(system: CMPSystem, epoch_cycles: float | None = None) -> None:
    """Install ASM's epoch-based priority rotation on a shared-mode run.

    Must be called before ``system.run()``; typically passed via the runner's
    ``configure_system`` hook.
    """
    period = epoch_cycles or float(system.config.accounting.asm_epoch_cycles)
    n_cores = len(system.cores)
    core_ids = sorted(system.cores)

    def rotate(now: float, sim: CMPSystem) -> None:
        epoch = int(now // period)
        sim.hierarchy.set_priority_core(core_ids[asm_priority_core(epoch, n_cores)])

    # Give core 0 priority from the start of the run.
    system.hierarchy.set_priority_core(core_ids[0])
    system.add_periodic_hook(period, rotate)


class ASMAccounting(AccountingTechnique):
    """Invasive accounting from per-epoch cache-access-rate measurements."""

    name = "ASM"

    def __init__(self, n_cores: int, epoch_cycles: float = 2_000.0):
        self.n_cores = n_cores
        self.epoch_cycles = epoch_cycles

    def estimate(self, interval: IntervalStats) -> PrivateModeEstimate:
        components = components_from_interval(interval)
        shared_cpi = interval.cpi

        car_alone = self._alone_cache_access_rate(interval)
        total_cycles = max(interval.total_cycles, _MIN_EFFECTIVE_CYCLES)
        car_shared = interval.llc_accesses / total_cycles

        if car_alone > 0 and car_shared > 0:
            slowdown = max(1.0, car_alone / car_shared)
        else:
            # Without LLC traffic during the high-priority epochs ASM falls
            # back to assuming no slowdown.
            slowdown = 1.0
        cpi = shared_cpi / slowdown if slowdown > 0 else shared_cpi

        # For the stall-cycle comparison (Figure 3b) the paper combines ASM's
        # slowdown estimate with the performance model: the SMS-stall estimate
        # is whatever cycle count is left after the components that carry over
        # from the shared mode.
        estimated_cycles = cpi * components.instructions
        carried_over = (
            components.commit_cycles
            + components.independent_stall_cycles
            + components.pms_stall_cycles
            + components.other_stall_cycles
        )
        sms_stall_estimate = max(0.0, estimated_cycles - carried_over)

        return PrivateModeEstimate(
            core=interval.core,
            interval_index=interval.index,
            cpi=cpi,
            ipc=1.0 / cpi if cpi > 0 else 0.0,
            sms_stall_cycles=sms_stall_estimate,
        )

    # ------------------------------------------------------------------ internals

    def _alone_cache_access_rate(self, interval: IntervalStats) -> float:
        """Cache access rate measured over the core's high-priority epochs.

        ASM's refinement excludes cycles attributable to interference from the
        denominator; when stalls on interference-induced misses dominate the
        high-priority epochs the denominator collapses and the access rate
        (and the resulting slowdown) explodes — the failure mode the paper
        reports for applu.
        """
        high_priority_epochs = [
            epoch
            for epoch in interval.epoch_instructions
            if asm_priority_core(epoch, self.n_cores) == interval.core % self.n_cores
        ]
        if not high_priority_epochs:
            return 0.0
        accesses = sum(interval.epoch_sms_accesses.get(epoch, 0) for epoch in high_priority_epochs)
        cycles = len(high_priority_epochs) * self.epoch_cycles
        stall_cycles = sum(interval.epoch_stall_cycles.get(epoch, 0.0) for epoch in high_priority_epochs)

        interference_fraction = 0.0
        if interval.sms_latency_sum > 0:
            interference_fraction = min(1.0, interval.interference_sum / interval.sms_latency_sum)
        effective_cycles = max(_MIN_EFFECTIVE_CYCLES, cycles - stall_cycles * interference_fraction)
        return accesses / effective_cycles
