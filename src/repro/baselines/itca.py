"""ITCA: Inter-Task Conflict-Aware accounting (Luque et al.), an architecture-centric baseline.

ITCA takes the shared-mode execution as the baseline and discounts cycles only
when one of a small set of architectural conditions holds, the most important
being a commit stall whose head-of-ROB load is an *inter-task* (interference)
miss.  The conditions catch only part of the interference — in particular
memory-bus queueing behind other cores is not covered — so ITCA's private-mode
estimates stay close to the shared-mode measurement and are conservative.
That is exactly the behaviour the paper reports: good for workloads with
negligible interference, large errors otherwise.
"""

from __future__ import annotations

from repro.core.base import AccountingTechnique, PrivateModeEstimate
from repro.core.performance_model import components_from_interval, private_mode_cpi
from repro.cpu.events import IntervalStats

__all__ = ["ITCAAccounting"]


class ITCAAccounting(AccountingTechnique):
    """Condition-based accounting: subtract stall cycles matching ITCA's conditions."""

    name = "ITCA"

    def estimate(self, interval: IntervalStats) -> PrivateModeEstimate:
        components = components_from_interval(interval)

        # The ATD only samples a subset of LLC sets, so the inter-task-miss
        # condition can only be evaluated exactly for loads mapping to sampled
        # sets; for the remaining LLC misses the sampled inter-task-miss rate
        # is extrapolated, as a sampling-based hardware implementation would.
        sampled_rate = 0.0
        if interval.sampled_llc_misses > 0:
            sampled_rate = min(1.0, interval.interference_misses / interval.sampled_llc_misses)

        discounted = 0.0
        for load in interval.loads:
            if not (load.is_sms and load.caused_stall and not load.llc_hit):
                continue
            if load.interference_miss is True:
                # Condition (i): commit is stalled and the load at the head of
                # the ROB is an inter-task (interference-induced) LLC miss.
                # ITCA accounts the whole stall on such a load as interference.
                discounted += load.stall_cycles
            elif load.interference_miss is None:
                discounted += load.stall_cycles * sampled_rate
        sms_stall_estimate = max(0.0, components.sms_stall_cycles - discounted)

        cpi = private_mode_cpi(components, sms_stall_estimate)
        return PrivateModeEstimate(
            core=interval.core,
            interval_index=interval.index,
            cpi=cpi,
            ipc=1.0 / cpi if cpi > 0 else 0.0,
            sms_stall_cycles=sms_stall_estimate,
        )
