"""PTCA: Per-Thread Cycle Accounting (Du Bois et al.), an architecture-centric baseline.

PTCA assumes that the private-mode CPU stalls are the shared-mode stalls minus
the interference cycles the stalling load request was subjected to while the
ROB was full.  Each load is processed independently, which the paper
identifies as PTCA's central weakness: when one interference event delays a
group of loads that are serviced in parallel, PTCA subtracts the interference
from every load's stall individually and can conclude that stalls caused by
plain memory-controller serialisation would not exist in private mode.

Because this reproduction's memory controller schedules out of order, PTCA is
given the same DIEF-style interference attribution GDP uses (as in the paper's
evaluation, where PTCA uses DIEF latency estimates).
"""

from __future__ import annotations

from repro.core.base import AccountingTechnique, PrivateModeEstimate
from repro.core.performance_model import (
    components_from_interval,
    estimate_other_stalls,
    private_mode_cpi,
)
from repro.cpu.events import IntervalStats
from repro.latency.dief import DIEFLatencyEstimator

__all__ = ["PTCAAccounting"]


class PTCAAccounting(AccountingTechnique):
    """Architecture-centric accounting: per-load stall minus per-load interference."""

    name = "PTCA"

    def __init__(self, latency_estimator: DIEFLatencyEstimator | None = None):
        self.latency_estimator = latency_estimator or DIEFLatencyEstimator()

    def estimate(self, interval: IntervalStats) -> PrivateModeEstimate:
        components = components_from_interval(interval)
        latency = self.latency_estimator.estimate(interval)

        sms_stall_estimate = 0.0
        for load in interval.loads:
            if not (load.is_sms and load.caused_stall):
                continue
            # The stall is reduced by the interference the load suffered while
            # commit was blocked on it (ROB effectively full).  Loads are
            # treated independently — deliberately reproducing PTCA's MLP
            # blind spot.
            sms_stall_estimate += max(0.0, load.stall_cycles - load.interference_cycles)

        other_estimate = estimate_other_stalls(
            components,
            shared_latency=latency.shared_latency,
            private_latency=latency.private_latency,
        )
        cpi = private_mode_cpi(components, sms_stall_estimate, other_estimate)
        return PrivateModeEstimate(
            core=interval.core,
            interval_index=interval.index,
            cpi=cpi,
            ipc=1.0 / cpi if cpi > 0 else 0.0,
            sms_stall_cycles=sms_stall_estimate,
            private_latency=latency.private_latency,
        )
