"""Cache hierarchy components: caches, MSHRs, ATDs and miss curves."""

from repro.cache.cache import AccessOutcome, CacheLine, SetAssociativeCache
from repro.cache.mshr import MSHRFile
from repro.cache.atd import AuxiliaryTagDirectory
from repro.cache.miss_curve import MissCurve

__all__ = [
    "AccessOutcome",
    "CacheLine",
    "SetAssociativeCache",
    "MSHRFile",
    "AuxiliaryTagDirectory",
    "MissCurve",
]
