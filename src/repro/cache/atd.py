"""Auxiliary Tag Directories (ATDs) with set sampling.

An ATD tracks, for one core, the tag state the shared LLC *would* have if that
core had exclusive use of the cache.  It serves two purposes in the paper:

1. producing private-mode miss curves for the partitioning policies
   (UCP, ASM-driven partitioning and MCP), and
2. identifying *interference misses* — accesses that hit in the ATD but miss
   in the shared cache — which DIEF uses to estimate the LLC component of the
   private-mode latency.

Storing full tag directories per core is expensive, so the paper (following
Qureshi et al.) samples a subset of sets and assumes they are representative.
"""

from __future__ import annotations

from repro.cache.miss_curve import MissCurve
from repro.errors import ConfigurationError
from repro.config import CacheConfig

__all__ = ["AuxiliaryTagDirectory"]


class AuxiliaryTagDirectory:
    """Per-core sampled LRU tag directory for the shared LLC."""

    def __init__(self, llc_config: CacheConfig, sampled_sets: int = 32, core: int = 0):
        llc_config.validate()
        if sampled_sets <= 0:
            raise ConfigurationError("the ATD must sample at least one set")
        self.core = core
        self.config = llc_config
        self.num_llc_sets = llc_config.num_sets
        self.associativity = llc_config.associativity
        self.line_bytes = llc_config.line_bytes
        self.sampled_sets = min(sampled_sets, self.num_llc_sets)
        # Sample sets at a regular stride so the sample spans the whole index
        # space (simple static set sampling).  Membership is the pure
        # arithmetic test ``index % stride == 0 and index // stride <
        # sampled_sets``; it is materialised once into a dense slot table so
        # the per-access hot path (here and inlined in
        # repro.mem.hierarchy._shared_access) is a single branch-free list
        # index instead of a hash lookup.
        stride = max(1, self.num_llc_sets // self.sampled_sets)
        self._stride = stride
        self._slot_by_set = [-1] * self.num_llc_sets
        for slot in range(self.sampled_sets):
            self._slot_by_set[stride * slot] = slot
        # Sampled stacks are stored densely, indexed by ``set_index // stride``
        # (the "slot").  Each stack is an LRU list of tags (index 0 = MRU).
        self._stacks: list[list[int]] = [[] for _ in range(self.sampled_sets)]
        # Kept for introspection and tests; the hot path never consults it.
        self._sampled_indices = frozenset(stride * i for i in range(self.sampled_sets))
        # Shift/mask address decomposition for power-of-two geometry, with a
        # divmod fallback (mirrors SetAssociativeCache).
        self._line_shift = self.line_bytes.bit_length() - 1
        if self.num_llc_sets & (self.num_llc_sets - 1) == 0:
            self._set_mask: int | None = self.num_llc_sets - 1
            self._tag_shift = self._line_shift + (self.num_llc_sets.bit_length() - 1)
        else:
            self._set_mask = None
            self._tag_shift = 0
        self.hit_position_histogram = [0.0] * self.associativity
        self.sampled_misses = 0.0
        self.sampled_accesses = 0.0

    # ------------------------------------------------------------------ geometry

    def set_index(self, address: int) -> int:
        if self._set_mask is not None:
            return (address >> self._line_shift) & self._set_mask
        return (address // self.line_bytes) % self.num_llc_sets

    def tag(self, address: int) -> int:
        if self._set_mask is not None:
            return address >> self._tag_shift
        return address // (self.line_bytes * self.num_llc_sets)

    def stack_for(self, set_index: int) -> list[int] | None:
        """The LRU stack sampling ``set_index``, or None when it is unsampled."""
        slot = self._slot_by_set[set_index]
        if slot < 0:
            return None
        return self._stacks[slot]

    def samples(self, address: int) -> bool:
        """True when the address maps to a sampled set."""
        return self.stack_for(self.set_index(address)) is not None

    @property
    def sampling_factor(self) -> float:
        """Multiplier converting sampled counts into full-cache counts."""
        return self.num_llc_sets / self.sampled_sets

    # ------------------------------------------------------------------ access

    def access(self, address: int) -> bool | None:
        """Record one access by this core.

        Returns True for an ATD hit, False for an ATD miss and None when the
        address does not map to a sampled set (in which case no state changes).
        """
        mask = self._set_mask
        if mask is not None:
            index = (address >> self._line_shift) & mask
        else:
            index = (address // self.line_bytes) % self.num_llc_sets
        stack = self.stack_for(index)
        if stack is None:
            return None
        if mask is not None:
            tag = address >> self._tag_shift
        else:
            tag = address // (self.line_bytes * self.num_llc_sets)
        return self.access_sampled(stack, tag)

    def access_sampled(self, stack: list[int], tag: int) -> bool:
        """Record one access already known to map to the sampled ``stack``.

        Hot-path entry point: the memory hierarchy computes the set index and
        tag once (they are shared with the LLC lookup) and calls this only for
        sampled sets.
        """
        self.sampled_accesses += 1
        try:
            position = stack.index(tag)
        except ValueError:
            self.sampled_misses += 1
            stack.insert(0, tag)
            if len(stack) > self.associativity:
                stack.pop()
            return False
        self.hit_position_histogram[position] += 1
        del stack[position]
        stack.insert(0, tag)
        return True

    def would_hit(self, address: int) -> bool | None:
        """Non-destructive probe: would the private-mode LLC hit this address?"""
        stack = self.stack_for(self.set_index(address))
        if stack is None:
            return None
        return self.tag(address) in stack

    # ------------------------------------------------------------------ miss curves

    def miss_curve(self, scale_to_full_cache: bool = True) -> MissCurve:
        """Return the miss curve accumulated since the last reset."""
        curve = MissCurve.from_hit_histogram(self.hit_position_histogram, self.sampled_misses)
        if scale_to_full_cache:
            return curve.scaled(self.sampling_factor)
        return curve

    def reset_statistics(self) -> None:
        """Clear histogram counters (tag state is retained across intervals)."""
        self.hit_position_histogram = [0.0] * self.associativity
        self.sampled_misses = 0.0
        self.sampled_accesses = 0.0

    def storage_bits(self, tag_bits: int = 28) -> int:
        """Approximate storage cost in bits (used to report the set-sampling saving)."""
        per_line = tag_bits + 1  # tag + valid
        return self.sampled_sets * self.associativity * per_line
