"""Cross-cell batched cache kernels: many independent lanes, one array program.

Sweep cells are independent, so their per-cell cache state can be *stacked*:
``BatchedCacheReplay`` evolves B single-owner set-associative LRU caches (the
private-mode LLC of B cells) as 2-D/3-D arrays indexed ``(lane, set, way)``
and replays one access per lane per step with a handful of vectorised
operations instead of B interpreted scans.  ``BatchedATDReplay`` does the
same for the sampled LRU stacks of :class:`~repro.cache.atd.AuxiliaryTagDirectory`,
producing per-lane hit-position histograms and miss curves.

Both kernels are **bit-identical** to replaying each lane through the
per-cell implementations (:class:`~repro.cache.cache.SetAssociativeCache`
with a single owning core, :class:`~repro.cache.atd.AuxiliaryTagDirectory`):
fills append to the first free slot, evictions overwrite the LRU slot in
place (first-minimum tie-break, ages are unique), way-limited lanes recycle
their own LRU line exactly like a partition allocation of that many ways.
``tests/test_kernel_equivalence.py`` pins this with randomized streams.

Two kernels back the same API:

* ``numpy`` — the batch dimension vectorises: each step is ~a dozen array
  operations over ``(lanes, ways)`` slices regardless of the lane count.
* ``python`` — per-lane replay through the per-cell classes themselves,
  used when numpy is absent.  Identical semantics by construction.

Knobs
-----
``REPRO_VEC_BATCH``
    Sweep-submission batch size: ``0`` (default) keeps the exact per-cell
    submission path; ``N >= 1`` groups up to N sweep cells per pool
    submission (see :func:`repro.experiments.common.run_parallel`) and
    enables the shared-memory trace transport.  Neither setting changes any
    computed result, so the knob is deliberately *not* folded into result
    cache digests (same contract as fault plans).
``REPRO_VEC_KERNEL``
    ``auto`` (default) picks numpy when importable, else the pure-Python
    fallback; ``numpy`` requires numpy (a :class:`ConfigurationError` if it
    is missing); ``python`` forces the fallback.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError
from repro.config import CacheConfig

__all__ = [
    "BatchedATDReplay",
    "BatchedCacheReplay",
    "VEC_KERNELS",
    "numpy_available",
    "resolve_vec_batch",
    "resolve_vec_kernel",
]

VEC_KERNELS = ("auto", "numpy", "python")

# Words users plausibly type for an on/off knob, mapped to what they meant.
_VEC_BATCH_OFF_WORDS = ("off", "false", "no", "none", "disabled")
_VEC_BATCH_ON_WORDS = ("on", "true", "yes", "enabled", "auto", "max", "all")


def numpy_available() -> bool:
    """Whether the numpy kernel can be used in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _suggest_word(value: str, candidates) -> str | None:
    import difflib

    matches = difflib.get_close_matches(value.lower(), list(candidates), n=1)
    return matches[0] if matches else None


def resolve_vec_batch(value: int | str | None = None) -> int:
    """The sweep-submission batch size: explicit ``value``, else ``REPRO_VEC_BATCH``.

    ``0`` (the default) disables batching — the exact historical per-cell
    submission path.  Anything that is not a non-negative integer raises
    :class:`~repro.errors.ConfigurationError`, with a "did you mean" hint for
    the common on/off words (mirroring the strict ``REPRO_JOBS`` handling:
    silently clamping a typo hides it until deep inside a sweep).
    """
    if value is None:
        env = os.environ.get("REPRO_VEC_BATCH")
        if env is None or env.strip() == "":
            return 0
        value = env
    if isinstance(value, bool):
        raise ConfigurationError(
            f"REPRO_VEC_BATCH must be a non-negative integer, got {value!r}"
        )
    if isinstance(value, str):
        text = value.strip()
        try:
            value = int(text)
        except ValueError:
            hint = ""
            word = _suggest_word(text, _VEC_BATCH_OFF_WORDS + _VEC_BATCH_ON_WORDS)
            if word in _VEC_BATCH_OFF_WORDS:
                hint = " — did you mean '0' (batching off)?"
            elif word in _VEC_BATCH_ON_WORDS:
                hint = " — did you mean a positive batch size such as '16'?"
            raise ConfigurationError(
                f"REPRO_VEC_BATCH must be a non-negative integer "
                f"(0 disables batching), got {value!r}{hint}"
            ) from None
    if not isinstance(value, int) or value < 0:
        raise ConfigurationError(
            f"REPRO_VEC_BATCH must be a non-negative integer, got {value!r}"
        )
    return value


def resolve_vec_kernel(value: str | None = None) -> str:
    """The batched-kernel backend: ``'numpy'`` or ``'python'``.

    Explicit ``value`` wins, else ``REPRO_VEC_KERNEL``, else ``auto``.
    ``auto`` resolves to numpy when importable.  Requesting ``numpy`` on a
    machine without it is a configuration error (the caller asked for a
    speedup the interpreter cannot deliver — falling back silently would
    misreport every benchmark run); unknown names get a "did you mean" hint.
    """
    if value is None:
        value = os.environ.get("REPRO_VEC_KERNEL") or "auto"
    name = str(value).strip().lower()
    if name not in VEC_KERNELS:
        from repro.registry import suggest_name

        raise ConfigurationError(
            f"REPRO_VEC_KERNEL must be one of: {', '.join(VEC_KERNELS)}; "
            f"got {value!r}{suggest_name(name, VEC_KERNELS)}"
        )
    if name == "numpy" and not numpy_available():
        raise ConfigurationError(
            "REPRO_VEC_KERNEL=numpy but numpy is not importable in this "
            "interpreter — install numpy or use 'auto'/'python'"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    return name


# --------------------------------------------------------------------- helpers


def _as_streams(per_lane, lanes: int, what: str):
    streams = [list(stream) for stream in per_lane]
    if len(streams) != lanes:
        raise ConfigurationError(
            f"expected {lanes} {what} streams, got {len(streams)}"
        )
    return streams


class _Geometry:
    """Shared shift/mask (or divmod) address decomposition for one config."""

    def __init__(self, config: CacheConfig):
        config.validate()
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_bytes = config.line_bytes
        self.line_shift = config.line_bytes.bit_length() - 1
        if self.num_sets & (self.num_sets - 1) == 0:
            self.set_mask: int | None = self.num_sets - 1
            self.tag_shift = self.line_shift + (self.num_sets.bit_length() - 1)
        else:
            self.set_mask = None
            self.tag_shift = 0

    def set_index(self, address: int) -> int:
        if self.set_mask is not None:
            return (address >> self.line_shift) & self.set_mask
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        if self.set_mask is not None:
            return address >> self.tag_shift
        return address // (self.line_bytes * self.num_sets)

    def decompose_array(self, np, addresses):
        """Vectorised (set_index, tag) for an address array."""
        if self.set_mask is not None:
            return (
                (addresses >> self.line_shift) & self.set_mask,
                addresses >> self.tag_shift,
            )
        lines = addresses // self.line_bytes
        return lines % self.num_sets, addresses // (self.line_bytes * self.num_sets)


def _pad_streams(np, streams, lanes: int, what: str):
    """Stack per-lane streams into a (lanes, max_len) array + lengths.

    Equal-length streams (the common sweep shape) convert in one C-level
    ``asarray`` call; ragged batches fall back to a per-lane copy loop.
    """
    if len(streams) != lanes:
        raise ConfigurationError(
            f"expected {lanes} {what} streams, got {len(streams)}"
        )
    try:
        stacked = np.asarray(streams, dtype=np.int64)
    except ValueError:
        stacked = None
    if stacked is not None and stacked.ndim == 2:
        lengths = np.full(lanes, stacked.shape[1], dtype=np.int64)
        return stacked, lengths
    lengths = np.asarray([len(stream) for stream in streams], dtype=np.int64)
    width = int(lengths.max()) if lanes else 0
    stacked = np.zeros((lanes, width), dtype=np.int64)
    for lane, stream in enumerate(streams):
        if len(stream):
            stacked[lane, : len(stream)] = stream
    return stacked, lengths


class _BucketPlan:
    """Access streams regrouped into per-(lane, set) buckets, longest first.

    Accesses to different sets never interact (the global use counter's value
    at each access is just its position in the lane's stream, so recency
    stamps are known up front).  Stacking per-set runs therefore turns the
    sequential dimension from the stream length into the longest single-set
    run, with *every* bucket advancing one access per step.  Ordering the
    buckets longest-first makes the active set at any step a contiguous
    prefix, so the step loop reads and writes plain array views instead of
    fancy-indexed copies; :meth:`steps` additionally tiles the prefix so one
    tile's line state stays cache-resident across its steps.
    """

    def __init__(self, np, lane_of, flat_set, flat_stamp, lanes, sets):
        self.np = np
        buckets = lanes * sets
        keys = lane_of * sets + flat_set
        bucket_len = np.bincount(keys, minlength=buckets)
        self.border = np.argsort(-bucket_len, kind="stable")  # longest first
        rank = np.empty(buckets, dtype=np.int64)
        rank[self.border] = np.arange(buckets, dtype=np.int64)
        self.lenP = bucket_len[self.border]
        self.startP = np.concatenate(([0], np.cumsum(self.lenP)[:-1]))
        # Bucket-major, time order preserved inside each bucket.  Narrow
        # keys take numpy's O(n) radix path instead of mergesort.
        ranked = rank[keys]
        if buckets <= np.iinfo(np.uint16).max:
            ranked = ranked.astype(np.uint16)
        self.order = np.argsort(ranked, kind="stable")
        self.buckets = buckets
        self.lane_sorted = lane_of[self.order]
        self.stamp_sorted = flat_stamp[self.order]

    def permute_state(self, *arrays):
        """Views of per-bucket state in longest-first order (copies)."""
        return [array[self.border] for array in arrays]

    def writeback_state(self, originals, permuted):
        for original, view in zip(originals, permuted):
            original[self.border] = view

    def steps(self, tile_rows: int):
        """Yield (bucket_slice, flat_index_array) per replay step, tiled."""
        np = self.np
        for lo in range(0, self.buckets, tile_rows):
            tlen = self.lenP[lo : lo + tile_rows]
            if int(tlen[0]) == 0:
                break  # lengths only shrink from here on
            neg = -tlen
            for position in range(int(tlen[0])):
                active = int(np.searchsorted(neg, -position, side="left"))
                rows = slice(lo, lo + active)
                yield rows, self.startP[rows] + position


# --------------------------------------------------------------- cache replay


class BatchedCacheReplay:
    """B independent single-owner LRU caches replayed as one array program.

    Each lane models the private-mode cache of one sweep cell: same geometry
    across the batch (``config``), optionally a per-lane way limit
    (``ways[lane]``, equivalent to a partition allocation of that many ways
    for the lane's single core).  After :meth:`run`, per-lane ``hits`` /
    ``misses`` counters and the full line state are inspectable; the state
    layout (occupied ways are slots ``[0, size)``, evictions overwrite in
    place) matches :class:`~repro.cache.cache.SetAssociativeCache` slot for
    slot, which is what the equivalence tests compare.
    """

    def __init__(self, config: CacheConfig, lanes: int,
                 ways: list[int] | None = None, kernel: str | None = None):
        if lanes <= 0:
            raise ConfigurationError("a batched replay needs at least one lane")
        self.geometry = _Geometry(config)
        self.config = config
        self.lanes = lanes
        assoc = self.geometry.associativity
        if ways is None:
            self.ways = [assoc] * lanes
        else:
            self.ways = [max(1, min(assoc, int(limit))) for limit in ways]
            if len(self.ways) != lanes:
                raise ConfigurationError(
                    f"expected {lanes} way limits, got {len(self.ways)}"
                )
        self.kernel = resolve_vec_kernel(kernel)
        self.hits: list[int] = [0] * lanes
        self.misses: list[int] = [0] * lanes
        self._caches = None   # python kernel lane states
        self._arrays = None   # numpy kernel lane states

    # -------------------------------------------------------------- execution

    def run(self, addresses, stores=None) -> "BatchedCacheReplay":
        """Replay per-lane access streams (one sequence of addresses per lane).

        ``stores`` optionally marks store accesses per lane (parallel
        sequences of booleans); omitted means all loads.  Lanes may have
        different stream lengths.  Returns ``self`` for chaining.
        """
        if self.kernel == "numpy":
            self._run_numpy(addresses, stores)
            return self
        address_streams = _as_streams(addresses, self.lanes, "address")
        if stores is None:
            store_streams = [[False] * len(s) for s in address_streams]
        else:
            store_streams = _as_streams(stores, self.lanes, "store-flag")
            for lane in range(self.lanes):
                if len(store_streams[lane]) != len(address_streams[lane]):
                    raise ConfigurationError(
                        f"lane {lane}: {len(address_streams[lane])} addresses "
                        f"but {len(store_streams[lane])} store flags"
                    )
        self._run_python(address_streams, store_streams)
        return self

    def _run_python(self, address_streams, store_streams) -> None:
        from repro.cache.cache import SetAssociativeCache

        if self._caches is None:
            self._caches = []
            for lane in range(self.lanes):
                limited = self.ways[lane] < self.geometry.associativity
                cache = SetAssociativeCache(self.config, name=f"lane{lane}",
                                            partitioned=limited)
                if limited:
                    cache.set_partition({0: self.ways[lane]})
                self._caches.append(cache)
        for lane, cache in enumerate(self._caches):
            access_hit = cache.access_hit
            for address, store in zip(address_streams[lane], store_streams[lane]):
                access_hit(address, 0, store)
            self.hits[lane] = cache.hits
            self.misses[lane] = cache.misses

    def _run_numpy(self, addresses, stores) -> None:
        import numpy as np

        geo = self.geometry
        sets, assoc = geo.num_sets, geo.associativity
        sentinel = np.iinfo(np.int64).max
        if self._arrays is None:
            # Unoccupied ways hold an age *sentinel* so victim selection is a
            # plain row argmin (occupied stamps are always smaller, and the
            # empty-set argmin result is never used); lane_state() converts
            # the sentinels back to the reference representation.
            self._arrays = {
                "tags": np.full((self.lanes, sets, assoc), -1, dtype=np.int64),
                "last_use": np.full((self.lanes, sets, assoc), sentinel,
                                    dtype=np.int64),
                "dirty": np.zeros((self.lanes, sets, assoc), dtype=bool),
                "sizes": np.zeros((self.lanes, sets), dtype=np.int64),
                "counters": np.zeros(self.lanes, dtype=np.int64),
                "hits": np.zeros(self.lanes, dtype=np.int64),
                "misses": np.zeros(self.lanes, dtype=np.int64),
            }
        state = self._arrays
        counters = state["counters"]
        buckets = self.lanes * sets

        addr, lengths = _pad_streams(np, addresses, self.lanes, "address")
        if stores is None:
            store = np.zeros(addr.shape, dtype=bool)
        else:
            store, store_lengths = _pad_streams(np, stores, self.lanes,
                                                "store-flag")
            if not np.array_equal(store_lengths, lengths):
                lane = int(np.nonzero(store_lengths != lengths)[0][0])
                raise ConfigurationError(
                    f"lane {lane}: {int(lengths[lane])} addresses "
                    f"but {int(store_lengths[lane])} store flags"
                )
            store = store.astype(bool)
        if int(lengths.sum()) == 0:
            return

        set_all, tag_all = geo.decompose_array(np, addr)
        if bool((lengths == addr.shape[1]).all()):
            width = addr.shape[1]
            lane_of = np.repeat(np.arange(self.lanes, dtype=np.int64), width)
            flat_set = set_all.reshape(-1)
            flat_tag = tag_all.reshape(-1)
            flat_store = store.reshape(-1)
            flat_stamp = (np.tile(np.arange(1, width + 1, dtype=np.int64),
                                  self.lanes)
                          + np.repeat(counters, width))
        else:
            step_range = np.arange(addr.shape[1], dtype=np.int64)
            valid = step_range[None, :] < lengths[:, None]
            lane_of, time_of = np.nonzero(valid)  # row-major: time order kept
            flat_set = set_all[lane_of, time_of]
            flat_tag = tag_all[lane_of, time_of]
            flat_store = store[lane_of, time_of]
            flat_stamp = counters[lane_of] + time_of + 1

        plan = _BucketPlan(np, lane_of, flat_set, flat_stamp,
                           self.lanes, sets)
        sorted_tag = flat_tag[plan.order]
        sorted_store = flat_store[plan.order]
        sorted_stamp = plan.stamp_sorted
        tags2d = state["tags"].reshape(buckets, assoc)
        ages2d = state["last_use"].reshape(buckets, assoc)
        dirty2d = state["dirty"].reshape(buckets, assoc)
        sizes1d = state["sizes"].reshape(buckets)
        tagsP, agesP, dirtyP, sizesP = plan.permute_state(
            tags2d, ages2d, dirty2d, sizes1d)
        effP = np.repeat(np.asarray(self.ways, dtype=np.int64), sets)[plan.border]

        hit_sorted = np.zeros(plan.order.size, dtype=bool)
        tile_rows = max(1024, (1 << 18) // assoc)
        row_idx = np.arange(tile_rows, dtype=np.int64)
        for rows_slice, idx in plan.steps(tile_rows=tile_rows):
            tag = sorted_tag[idx]
            rows = tagsP[rows_slice]                        # view, no copy
            match = rows == tag[:, None]
            hit = match.any(axis=1)
            hit_way = match.argmax(axis=1)
            size = sizesP[rows_slice]
            victim = agesP[rows_slice].argmin(axis=1)
            can_fill = size < effP[rows_slice]
            # A hit "refills" its own way with the same tag, so hits and
            # misses share one write path; each bucket appears once per
            # step, so the scatter writes are race-free.
            way = np.where(hit, hit_way, np.where(can_fill, size, victim))
            ar = row_idx[: way.size]
            dirty_rows = dirtyP[rows_slice]
            rows[ar, way] = tag
            agesP[rows_slice][ar, way] = sorted_stamp[idx]
            dirty_rows[ar, way] = sorted_store[idx] | (hit & dirty_rows[ar, way])
            sizesP[rows_slice] = size + (~hit & can_fill)
            hit_sorted[idx] = hit

        plan.writeback_state((tags2d, ages2d, dirty2d, sizes1d),
                             (tagsP, agesP, dirtyP, sizesP))
        counters += lengths
        lane_hits = np.rint(np.bincount(plan.lane_sorted, weights=hit_sorted,
                                        minlength=self.lanes)).astype(np.int64)
        state["hits"] += lane_hits
        state["misses"] += lengths - lane_hits
        self.hits = state["hits"].tolist()
        self.misses = state["misses"].tolist()

    # ------------------------------------------------------------- inspection

    def miss_rate(self, lane: int) -> float:
        total = self.hits[lane] + self.misses[lane]
        return self.misses[lane] / total if total else 0.0

    def lane_state(self, lane: int) -> tuple[list[int], list[int], list[bool], list[int]]:
        """Flat (tags, last_use, dirty, set_sizes) of one lane, slot-compatible
        with the private arrays of :class:`SetAssociativeCache` (tests)."""
        if self.kernel == "numpy":
            if self._arrays is None:
                sets, assoc = self.geometry.num_sets, self.geometry.associativity
                return ([-1] * sets * assoc, [0] * sets * assoc,
                        [False] * sets * assoc, [0] * sets)
            import numpy as np

            state = self._arrays
            # Unoccupied ways hold the int64-max age sentinel internally (it
            # makes the victim scan a plain argmin); the per-cell cache keeps
            # 0 there, so mask them for slot-compatibility.
            last_use = state["last_use"][lane].copy()
            unoccupied = (
                np.arange(last_use.shape[1])[None, :]
                >= state["sizes"][lane][:, None]
            )
            last_use[unoccupied] = 0
            return (
                state["tags"][lane].reshape(-1).tolist(),
                last_use.reshape(-1).tolist(),
                state["dirty"][lane].reshape(-1).tolist(),
                state["sizes"][lane].tolist(),
            )
        if self._caches is None:
            sets, assoc = self.geometry.num_sets, self.geometry.associativity
            return ([-1] * sets * assoc, [0] * sets * assoc,
                    [False] * sets * assoc, [0] * sets)
        cache = self._caches[lane]
        return (list(cache._tags), list(cache._last_use),
                list(cache._dirty), list(cache._set_sizes))


# ----------------------------------------------------------------- ATD replay


class BatchedATDReplay:
    """B independent sampled LRU tag directories replayed as one array program.

    Mirrors :class:`~repro.cache.atd.AuxiliaryTagDirectory` lane for lane:
    stride set sampling, per-set LRU stacks bounded by the associativity, a
    hit-position histogram and sampled miss/access counters, from which
    per-lane miss curves follow.  The numpy kernel represents each stack as a
    (tags, recency) pair — the stack position of a hit is the number of
    resident lines touched more recently, and the evicted line is the
    least-recent one, which reproduces list-stack semantics exactly.
    """

    def __init__(self, llc_config: CacheConfig, lanes: int,
                 sampled_sets: int = 32, kernel: str | None = None):
        if lanes <= 0:
            raise ConfigurationError("a batched replay needs at least one lane")
        if sampled_sets <= 0:
            raise ConfigurationError("the ATD must sample at least one set")
        self.geometry = _Geometry(llc_config)
        self.config = llc_config
        self.lanes = lanes
        self.sampled_sets = min(sampled_sets, self.geometry.num_sets)
        self.stride = max(1, self.geometry.num_sets // self.sampled_sets)
        self.kernel = resolve_vec_kernel(kernel)
        self._atds = None
        self._arrays = None

    @property
    def sampling_factor(self) -> float:
        return self.geometry.num_sets / self.sampled_sets

    def _slot_of(self, set_index: int) -> int:
        if set_index % self.stride == 0:
            slot = set_index // self.stride
            if slot < self.sampled_sets:
                return slot
        return -1

    # -------------------------------------------------------------- execution

    def run(self, addresses) -> "BatchedATDReplay":
        """Replay per-lane address streams through every lane's sampled stacks."""
        streams = _as_streams(addresses, self.lanes, "address")
        if self.kernel == "numpy":
            self._run_numpy(streams)
        else:
            self._run_python(streams)
        return self

    def _run_python(self, streams) -> None:
        from repro.cache.atd import AuxiliaryTagDirectory

        if self._atds is None:
            self._atds = [
                AuxiliaryTagDirectory(self.config, sampled_sets=self.sampled_sets,
                                      core=lane)
                for lane in range(self.lanes)
            ]
        for lane, atd in enumerate(self._atds):
            access = atd.access
            for address in streams[lane]:
                access(address)

    def _run_numpy(self, streams) -> None:
        import numpy as np

        geo = self.geometry
        assoc = geo.associativity
        if self._arrays is None:
            shape = (self.lanes, self.sampled_sets, assoc)
            # Unoccupied ways keep recency 0: real stamps are >= 1, so the
            # strict ">" in the position rank never counts them, and the
            # victim argmin is only consulted when the stack is full.
            self._arrays = {
                "tags": np.full(shape, -1, dtype=np.int64),
                "recency": np.zeros(shape, dtype=np.int64),
                "sizes": np.zeros((self.lanes, self.sampled_sets), dtype=np.int64),
                "counters": np.zeros(self.lanes, dtype=np.int64),
                "histogram": np.zeros((self.lanes, assoc), dtype=np.int64),
                "sampled_misses": np.zeros(self.lanes, dtype=np.int64),
                "sampled_accesses": np.zeros(self.lanes, dtype=np.int64),
            }
        state = self._arrays
        counters = state["counters"]
        addr, lengths = _pad_streams(np, streams, self.lanes, "address")
        if int(lengths.sum()) == 0:
            return
        set_all, tag_all = geo.decompose_array(np, addr)

        # Filter to sampled accesses up front: only ~1/stride of the stream
        # touches the directory, so the replay works on the sampled subset.
        step_range = np.arange(addr.shape[1], dtype=np.int64)
        valid = step_range[None, :] < lengths[:, None]
        sampled = valid & (set_all % self.stride == 0) \
            & (set_all // self.stride < self.sampled_sets)
        # Stamp = per-lane sampled-access counter *after* increment.
        stamps2d = np.cumsum(sampled, axis=1) + counters[:, None]
        lane_of, time_of = np.nonzero(sampled)  # row-major: time order kept
        if lane_of.size == 0:
            return
        flat_slot = set_all[lane_of, time_of] // self.stride
        flat_tag = tag_all[lane_of, time_of]
        flat_stamp = stamps2d[lane_of, time_of]
        n_sampled = sampled.sum(axis=1)
        counters += n_sampled
        state["sampled_accesses"] += n_sampled

        plan = _BucketPlan(np, lane_of, flat_slot, flat_stamp,
                           self.lanes, self.sampled_sets)
        sorted_tag = flat_tag[plan.order]
        sorted_stamp = plan.stamp_sorted
        buckets = self.lanes * self.sampled_sets
        tags2d = state["tags"].reshape(buckets, assoc)
        rec2d = state["recency"].reshape(buckets, assoc)
        sizes1d = state["sizes"].reshape(buckets)
        tagsP, recP, sizesP = plan.permute_state(tags2d, rec2d, sizes1d)

        hit_sorted = np.zeros(plan.order.size, dtype=bool)
        pos_sorted = np.zeros(plan.order.size, dtype=np.int64)
        for rows_slice, idx in plan.steps(tile_rows=max(1024, (1 << 18) // assoc)):
            tag = sorted_tag[idx]
            rows = tagsP[rows_slice]                        # view, no copy
            match = rows == tag[:, None]
            hit = match.any(axis=1)
            hit_way = match.argmax(axis=1)[:, None]
            rec = recP[rows_slice]
            size = sizesP[rows_slice]
            hit_rec = np.take_along_axis(rec, hit_way, 1)
            # Stack rank of the hit line: resident lines touched more
            # recently (stamps are unique; unoccupied recency 0 never counts).
            position = (rec > hit_rec).sum(axis=1)
            can_fill = size < assoc
            victim = rec.argmin(axis=1)
            way = np.where(hit, hit_way[:, 0],
                           np.where(can_fill, size, victim))[:, None]
            np.put_along_axis(rows, way, tag[:, None], 1)
            np.put_along_axis(rec, way, sorted_stamp[idx][:, None], 1)
            sizesP[rows_slice] = size + (~hit & can_fill)
            hit_sorted[idx] = hit
            pos_sorted[idx] = position

        plan.writeback_state((tags2d, rec2d, sizes1d), (tagsP, recP, sizesP))
        hit_keys = plan.lane_sorted[hit_sorted] * assoc + pos_sorted[hit_sorted]
        state["histogram"] += np.bincount(
            hit_keys, minlength=self.lanes * assoc
        ).reshape(self.lanes, assoc)
        lane_hits = np.bincount(plan.lane_sorted, weights=hit_sorted,
                                minlength=self.lanes)
        state["sampled_misses"] += n_sampled - np.rint(lane_hits).astype(np.int64)

    # ------------------------------------------------------------- inspection

    def hit_position_histogram(self, lane: int) -> list[float]:
        if self.kernel == "numpy":
            if self._arrays is None:
                return [0.0] * self.geometry.associativity
            return [float(v) for v in self._arrays["histogram"][lane]]
        if self._atds is None:
            return [0.0] * self.geometry.associativity
        return list(self._atds[lane].hit_position_histogram)

    def sampled_misses(self, lane: int) -> float:
        if self.kernel == "numpy":
            return float(self._arrays["sampled_misses"][lane]) if self._arrays else 0.0
        return self._atds[lane].sampled_misses if self._atds else 0.0

    def sampled_accesses(self, lane: int) -> float:
        if self.kernel == "numpy":
            return float(self._arrays["sampled_accesses"][lane]) if self._arrays else 0.0
        return self._atds[lane].sampled_accesses if self._atds else 0.0

    def stack(self, lane: int, slot: int) -> list[int]:
        """The LRU stack of one sampled set, MRU first (tests)."""
        if self.kernel != "numpy":
            if self._atds is None:
                return []
            return list(self._atds[lane]._stacks[slot])
        if self._arrays is None:
            return []
        size = int(self._arrays["sizes"][lane, slot])
        tags = self._arrays["tags"][lane, slot, :size]
        ages = self._arrays["recency"][lane, slot, :size]
        order = sorted(range(size), key=lambda way: -int(ages[way]))
        return [int(tags[way]) for way in order]

    def miss_curve(self, lane: int, scale_to_full_cache: bool = True):
        """The lane's accumulated miss curve (mirrors the per-cell ATD)."""
        from repro.cache.miss_curve import MissCurve

        curve = MissCurve.from_hit_histogram(
            self.hit_position_histogram(lane), self.sampled_misses(lane)
        )
        if scale_to_full_cache:
            return curve.scaled(self.sampling_factor)
        return curve
