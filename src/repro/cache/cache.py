"""Set-associative cache model with LRU replacement and way partitioning.

The same class models the private L1/L2 caches (no partitioning) and the
shared LLC.  For the shared LLC, lines are tagged with the owning core and the
replacement policy can enforce per-core way quotas, which is how the paper's
MCP/UCP/ASM partitioning policies are enforced in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.config import CacheConfig

__all__ = ["CacheLine", "AccessOutcome", "SetAssociativeCache"]


@dataclass
class CacheLine:
    """One cache line: tag, owning core and LRU age bookkeeping."""

    tag: int
    owner: int
    last_use: int
    dirty: bool = False


@dataclass(frozen=True)
class AccessOutcome:
    """Result of a cache access."""

    hit: bool
    evicted_tag: int | None = None
    evicted_owner: int | None = None
    evicted_dirty: bool = False


class SetAssociativeCache:
    """A set-associative, write-allocate cache with LRU replacement.

    Parameters
    ----------
    config:
        Geometry and latency of the cache.
    name:
        Used in error messages and statistics reporting.
    partitioned:
        When True, misses respect per-core way allocations set through
        :meth:`set_partition` (way partitioning as used by UCP/MCP/ASM).
    """

    def __init__(self, config: CacheConfig, name: str = "cache", partitioned: bool = False):
        config.validate()
        self.config = config
        self.name = name
        self.partitioned = partitioned
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_bytes = config.line_bytes
        self._sets: list[list[CacheLine]] = [[] for _ in range(self.num_sets)]
        self._use_counter = 0
        self._allocation: dict[int, int] | None = None
        self.hits = 0
        self.misses = 0
        self.per_core_hits: dict[int, int] = {}
        self.per_core_misses: dict[int, int] = {}

    # ------------------------------------------------------------------ geometry

    def set_index(self, address: int) -> int:
        """Map a byte address to its set index."""
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        """Map a byte address to its tag."""
        return address // (self.line_bytes * self.num_sets)

    def bank_index(self, address: int) -> int:
        """Map a byte address to its bank (sets are interleaved across banks)."""
        return self.set_index(address) % self.config.banks

    # ------------------------------------------------------------------ partitioning

    def set_partition(self, allocation: dict[int, int] | None) -> None:
        """Install a per-core way allocation (or None to disable partitioning).

        The allocation maps core id to the number of LLC ways it may occupy in
        every set.  The sum of the allocation must not exceed the cache
        associativity.
        """
        if allocation is None:
            self._allocation = None
            return
        if not self.partitioned:
            raise ConfigurationError(f"{self.name} was not built with partitioning support")
        total = sum(allocation.values())
        if total > self.associativity:
            raise ConfigurationError(
                f"allocation of {total} ways exceeds associativity {self.associativity}"
            )
        if any(ways < 0 for ways in allocation.values()):
            raise ConfigurationError("way allocations cannot be negative")
        self._allocation = dict(allocation)

    @property
    def partition(self) -> dict[int, int] | None:
        """The currently installed way allocation, if any."""
        return dict(self._allocation) if self._allocation is not None else None

    # ------------------------------------------------------------------ access

    def probe(self, address: int) -> bool:
        """Return True when the address currently hits, without updating state."""
        index = self.set_index(address)
        tag = self.tag(address)
        return any(line.tag == tag for line in self._sets[index])

    def access(self, address: int, core: int = 0, is_store: bool = False) -> AccessOutcome:
        """Perform an access: update LRU state, allocate on miss, return the outcome."""
        self._use_counter += 1
        index = self.set_index(address)
        tag = self.tag(address)
        cache_set = self._sets[index]
        for line in cache_set:
            if line.tag == tag:
                line.last_use = self._use_counter
                if is_store:
                    line.dirty = True
                self.hits += 1
                self.per_core_hits[core] = self.per_core_hits.get(core, 0) + 1
                return AccessOutcome(hit=True)
        self.misses += 1
        self.per_core_misses[core] = self.per_core_misses.get(core, 0) + 1
        outcome = self._fill(index, tag, core, is_store)
        return outcome

    def _fill(self, index: int, tag: int, core: int, is_store: bool) -> AccessOutcome:
        cache_set = self._sets[index]
        new_line = CacheLine(tag=tag, owner=core, last_use=self._use_counter, dirty=is_store)
        quota = None
        if self.partitioned and self._allocation is not None:
            quota = max(1, self._allocation.get(core, self.associativity))
        own_lines = sum(1 for line in cache_set if line.owner == core) if quota is not None else 0
        within_quota = quota is None or own_lines < quota
        if len(cache_set) < self.associativity and within_quota:
            cache_set.append(new_line)
            return AccessOutcome(hit=False)
        victim = self._select_victim(cache_set, core)
        evicted = AccessOutcome(
            hit=False,
            evicted_tag=victim.tag,
            evicted_owner=victim.owner,
            evicted_dirty=victim.dirty,
        )
        cache_set.remove(victim)
        cache_set.append(new_line)
        return evicted

    def _select_victim(self, cache_set: list[CacheLine], core: int) -> CacheLine:
        """Pick an eviction victim: plain LRU, or partition-aware LRU."""
        if not self.partitioned or self._allocation is None:
            return min(cache_set, key=lambda line: line.last_use)
        allocation = self._allocation
        quota = max(1, allocation.get(core, self.associativity))
        occupancy: dict[int, int] = {}
        for line in cache_set:
            occupancy[line.owner] = occupancy.get(line.owner, 0) + 1
        own_lines = [line for line in cache_set if line.owner == core]
        if len(own_lines) >= quota:
            # The requesting core is at (or above) its quota: recycle its own
            # LRU line so it never exceeds the allocation.
            return min(own_lines, key=lambda line: line.last_use)
        # The requesting core is below its quota: take a line from a core that
        # exceeds its own quota (preferring the most over-allocated), falling
        # back to global LRU if nobody is over quota.
        over_allocated = [
            line
            for line in cache_set
            if line.owner != core
            and occupancy.get(line.owner, 0) > allocation.get(line.owner, 0)
        ]
        if over_allocated:
            return min(over_allocated, key=lambda line: line.last_use)
        if len(cache_set) < self.associativity:
            # Nobody is over quota and there is still free space: the caller
            # only reaches this when the requester hit its own quota, so this
            # branch recycles the requester's LRU line.
            return min(own_lines, key=lambda line: line.last_use) if own_lines else min(
                cache_set, key=lambda line: line.last_use
            )
        return min(cache_set, key=lambda line: line.last_use)

    # ------------------------------------------------------------------ statistics

    def occupancy(self, core: int) -> int:
        """Total number of lines currently owned by ``core``."""
        return sum(
            1 for cache_set in self._sets for line in cache_set if line.owner == core
        )

    def set_occupancy(self, index: int) -> dict[int, int]:
        """Per-core line counts for one set."""
        counts: dict[int, int] = {}
        for line in self._sets[index]:
            counts[line.owner] = counts.get(line.owner, 0) + 1
        return counts

    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self.per_core_hits.clear()
        self.per_core_misses.clear()

    def flush(self) -> None:
        """Invalidate every line (used between experiments)."""
        self._sets = [[] for _ in range(self.num_sets)]
