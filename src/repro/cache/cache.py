"""Set-associative cache model with LRU replacement and way partitioning.

The same class models the private L1/L2 caches (no partitioning) and the
shared LLC.  For the shared LLC, lines are tagged with the owning core and the
replacement policy can enforce per-core way quotas, which is how the paper's
MCP/UCP/ASM partitioning policies are enforced in hardware.

The line store is kept in flat parallel arrays (``tags``/``owners``/
``last_use``/``dirty``, indexed by ``set * associativity + way``) rather than
per-set lists of line objects: the cache sits on the per-instruction hot path
of the simulation kernel, and flat arrays turn each access into a short slice
scan with no attribute chasing.  Plain Python lists are used instead of
``array('q')`` because CPython reads list elements without boxing, which is
measurably faster for this access pattern.  Occupied ways are always the
first ``_set_sizes[set]`` slots of a set: fills append to the first free slot
and evictions overwrite the victim in place, so slots never fragment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.config import CacheConfig

__all__ = ["CacheLine", "AccessOutcome", "SetAssociativeCache"]


@dataclass
class CacheLine:
    """One cache line: tag, owning core and LRU age bookkeeping.

    The simulation kernel stores lines in flat arrays; this record is the
    element type :meth:`SetAssociativeCache.lines` materialises for
    inspection and tests.
    """

    tag: int
    owner: int
    last_use: int
    dirty: bool = False


@dataclass(frozen=True)
class AccessOutcome:
    """Result of a cache access."""

    hit: bool
    evicted_tag: int | None = None
    evicted_owner: int | None = None
    evicted_dirty: bool = False


# Shared immutable outcomes for the two allocation-free cases; the hot path
# returns these singletons instead of constructing a dataclass per access.
_HIT = AccessOutcome(hit=True)
_MISS_NO_EVICTION = AccessOutcome(hit=False)


class SetAssociativeCache:
    """A set-associative, write-allocate cache with LRU replacement.

    Parameters
    ----------
    config:
        Geometry and latency of the cache.
    name:
        Used in error messages and statistics reporting.
    partitioned:
        When True, misses respect per-core way allocations set through
        :meth:`set_partition` (way partitioning as used by UCP/MCP/ASM).
    """

    def __init__(self, config: CacheConfig, name: str = "cache", partitioned: bool = False):
        config.validate()
        self.config = config
        self.name = name
        self.partitioned = partitioned
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_bytes = config.line_bytes
        # Power-of-two geometry gets shift/mask address decomposition
        # (config.validate guarantees line_bytes is a power of two; the set
        # count may not be, in which case set_index/tag fall back to divmod).
        self._line_shift = config.line_bytes.bit_length() - 1
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask: int | None = self.num_sets - 1
            self._tag_shift = self._line_shift + (self.num_sets.bit_length() - 1)
        else:
            self._set_mask = None
            self._tag_shift = 0
        total_slots = self.num_sets * self.associativity
        # Flat parallel arrays indexed by set * associativity + way.
        self._tags: list[int] = [-1] * total_slots
        self._owners: list[int] = [-1] * total_slots
        self._last_use: list[int] = [0] * total_slots
        self._dirty: list[bool] = [False] * total_slots
        # Number of occupied ways per set (occupied ways are slots [0, size)).
        self._set_sizes: list[int] = [0] * self.num_sets
        # Incrementally maintained per-core line counts (whole cache),
        # indexed by core id and grown on demand.
        self._core_occupancy: list[int] = []
        self._use_counter = 0
        self._allocation: dict[int, int] | None = None
        self.hits = 0
        self.misses = 0
        # Per-core counters as dense lists indexed by core id (grown on
        # demand); exposed as dicts through the properties below.
        self._hits_by_core: list[int] = []
        self._misses_by_core: list[int] = []

    # ------------------------------------------------------------------ geometry

    def set_index(self, address: int) -> int:
        """Map a byte address to its set index."""
        mask = self._set_mask
        if mask is not None:
            return (address >> self._line_shift) & mask
        return (address // self.line_bytes) % self.num_sets

    def tag(self, address: int) -> int:
        """Map a byte address to its tag."""
        if self._set_mask is not None:
            return address >> self._tag_shift
        return address // (self.line_bytes * self.num_sets)

    def bank_index(self, address: int) -> int:
        """Map a byte address to its bank (sets are interleaved across banks)."""
        return self.set_index(address) % self.config.banks

    # ------------------------------------------------------------------ partitioning

    def set_partition(self, allocation: dict[int, int] | None) -> None:
        """Install a per-core way allocation (or None to disable partitioning).

        The allocation maps core id to the number of LLC ways it may occupy in
        every set.  The sum of the allocation must not exceed the cache
        associativity.
        """
        if allocation is None:
            self._allocation = None
            return
        if not self.partitioned:
            raise ConfigurationError(f"{self.name} was not built with partitioning support")
        total = sum(allocation.values())
        if total > self.associativity:
            raise ConfigurationError(
                f"allocation of {total} ways exceeds associativity {self.associativity}"
            )
        if any(ways < 0 for ways in allocation.values()):
            raise ConfigurationError("way allocations cannot be negative")
        self._allocation = dict(allocation)

    @property
    def partition(self) -> dict[int, int] | None:
        """The currently installed way allocation, if any."""
        return dict(self._allocation) if self._allocation is not None else None

    # ------------------------------------------------------------------ access

    def probe(self, address: int) -> bool:
        """Return True when the address currently hits, without updating state."""
        index = self.set_index(address)
        tag = self.tag(address)
        base = index * self.associativity
        try:
            self._tags.index(tag, base, base + self._set_sizes[index])
            return True
        except ValueError:
            return False

    def access(self, address: int, core: int = 0, is_store: bool = False) -> AccessOutcome:
        """Perform an access: update LRU state, allocate on miss, return the outcome."""
        counter = self._use_counter + 1
        self._use_counter = counter
        mask = self._set_mask
        if mask is not None:
            index = (address >> self._line_shift) & mask
            tag = address >> self._tag_shift
        else:
            index = (address // self.line_bytes) % self.num_sets
            tag = address // (self.line_bytes * self.num_sets)
        base = index * self.associativity
        # list.index scans at C speed; a tag can appear at most once per set.
        try:
            slot = self._tags.index(tag, base, base + self._set_sizes[index])
        except ValueError:
            self.misses += 1
            by_core = self._misses_by_core
            try:
                by_core[core] += 1
            except IndexError:
                self._grow_core_counters(core)
                self._misses_by_core[core] += 1
            return self._fill(index, tag, core, is_store)
        self._last_use[slot] = counter
        if is_store:
            self._dirty[slot] = True
        self.hits += 1
        by_core = self._hits_by_core
        try:
            by_core[core] += 1
        except IndexError:
            self._grow_core_counters(core)
            self._hits_by_core[core] += 1
        return _HIT

    def access_hit(self, address: int, core: int = 0, is_store: bool = False) -> bool:
        """Hot-path access: same state update as :meth:`access`, returns only
        the hit flag and never materialises an :class:`AccessOutcome`.

        Partition-aware fills share :meth:`_fill` (minus the outcome); the
        unpartitioned case — private L1/L2 and the LLC whenever no allocation
        is installed — is fully inlined.  Unlike :meth:`access`, only the
        aggregate hit/miss counters are maintained (no per-core statistics),
        which nothing on the simulation path consumes.
        """
        counter = self._use_counter + 1
        self._use_counter = counter
        mask = self._set_mask
        if mask is not None:
            index = (address >> self._line_shift) & mask
            tag = address >> self._tag_shift
        else:
            index = (address // self.line_bytes) % self.num_sets
            tag = address // (self.line_bytes * self.num_sets)
        assoc = self.associativity
        base = index * assoc
        tags = self._tags
        size = self._set_sizes[index]
        # Hit scan.  Two-way sets (the L1s) compare both ways directly; wider
        # sets use a membership test before index — misses dominate in the
        # scaled-down hierarchy and a failed ``in`` is far cheaper than a
        # raised ValueError from list.index.
        slot = -1
        if assoc == 2:
            if size != 0:
                if tags[base] == tag:
                    slot = base
                elif size == 2 and tags[base + 1] == tag:
                    slot = base + 1
        else:
            segment = tags[base:base + size]
            if tag in segment:
                slot = base + segment.index(tag)
        if slot >= 0:
            self._last_use[slot] = counter
            if is_store:
                self._dirty[slot] = True
            self.hits += 1
            return True
        self.misses += 1
        if self._allocation is not None:
            self._fill(index, tag, core, is_store, want_outcome=False)
            return False
        occupancy = self._core_occupancy
        if size < assoc:
            slot = base + size
            self._set_sizes[index] = size + 1
        else:
            ages = self._last_use[base:base + assoc]
            slot = base + ages.index(min(ages))
            occupancy[self._owners[slot]] -= 1
        try:
            occupancy[core] += 1
        except IndexError:
            occupancy.extend([0] * (core + 1 - len(occupancy)))
            occupancy[core] += 1
        tags[slot] = tag
        self._owners[slot] = core
        self._last_use[slot] = counter
        self._dirty[slot] = is_store
        return False

    def _grow_core_counters(self, core: int) -> None:
        if core < 0:
            raise ConfigurationError("core ids cannot be negative")
        grow_by = core + 1 - len(self._hits_by_core)
        self._hits_by_core.extend([0] * grow_by)
        self._misses_by_core.extend([0] * grow_by)

    def _fill(self, index: int, tag: int, core: int, is_store: bool,
              want_outcome: bool = True) -> AccessOutcome | None:
        assoc = self.associativity
        base = index * assoc
        size = self._set_sizes[index]
        occupancy = self._core_occupancy
        quota = None
        if self.partitioned and self._allocation is not None:
            quota = self._allocation.get(core, assoc)
            if quota < 1:
                quota = 1
        if size < assoc:
            within_quota = (
                quota is None
                or self._owners[base:base + size].count(core) < quota
            )
            if within_quota:
                slot = base + size
                self._tags[slot] = tag
                self._owners[slot] = core
                self._last_use[slot] = self._use_counter
                self._dirty[slot] = is_store
                self._set_sizes[index] = size + 1
                try:
                    occupancy[core] += 1
                except IndexError:
                    occupancy.extend([0] * (core + 1 - len(occupancy)))
                    occupancy[core] += 1
                return _MISS_NO_EVICTION
        victim = self._select_victim(base, size, core, quota)
        owners = self._owners
        evicted = None
        if want_outcome:
            evicted = AccessOutcome(
                hit=False,
                evicted_tag=self._tags[victim],
                evicted_owner=owners[victim],
                evicted_dirty=self._dirty[victim],
            )
        occupancy[owners[victim]] -= 1
        try:
            occupancy[core] += 1
        except IndexError:
            occupancy.extend([0] * (core + 1 - len(occupancy)))
            occupancy[core] += 1
        self._tags[victim] = tag
        owners[victim] = core
        self._last_use[victim] = self._use_counter
        self._dirty[victim] = is_store
        return evicted

    def _select_victim(self, base: int, size: int, core: int, quota: int | None) -> int:
        """Pick an eviction victim slot: plain LRU, or partition-aware LRU."""
        last_use = self._last_use
        end = base + size
        if quota is None:
            # Plain LRU over the occupied slots.  ``last_use`` values are
            # unique (one global counter per access), so the minimum slot is
            # the unambiguous LRU line.  min + index both scan at C speed.
            ages = last_use[base:end]
            return base + ages.index(min(ages))
        allocation = self._allocation
        owners = self._owners[base:end]
        ages = last_use[base:end]
        own_count = owners.count(core)
        own_victim = -1
        if own_count:
            own_best = 0
            for position, owner in enumerate(owners):
                if owner == core:
                    age = ages[position]
                    if own_victim < 0 or age < own_best:
                        own_best = age
                        own_victim = position
        if own_count >= quota:
            # The requesting core is at (or above) its quota: recycle its own
            # LRU line so it never exceeds the allocation.
            return base + own_victim
        # The requesting core is below its quota: take a line from a core that
        # exceeds its own quota (preferring the most over-allocated), falling
        # back to global LRU if nobody is over quota.  Distinct owners per set
        # are few, so per-owner occupancy uses C-speed list.count.
        over_owners = set()
        checked = {core}
        for owner in owners:
            if owner not in checked:
                checked.add(owner)
                if owners.count(owner) > allocation.get(owner, 0):
                    over_owners.add(owner)
        if over_owners:
            over_victim = -1
            over_best = 0
            for position, owner in enumerate(owners):
                if owner in over_owners:
                    age = ages[position]
                    if over_victim < 0 or age < over_best:
                        over_best = age
                        over_victim = position
            return base + over_victim
        if size < self.associativity:
            # Nobody is over quota and there is still free space: the caller
            # only reaches this when the requester hit its own quota, so this
            # branch recycles the requester's LRU line.
            if own_victim >= 0:
                return base + own_victim
        return base + ages.index(min(ages))

    # ------------------------------------------------------------------ statistics

    @property
    def per_core_hits(self) -> dict[int, int]:
        """Hits per core (cores that have accessed the cache)."""
        return {core: count for core, count in enumerate(self._hits_by_core) if count}

    @property
    def per_core_misses(self) -> dict[int, int]:
        """Misses per core (cores that have accessed the cache)."""
        return {core: count for core, count in enumerate(self._misses_by_core) if count}

    def occupancy(self, core: int) -> int:
        """Total number of lines currently owned by ``core`` (O(1))."""
        counts = self._core_occupancy
        return counts[core] if core < len(counts) else 0

    def set_occupancy(self, index: int) -> dict[int, int]:
        """Per-core line counts for one set (O(associativity))."""
        counts: dict[int, int] = {}
        owners = self._owners
        base = index * self.associativity
        for slot in range(base, base + self._set_sizes[index]):
            owner = owners[slot]
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def lines(self, index: int) -> list[CacheLine]:
        """Materialise the occupied lines of one set (inspection/testing aid)."""
        base = index * self.associativity
        return [
            CacheLine(
                tag=self._tags[slot],
                owner=self._owners[slot],
                last_use=self._last_use[slot],
                dirty=self._dirty[slot],
            )
            for slot in range(base, base + self._set_sizes[index])
        ]

    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self._hits_by_core = []
        self._misses_by_core = []

    def flush(self) -> None:
        """Invalidate every line (used between experiments).

        Arrays are cleared in place: the memory hierarchy hoists references
        to them for its hot path, and those must stay valid across a flush.
        """
        total_slots = self.num_sets * self.associativity
        self._tags[:] = [-1] * total_slots
        self._owners[:] = [-1] * total_slots
        self._last_use[:] = [0] * total_slots
        self._dirty[:] = [False] * total_slots
        self._set_sizes[:] = [0] * self.num_sets
        self._core_occupancy[:] = []
