"""Miss curves: estimated misses as a function of allocated LLC ways.

A miss curve is produced by an Auxiliary Tag Directory (ATD): for each access
that hits in the ATD, the LRU stack position of the hit tells which minimum
number of ways would have kept the line resident.  Summing the histogram from
the most-recently-used position outward yields hits(w), and misses(w) follows.
Both UCP's lookahead algorithm and MCP's throughput model consume miss curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitioningError

__all__ = ["MissCurve"]


@dataclass(frozen=True)
class MissCurve:
    """Estimated misses per number of allocated ways.

    ``misses[w]`` is the estimated miss count with ``w`` ways, for
    ``w = 0 .. associativity``.  Zero ways means every access misses.
    """

    misses: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.misses) < 2:
            raise PartitioningError("a miss curve needs entries for 0 ways and at least 1 way")

    @property
    def associativity(self) -> int:
        return len(self.misses) - 1

    @property
    def total_accesses(self) -> float:
        return self.misses[0]

    def misses_at(self, ways: int) -> float:
        """Misses with ``ways`` allocated ways (clamped to the curve's range)."""
        ways = max(0, min(ways, self.associativity))
        return self.misses[ways]

    def hits_at(self, ways: int) -> float:
        """Hits with ``ways`` allocated ways."""
        return self.total_accesses - self.misses_at(ways)

    def marginal_utility(self, from_ways: int, to_ways: int) -> float:
        """UCP's marginal utility: extra hits per extra way between two allocations."""
        if to_ways <= from_ways:
            raise PartitioningError("marginal utility requires to_ways > from_ways")
        extra_hits = self.misses_at(from_ways) - self.misses_at(to_ways)
        return extra_hits / (to_ways - from_ways)

    def is_monotone(self) -> bool:
        """True when the curve never increases as more ways are added."""
        return all(later <= earlier + 1e-9 for earlier, later in zip(self.misses, self.misses[1:]))

    def scaled(self, factor: float) -> "MissCurve":
        """Return the curve scaled by ``factor`` (used to undo set sampling)."""
        if factor < 0:
            raise PartitioningError("scale factor cannot be negative")
        return MissCurve(tuple(value * factor for value in self.misses))

    @staticmethod
    def from_hit_histogram(hit_counts_per_position: list[float], misses: float) -> "MissCurve":
        """Build a miss curve from an LRU stack-distance histogram.

        ``hit_counts_per_position[i]`` is the number of accesses that hit at
        LRU stack position ``i`` (0 = MRU).  ``misses`` is the number of
        accesses that missed even with full associativity.
        """
        total = sum(hit_counts_per_position) + misses
        curve = []
        remaining_hits = 0.0
        curve.append(total)  # zero ways: everything misses
        for position in range(len(hit_counts_per_position)):
            remaining_hits += hit_counts_per_position[position]
            curve.append(total - remaining_hits)
        return MissCurve(tuple(curve))
