"""Miss Status Holding Registers (MSHRs).

MSHRs bound the number of outstanding misses a cache can sustain.  When all
MSHRs are occupied the cache blocks and new misses must wait for an existing
miss to complete, which limits memory-level parallelism — an effect the
paper's core model and the "other stalls" category depend on.
"""

from __future__ import annotations

import heapq

from repro.errors import SimulationError

__all__ = ["MSHRFile"]


class MSHRFile:
    """Tracks outstanding misses as (completion_time, address) entries."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise SimulationError("an MSHR file needs at least one entry")
        self.entries = entries
        self._outstanding: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._outstanding)

    def release_completed(self, now: float) -> int:
        """Retire every outstanding miss that has completed by ``now``."""
        released = 0
        while self._outstanding and self._outstanding[0][0] <= now:
            heapq.heappop(self._outstanding)
            released += 1
        return released

    def earliest_completion(self) -> float | None:
        """Completion time of the oldest outstanding miss, or None when empty."""
        return self._outstanding[0][0] if self._outstanding else None

    def acquire_time(self, request_time: float) -> float:
        """Earliest time a new miss can allocate an MSHR at or after ``request_time``.

        If the file is full at ``request_time`` the caller must wait until the
        earliest outstanding miss completes.
        """
        self.release_completed(request_time)
        if len(self._outstanding) < self.entries:
            return request_time
        earliest = self.earliest_completion()
        if earliest is None:
            raise SimulationError("MSHR file reported full while holding no entries")
        return max(request_time, earliest)

    def allocate(self, completion_time: float, address: int) -> None:
        """Record a new outstanding miss that will complete at ``completion_time``.

        Callers are expected to have obtained their start time from
        :meth:`acquire_time`, which guarantees an entry is free by then; if the
        file is still full here, the earliest-completing entry is the one that
        freed up and is retired.
        """
        if len(self._outstanding) >= self.entries:
            heapq.heappop(self._outstanding)
        heapq.heappush(self._outstanding, (completion_time, address))

    def outstanding_at(self, time: float) -> int:
        """Number of misses still outstanding at ``time``."""
        return sum(1 for completion, _ in self._outstanding if completion > time)

    def clear(self) -> None:
        self._outstanding.clear()
