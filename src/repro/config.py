"""CMP model configuration (Table I of the paper).

The defaults reproduce the paper's 2-, 4- and 8-core CMP configurations: a
4 GHz clock, a 128-entry ROB out-of-order core, two levels of private cache,
a shared, banked L3 connected through a ring interconnect and a DDR2-800
memory system with FR-FCFS scheduling.  The sensitivity-analysis knobs of
Section VII-D (LLC size/associativity, DRAM channels, DDR2 vs DDR4, PRB
entries) are exposed as ordinary fields so experiments can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = [
    "CoreConfig",
    "CacheConfig",
    "RingConfig",
    "DRAMTimingConfig",
    "DRAMConfig",
    "AccountingConfig",
    "CMPConfig",
    "DDR2_800",
    "DDR4_2666",
]

KILOBYTE = 1024
MEGABYTE = 1024 * 1024


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order processor core parameters."""

    rob_entries: int = 128
    load_store_queue_entries: int = 32
    instruction_queue_entries: int = 64
    width: int = 4
    int_alus: int = 4
    fp_alus: int = 4
    compute_latency: int = 1

    def validate(self) -> None:
        if self.rob_entries <= 0 or self.width <= 0:
            raise ConfigurationError("core must have positive ROB size and width")
        if self.load_store_queue_entries <= 0:
            raise ConfigurationError("load/store queue must have at least one entry")


@dataclass(frozen=True)
class CacheConfig:
    """Parameters for one cache level."""

    size_bytes: int
    associativity: int
    latency: int
    mshrs: int
    line_bytes: int = 64
    banks: int = 1

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache size, associativity and line size must be positive")
        if self.line_bytes & (self.line_bytes - 1) != 0:
            # Hardware line sizes are powers of two; the simulation kernel
            # additionally relies on this to decompose addresses with
            # shift/mask operations (the set count may still be arbitrary,
            # for which the caches keep a divmod fallback).
            raise ConfigurationError("cache line size must be a power of two")
        if self.num_lines % self.associativity != 0:
            raise ConfigurationError("cache size must be divisible by associativity * line size")
        if self.num_sets <= 0:
            raise ConfigurationError("cache must have at least one set")
        if self.banks <= 0 or self.num_sets % self.banks != 0:
            raise ConfigurationError("number of sets must be divisible by the bank count")


@dataclass(frozen=True)
class RingConfig:
    """Ring interconnect parameters."""

    hop_latency: int = 4
    request_rings: int = 1
    response_rings: int = 1
    queue_entries: int = 32
    link_occupancy: int = 1

    def validate(self) -> None:
        if self.hop_latency < 0:
            raise ConfigurationError("hop latency cannot be negative")
        if self.request_rings <= 0 or self.response_rings <= 0:
            raise ConfigurationError("at least one request and one response ring are required")


@dataclass(frozen=True)
class DRAMTimingConfig:
    """DRAM interface timing expressed in CPU cycles (4 GHz core clock).

    ``cpu_cycles_per_dram_cycle`` converts the DRAM command clock to CPU
    cycles.  DDR2-800 runs its command bus at 400 MHz (10 CPU cycles per DRAM
    cycle); DDR4-2666 at 1333 MHz (3 CPU cycles per DRAM cycle).
    """

    name: str
    cpu_cycles_per_dram_cycle: int
    t_cl: int
    t_rcd: int
    t_rp: int
    t_ras: int
    burst_dram_cycles: int = 4

    @property
    def cas_latency(self) -> int:
        return self.t_cl * self.cpu_cycles_per_dram_cycle

    @property
    def activate_latency(self) -> int:
        return self.t_rcd * self.cpu_cycles_per_dram_cycle

    @property
    def precharge_latency(self) -> int:
        return self.t_rp * self.cpu_cycles_per_dram_cycle

    @property
    def row_cycle_latency(self) -> int:
        return self.t_ras * self.cpu_cycles_per_dram_cycle

    @property
    def data_transfer_latency(self) -> int:
        """CPU cycles the data bus is occupied transferring one cache line."""
        return self.burst_dram_cycles * self.cpu_cycles_per_dram_cycle

    @property
    def row_hit_latency(self) -> int:
        return self.cas_latency + self.data_transfer_latency

    @property
    def row_miss_latency(self) -> int:
        return self.precharge_latency + self.activate_latency + self.row_hit_latency


DDR2_800 = DRAMTimingConfig(
    name="DDR2-800",
    cpu_cycles_per_dram_cycle=10,
    t_cl=4,
    t_rcd=4,
    t_rp=4,
    t_ras=12,
)

DDR4_2666 = DRAMTimingConfig(
    name="DDR4-2666",
    cpu_cycles_per_dram_cycle=3,
    t_cl=19,
    t_rcd=19,
    t_rp=19,
    t_ras=43,
)


@dataclass(frozen=True)
class DRAMConfig:
    """Main-memory organisation."""

    timing: DRAMTimingConfig = DDR2_800
    channels: int = 1
    banks_per_channel: int = 8
    page_bytes: int = 1024
    read_queue_entries: int = 64
    write_queue_entries: int = 64

    def validate(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigurationError("DRAM needs at least one channel and one bank")
        if self.page_bytes <= 0:
            raise ConfigurationError("DRAM page size must be positive")


@dataclass(frozen=True)
class AccountingConfig:
    """Parameters shared by the accounting techniques."""

    prb_entries: int = 32
    atd_sampled_sets: int = 32
    estimate_interval_instructions: int = 20_000
    asm_epoch_cycles: int = 2_000
    partitioning_interval_cycles: int = 100_000

    def validate(self) -> None:
        if self.prb_entries <= 0:
            raise ConfigurationError("the PRB needs at least one entry")
        if self.atd_sampled_sets <= 0:
            raise ConfigurationError("the ATD must sample at least one set")
        if self.estimate_interval_instructions <= 0:
            raise ConfigurationError("the estimate interval must be positive")


@dataclass(frozen=True)
class CMPConfig:
    """Complete CMP configuration (Table I)."""

    n_cores: int
    clock_ghz: float = 4.0
    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * KILOBYTE, 2, latency=3, mshrs=16)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * KILOBYTE, 2, latency=3, mshrs=16)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1 * MEGABYTE, 4, latency=9, mshrs=16)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * MEGABYTE, 16, latency=16, mshrs=64, banks=4)
    )
    ring: RingConfig = field(default_factory=RingConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    accounting: AccountingConfig = field(default_factory=AccountingConfig)

    def validate(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError("a CMP needs at least one core")
        self.core.validate()
        for cache in (self.l1d, self.l1i, self.l2, self.llc):
            cache.validate()
        self.ring.validate()
        self.dram.validate()
        self.accounting.validate()
        if self.llc.associativity < self.n_cores:
            raise ConfigurationError(
                "way partitioning requires at least one LLC way per core"
            )

    @staticmethod
    def default(n_cores: int) -> "CMPConfig":
        """Return the paper's default configuration for 2, 4 or 8 cores.

        Values follow Table I's multi-value encoding (2-core/4-core/8-core):
        L1 latency 3/3/2, L2 latency 9/9/6, LLC 8/8/16 MB with latency
        16/16/12 and 32/64/128 MSHRs per bank, and 1/1/2 request rings.
        """
        if n_cores not in (2, 4, 8):
            config = CMPConfig(n_cores=n_cores)
            config.validate()
            return config
        l1_latency = {2: 3, 4: 3, 8: 2}[n_cores]
        l2_latency = {2: 9, 4: 9, 8: 6}[n_cores]
        llc_size = {2: 8, 4: 8, 8: 16}[n_cores] * MEGABYTE
        llc_latency = {2: 16, 4: 16, 8: 12}[n_cores]
        llc_mshrs = {2: 32, 4: 64, 8: 128}[n_cores]
        request_rings = {2: 1, 4: 1, 8: 2}[n_cores]
        config = CMPConfig(
            n_cores=n_cores,
            l1d=CacheConfig(64 * KILOBYTE, 2, latency=l1_latency, mshrs=16),
            l1i=CacheConfig(64 * KILOBYTE, 2, latency=l1_latency, mshrs=16),
            l2=CacheConfig(1 * MEGABYTE, 4, latency=l2_latency, mshrs=16),
            llc=CacheConfig(llc_size, 16, latency=llc_latency, mshrs=llc_mshrs, banks=4),
            ring=RingConfig(request_rings=request_rings),
        )
        config.validate()
        return config

    def scaled(self, llc_size_bytes: int | None = None, llc_kilobytes: int | None = None) -> "CMPConfig":
        """Return a copy with a scaled-down cache hierarchy for short traces.

        Trace-driven runs in this reproduction use far fewer instructions than
        the paper's 100M-instruction samples, so experiments shrink the cache
        hierarchy (4 KB L1, 16 KB L2, LLC as requested — roughly a 64x scale-
        down of Table I) to keep LLC contention observable at that scale.
        Latencies and associativities keep their Table I values.
        """
        if llc_kilobytes is not None:
            llc_size_bytes = llc_kilobytes * KILOBYTE
        if llc_size_bytes is None:
            raise ConfigurationError("scaled() requires a target LLC size")
        new_llc = replace(self.llc, size_bytes=llc_size_bytes)
        scaled_l2 = replace(self.l2, size_bytes=16 * KILOBYTE)
        scaled_l1 = replace(self.l1d, size_bytes=4 * KILOBYTE)
        config = replace(self, llc=new_llc, l2=scaled_l2, l1d=scaled_l1, l1i=scaled_l1)
        config.validate()
        return config

    def with_llc(self, *, size_bytes: int | None = None, associativity: int | None = None) -> "CMPConfig":
        """Return a copy with modified LLC parameters (Figure 7a/7b sweeps)."""
        llc = self.llc
        if size_bytes is not None:
            llc = replace(llc, size_bytes=size_bytes)
        if associativity is not None:
            llc = replace(llc, associativity=associativity)
        config = replace(self, llc=llc)
        config.validate()
        return config

    def with_dram(self, *, timing: DRAMTimingConfig | None = None, channels: int | None = None) -> "CMPConfig":
        """Return a copy with modified DRAM parameters (Figure 7c/7d sweeps)."""
        dram = self.dram
        if timing is not None:
            dram = replace(dram, timing=timing)
        if channels is not None:
            dram = replace(dram, channels=channels)
        config = replace(self, dram=dram)
        config.validate()
        return config

    def with_prb_entries(self, prb_entries: int) -> "CMPConfig":
        """Return a copy with a different PRB size (Figure 7e sweep)."""
        accounting = replace(self.accounting, prb_entries=prb_entries)
        config = replace(self, accounting=accounting)
        config.validate()
        return config
