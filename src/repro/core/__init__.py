"""The paper's primary contribution: dataflow accounting (GDP and GDP-O)."""

from repro.core.base import AccountingTechnique, PrivateModeEstimate
from repro.core.cpl import CPLEstimator, CPLResult, estimate_interval_cpl
from repro.core.dataflow_graph import (
    CommitPeriod,
    DataflowGraph,
    build_dataflow_graph,
    commit_periods_from_stalls,
)
from repro.core.gdp import GDPAccounting, GDPOAccounting
from repro.core.pcb import PendingCommitBuffer
from repro.core.performance_model import (
    CPIComponents,
    components_from_interval,
    estimate_other_stalls,
    private_mode_cpi,
)
from repro.core.prb import PendingRequestBuffer, PRBEntry

__all__ = [
    "AccountingTechnique",
    "PrivateModeEstimate",
    "CPLEstimator",
    "CPLResult",
    "estimate_interval_cpl",
    "CommitPeriod",
    "DataflowGraph",
    "build_dataflow_graph",
    "commit_periods_from_stalls",
    "GDPAccounting",
    "GDPOAccounting",
    "PendingCommitBuffer",
    "PendingRequestBuffer",
    "PRBEntry",
    "CPIComponents",
    "components_from_interval",
    "estimate_other_stalls",
    "private_mode_cpi",
]
