"""Common interface of all performance-accounting techniques.

Every technique — GDP, GDP-O and the baselines (ITCA, PTCA, ASM) — turns one
shared-mode estimate interval into an estimate of the private-mode
performance the application would have had over the same instructions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cpu.events import IntervalStats

__all__ = ["PrivateModeEstimate", "AccountingTechnique"]


@dataclass(frozen=True)
class PrivateModeEstimate:
    """One private-mode performance estimate produced from a shared-mode interval.

    Attributes
    ----------
    core, interval_index:
        Which core and estimate interval the estimate covers.
    cpi, ipc:
        Estimated private-mode CPI and IPC (the paper's pi-hat).
    sms_stall_cycles:
        Estimated private-mode stall cycles caused by shared-memory-system
        loads (the paper's sigma-hat_SMS), the main quantity a dataflow
        accounting technique estimates.
    cpl:
        Critical path length used for the estimate (dataflow techniques only).
    private_latency:
        Estimated average private-mode SMS-load latency (lambda-hat).
    overlap:
        Estimated average commit/load overlap cycles (GDP-O only).
    """

    core: int
    interval_index: int
    cpi: float
    ipc: float
    sms_stall_cycles: float
    cpl: float | None = None
    private_latency: float | None = None
    overlap: float | None = None


class AccountingTechnique(ABC):
    """Base class: maps shared-mode interval observations to private-mode estimates."""

    name: str = "abstract"

    @abstractmethod
    def estimate(self, interval: IntervalStats) -> PrivateModeEstimate:
        """Return the private-mode estimate for one shared-mode interval."""

    def estimate_all(self, intervals: list[IntervalStats]) -> list[PrivateModeEstimate]:
        """Convenience helper: estimate every interval of a core's run."""
        return [self.estimate(interval) for interval in intervals]
