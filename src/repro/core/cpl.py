"""Runtime Critical Path Length (CPL) estimation — Algorithms 1, 2 and 3.

The CPL estimator observes three kinds of events coming from the core and the
L1 data cache:

* a load request missed in the L1 and was issued towards the memory system
  (Algorithm 1),
* an L1 miss completed and is known to be a PMS- or SMS-load (Algorithm 2),
* the processor resumed committing after a commit stall (Algorithm 3).

Collectively the algorithms implement an online approximation of Kahn's
longest-path computation for a DAG whose nodes are SMS-loads and commit
periods: requests and commit periods are processed in time order, so every
node's depth is final by the time its successors consult it.  The PCB depth at
any point is the CPL of the dataflow graph observed since the last retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pcb import PendingCommitBuffer
from repro.core.prb import PendingRequestBuffer
from repro.cpu.events import CommitStall, IntervalStats, LoadRecord

__all__ = ["CPLEstimator", "CPLResult", "estimate_interval_cpl"]


@dataclass(frozen=True)
class CPLResult:
    """Outcome of running the CPL estimator over one event stream."""

    cpl: int
    tracked_loads: int
    evictions: int
    overlap_cycles: float
    sms_loads: int

    @property
    def average_overlap(self) -> float:
        return self.overlap_cycles / self.sms_loads if self.sms_loads else 0.0


class CPLEstimator:
    """Online CPL estimation using the PRB and PCB hardware structures."""

    def __init__(self, prb_entries: int | None = 32):
        self.prb = PendingRequestBuffer(capacity=prb_entries)
        self.pcb = PendingCommitBuffer()
        self.overlap_counter = 0.0
        self.completed_sms_loads = 0
        self._cpl_snapshot = 0

    # ------------------------------------------------------------------ events

    def on_load_issued(self, address: int, issue_time: float) -> None:
        """Algorithm 1: an L1 miss was issued towards the memory system."""
        entry = self.prb.insert(address, depth=self.pcb.depth)
        self.pcb.add_child(entry)

    def on_load_completed(self, address: int, completion_time: float, is_sms: bool,
                          overlap_cycles: float = 0.0) -> None:
        """Algorithm 2: an L1 miss completed.

        SMS-loads are marked completed and retained so Algorithm 3 can fold
        them into commit-period depths; PMS-loads are dropped immediately
        (dependencies through them are carried by the intervening commit
        periods).
        """
        entry = self.prb.find(address)
        if entry is None:
            return
        if is_sms:
            entry.completed = True
            entry.completed_at = completion_time
            entry.overlap = overlap_cycles
            self.overlap_counter += overlap_cycles
            self.completed_sms_loads += 1
        else:
            self.pcb.remove_child(entry)
            self.prb.invalidate(entry)

    def on_commit_resumed(self, stalling_address: int, stall_start: float,
                          resume_time: float) -> None:
        """Algorithm 3: the processor resumed after a commit stall.

        ``stalling_address`` is the address of the load that blocked commit.
        If it is not in the PRB the stall is treated as a PMS-stall and the
        CPL is unaffected.
        """
        prb = self.prb
        stalling_entry = prb.find(stalling_address)
        if stalling_entry is None:
            return
        pcb = self.pcb
        pcb.mark_stalled(stall_start)

        # Step 1: complete the commit period that just ended.  Requests that
        # completed before the stall are its parents; its depth is the maximum
        # of their depths, and its children (requests issued while it ran)
        # sit one level deeper.  Entries completing after the stall belong to
        # step 2; they are collected in the same pass over the buffer.
        ended_period_depth = pcb.depth
        invalidate = prb.invalidate
        late_completions: list = []
        for entry in prb._entries:
            if entry.valid and entry.completed and entry is not stalling_entry:
                if entry.completed_at <= stall_start:
                    if entry.depth > ended_period_depth:
                        ended_period_depth = entry.depth
                    invalidate(entry)
                else:
                    late_completions.append(entry)
        child_depth = ended_period_depth + 1
        for child in pcb.children:
            if child.valid:
                child.depth = child_depth
        pcb.depth = ended_period_depth

        # Step 2: initialise the new commit period that starts at resume time.
        new_depth = stalling_entry.depth
        invalidate(stalling_entry)
        for entry in late_completions:
            if entry.depth > new_depth:
                new_depth = entry.depth
            invalidate(entry)
        pcb.start_new_period(depth=new_depth, started_at=resume_time)
        if new_depth > self._cpl_snapshot:
            self._cpl_snapshot = new_depth

    # ------------------------------------------------------------------ retrieval

    @property
    def current_cpl(self) -> int:
        """The CPL accumulated since the last :meth:`retrieve`."""
        return max(self._cpl_snapshot, self.pcb.depth)

    def retrieve(self, reset_time: float = 0.0) -> CPLResult:
        """Read out the CPL and reset the estimator for the next interval."""
        result = CPLResult(
            cpl=self.current_cpl,
            tracked_loads=self.prb.insertions,
            evictions=self.prb.evictions,
            overlap_cycles=self.overlap_counter,
            sms_loads=self.completed_sms_loads,
        )
        self.prb.clear()
        self.pcb.reset(reset_time)
        self.overlap_counter = 0.0
        self.completed_sms_loads = 0
        self._cpl_snapshot = 0
        self.prb.insertions = 0
        self.prb.evictions = 0
        return result

    # ------------------------------------------------------------------ replay helpers

    def replay(self, loads: list[LoadRecord], stalls: list[CommitStall]) -> CPLResult:
        """Replay one interval's recorded events in time order and retrieve the CPL.

        The core model records load and stall events per interval; this helper
        feeds them to the estimator in the order the hardware would have seen
        them (completions before the commit-resume they trigger).
        """
        # Events sort by (time, priority); the running sequence number keeps
        # the sort stable on full ties without ever comparing the payloads
        # (records do not define an ordering).  The priority doubles as the
        # event kind: 0 = completion, 1 = commit resume, 2 = issue.
        events: list[tuple[float, int, int, object]] = []
        sequence = 0
        for load in loads:
            events.append((load.issue_time, 2, sequence, load))
            events.append((load.completion_time, 0, sequence + 1, load))
            sequence += 2
        for stall in stalls:
            if stall.load_address is not None:
                events.append((stall.end, 1, sequence, stall))
                sequence += 1
        events.sort()
        for _, kind, _, payload in events:
            if kind == 2:
                self.on_load_issued(payload.address, payload.issue_time)
            elif kind == 0:
                self.on_load_completed(
                    payload.address,
                    payload.completion_time,
                    payload.is_sms,
                    overlap_cycles=payload.overlap_cycles,
                )
            else:
                self.on_commit_resumed(payload.load_address, payload.start, payload.end)
        return self.retrieve()


def estimate_interval_cpl(interval: IntervalStats, prb_entries: int | None = 32) -> CPLResult:
    """Convenience wrapper: estimate the CPL of one recorded interval.

    The replay is a pure function of the interval's (immutable once the
    interval is closed) event lists and the PRB size, and several consumers —
    GDP, GDP-O, the Figure 5 component analysis, the MCP policies — replay
    the same interval.  The result is therefore memoised on the interval.
    """
    cache = getattr(interval, "_cpl_cache", None)
    if cache is None:
        cache = {}
        interval._cpl_cache = cache
    result = cache.get(prb_entries)
    if result is None:
        estimator = CPLEstimator(prb_entries=prb_entries)
        result = estimator.replay(interval.loads, interval.stalls)
        cache[prb_entries] = result
    return result
