"""Offline dataflow-graph construction and critical-path-length computation.

This is the *reference* implementation of dataflow accounting's central data
structure: the dependency graph between SMS-load requests and commit periods
(Section II of the paper).  It builds the full graph with the two rules the
paper gives —

1. the parent of a load request is the commit period that started closest in
   time before the request was issued, and
2. the child of a load request is the commit period that finished closest in
   time after the request completed

— and computes the Critical Path Length (CPL): the maximum number of loads on
any path through the graph.  The runtime hardware approximation (PRB/PCB plus
Algorithms 1–3) lives in :mod:`repro.core.cpl`; the property tests check the
two agree when the PRB has unlimited capacity.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.cpu.events import CommitStall, IntervalStats, LoadRecord
from repro.errors import AccountingError

__all__ = ["CommitPeriod", "DataflowGraph", "commit_periods_from_stalls", "build_dataflow_graph"]


@dataclass(frozen=True)
class CommitPeriod:
    """A maximal period during which the core commits instructions."""

    index: int
    start: float
    end: float


@dataclass
class DataflowGraph:
    """The load / commit-period dependency graph.

    Nodes are commit periods (by index) and loads (by position in ``loads``).
    ``load_parent[i]`` is the index of the commit period that is load *i*'s
    parent (or -1); ``load_child[i]`` the commit period the load feeds into
    (or -1 when the load completes after the last commit period).
    """

    commit_periods: list[CommitPeriod] = field(default_factory=list)
    loads: list[LoadRecord] = field(default_factory=list)
    load_parent: list[int] = field(default_factory=list)
    load_child: list[int] = field(default_factory=list)

    def critical_path_length(self) -> int:
        """Number of loads on a longest path through the graph.

        Commit periods contribute no length of their own; the CPL counts
        non-overlapped loads, which is what determines how many memory
        latencies must be paid back-to-back.
        """
        commit_depth = [0] * len(self.commit_periods)
        cpl = 0
        # Loads are processed in order of completion so every commit period's
        # depth is final before any load that depends on it is resolved — the
        # same topological order (by time) the hardware exploits.
        order = sorted(range(len(self.loads)), key=lambda i: self.loads[i].completion_time)
        for load_index in order:
            parent = self.load_parent[load_index]
            parent_depth = commit_depth[parent] if parent >= 0 else 0
            load_depth = parent_depth + 1
            cpl = max(cpl, load_depth)
            child = self.load_child[load_index]
            if child >= 0:
                commit_depth[child] = max(commit_depth[child], load_depth)
        return cpl

    def to_networkx(self):
        """Export the graph as a ``networkx.DiGraph`` (used by tests and examples)."""
        import networkx as nx

        graph = nx.DiGraph()
        for period in self.commit_periods:
            graph.add_node(("commit", period.index), start=period.start, end=period.end)
        for index, load in enumerate(self.loads):
            graph.add_node(("load", index), address=load.address)
            parent = self.load_parent[index]
            child = self.load_child[index]
            if parent >= 0:
                graph.add_edge(("commit", parent), ("load", index))
            if child >= 0:
                graph.add_edge(("load", index), ("commit", child))
        return graph


def commit_periods_from_stalls(stalls: list[CommitStall], start_time: float,
                               end_time: float) -> list[CommitPeriod]:
    """Derive commit periods from the stall intervals of one estimate interval.

    Commit periods are the gaps between consecutive stalls (plus the leading
    and trailing gaps).  Zero-length gaps (back-to-back stalls) are skipped.
    """
    if end_time < start_time:
        raise AccountingError("interval end precedes its start")
    periods: list[CommitPeriod] = []
    cursor = start_time
    for stall in sorted(stalls, key=lambda item: item.start):
        if stall.start > cursor:
            periods.append(CommitPeriod(index=len(periods), start=cursor, end=stall.start))
        cursor = max(cursor, stall.end)
    if end_time > cursor:
        periods.append(CommitPeriod(index=len(periods), start=cursor, end=end_time))
    return periods


def build_dataflow_graph(loads: list[LoadRecord], stalls: list[CommitStall],
                         start_time: float, end_time: float,
                         sms_only: bool = True) -> DataflowGraph:
    """Build the dataflow graph for one interval's event stream."""
    selected = [load for load in loads if load.is_sms] if sms_only else list(loads)
    periods = commit_periods_from_stalls(stalls, start_time, end_time)
    graph = DataflowGraph(commit_periods=periods, loads=selected)
    period_starts = [period.start for period in periods]
    period_ends = [period.end for period in periods]
    for load in selected:
        graph.load_parent.append(_parent_period(period_starts, load.issue_time))
        graph.load_child.append(_child_period(period_ends, load.completion_time))
    return graph


def from_interval(interval: IntervalStats, sms_only: bool = True) -> DataflowGraph:
    """Build the dataflow graph for one :class:`IntervalStats`."""
    return build_dataflow_graph(
        interval.loads, interval.stalls, interval.start_time, interval.end_time, sms_only=sms_only
    )


def _parent_period(period_starts: list[float], issue_time: float) -> int:
    """Commit period that started closest in time before the load issued."""
    index = bisect.bisect_right(period_starts, issue_time) - 1
    return index if index >= 0 else -1


def _child_period(period_ends: list[float], completion_time: float) -> int:
    """Commit period that finishes closest in time after the load completes."""
    index = bisect.bisect_left(period_ends, completion_time)
    return index if index < len(period_ends) else -1
