"""GDP and GDP-O: Graph-based Dynamic Performance accounting.

GDP estimates the private-mode SMS-load stall cycles of an application by
multiplying the Critical Path Length (CPL) of its load/commit-period dataflow
graph with the estimated private-mode memory latency:

    sigma_hat_SMS (GDP)   = CPL * lambda_hat
    sigma_hat_SMS (GDP-O) = CPL * (lambda_hat - O)

where ``O`` is the average number of cycles the processor commits instructions
while an SMS-load is pending (GDP-O's overlap correction).  The stall estimate
plugs into the CPI decomposition model (Equation 2) to produce the
private-mode CPI estimate pi-hat.

Both techniques are *transparent*: they only observe events (L1-miss issues,
completions, commit stalls) and never change how the memory system schedules
requests, so they add no performance overhead to the running applications.
"""

from __future__ import annotations

from repro.core.base import AccountingTechnique, PrivateModeEstimate
from repro.core.cpl import estimate_interval_cpl
from repro.core.performance_model import (
    components_from_interval,
    estimate_other_stalls,
    private_mode_cpi,
)
from repro.cpu.events import IntervalStats
from repro.latency.dief import DIEFLatencyEstimator

__all__ = ["GDPAccounting", "GDPOAccounting"]


class GDPAccounting(AccountingTechnique):
    """Graph-based Dynamic Performance accounting (GDP)."""

    name = "GDP"
    _use_overlap = False

    def __init__(self, prb_entries: int | None = 32,
                 latency_estimator: DIEFLatencyEstimator | None = None):
        self.prb_entries = prb_entries
        self.latency_estimator = latency_estimator or DIEFLatencyEstimator()

    def estimate(self, interval: IntervalStats) -> PrivateModeEstimate:
        """Estimate private-mode performance for one shared-mode interval."""
        components = components_from_interval(interval)
        cpl_result = estimate_interval_cpl(interval, prb_entries=self.prb_entries)
        latency = self.latency_estimator.estimate(interval)
        private_latency = latency.private_latency

        overlap = cpl_result.average_overlap if self._use_overlap else 0.0
        effective_latency = max(0.0, private_latency - overlap)
        sms_stall_estimate = cpl_result.cpl * effective_latency

        other_estimate = estimate_other_stalls(
            components, shared_latency=latency.shared_latency, private_latency=private_latency
        )
        cpi = private_mode_cpi(components, sms_stall_estimate, other_estimate)
        return PrivateModeEstimate(
            core=interval.core,
            interval_index=interval.index,
            cpi=cpi,
            ipc=1.0 / cpi if cpi > 0 else 0.0,
            sms_stall_cycles=sms_stall_estimate,
            cpl=float(cpl_result.cpl),
            private_latency=private_latency,
            overlap=cpl_result.average_overlap if self._use_overlap else None,
        )


class GDPOAccounting(GDPAccounting):
    """GDP with Overlap (GDP-O): subtracts commit/load overlap from the latency."""

    name = "GDP-O"
    _use_overlap = True
