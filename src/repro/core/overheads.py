"""Hardware cost model for GDP, GDP-O and DIEF (Section IV-C of the paper).

The paper argues dataflow accounting is cheap: the per-core CPL estimator is a
few thousand bits, the dominant cost is DIEF's sampled ATDs (shared with all
prior accounting work), and computing one performance estimate takes tens of
cycles on a simple sequential unit.  This module reproduces those estimates so
the claims can be checked against any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig, CMPConfig
from repro.core.pcb import PendingCommitBuffer
from repro.core.prb import PendingRequestBuffer

__all__ = [
    "ArithmeticCosts",
    "StorageOverhead",
    "cpl_estimator_storage_bits",
    "atd_storage_bits",
    "dief_storage_kilobytes",
    "estimate_computation_cycles",
    "gdp_overhead",
]

# Bit widths of the auxiliary counters next to the PRB/PCB (Figure 2).
_TIMESTAMP_COUNTER_BITS = 28
_OVERLAP_COUNTER_BITS = 32
# Physical-address tag bits assumed for ATD entries.
_ATD_TAG_BITS = 28
_BITS_PER_KILOBYTE = 8 * 1024


@dataclass(frozen=True)
class ArithmeticCosts:
    """Latency of the arithmetic used to evaluate Equation 2 (Section IV-C)."""

    add_cycles: int = 1
    multiply_cycles: int = 3
    divide_cycles: int = 25


@dataclass(frozen=True)
class StorageOverhead:
    """Storage breakdown of one accounting configuration."""

    cpl_estimator_bits_per_core: int
    dief_sampled_kilobytes: float
    dief_full_map_kilobytes: float
    n_cores: int

    @property
    def cpl_estimator_kilobytes_total(self) -> float:
        return self.n_cores * self.cpl_estimator_bits_per_core / _BITS_PER_KILOBYTE

    @property
    def total_kilobytes(self) -> float:
        return self.cpl_estimator_kilobytes_total + self.dief_sampled_kilobytes

    @property
    def sampling_saving_factor(self) -> float:
        """How much set sampling shrinks DIEF's ATD storage."""
        if self.dief_sampled_kilobytes == 0:
            return 0.0
        return self.dief_full_map_kilobytes / self.dief_sampled_kilobytes


def cpl_estimator_storage_bits(prb_entries: int = 32, with_overlap: bool = False) -> int:
    """Storage of one core's CPL estimation unit (PRB + PCB + counters, Figure 2).

    With 32 PRB entries this evaluates to roughly the paper's 3117 bits for
    GDP and 3597 bits for GDP-O.
    """
    prb = PendingRequestBuffer(capacity=prb_entries)
    bits = prb.storage_bits(with_overlap=with_overlap)
    bits += PendingCommitBuffer.storage_bits(prb_entries)
    bits += _TIMESTAMP_COUNTER_BITS
    if with_overlap:
        bits += _OVERLAP_COUNTER_BITS
    return bits


def atd_storage_bits(llc: CacheConfig, sampled_sets: int | None, tag_bits: int = _ATD_TAG_BITS) -> int:
    """Storage of one core's auxiliary tag directory.

    ``sampled_sets=None`` models the original full-map directory DIEF used;
    passing a small number models the set-sampled variant this work adopts.
    """
    sets = llc.num_sets if sampled_sets is None else min(sampled_sets, llc.num_sets)
    per_line = tag_bits + 1  # tag + valid bit
    return sets * llc.associativity * per_line


def dief_storage_kilobytes(config: CMPConfig, sampled_sets: int | None = None) -> float:
    """Total DIEF ATD storage for every core of the CMP, in kilobytes."""
    if sampled_sets is None:
        sampled_sets = config.accounting.atd_sampled_sets
    bits = config.n_cores * atd_storage_bits(config.llc, sampled_sets)
    return bits / _BITS_PER_KILOBYTE


def estimate_computation_cycles(costs: ArithmeticCosts | None = None) -> int:
    """Cycles to evaluate Equation 2 once (2 divisions, 2 multiplies, 5 additions).

    With the paper's assumed sequential unit (1/3/25-cycle add/multiply/divide)
    this is 61 cycles of arithmetic plus pipeline overhead; the paper quotes
    71 cycles, comparable to prior work.
    """
    costs = costs or ArithmeticCosts()
    return 2 * costs.divide_cycles + 2 * costs.multiply_cycles + 5 * costs.add_cycles


def gdp_overhead(config: CMPConfig, with_overlap: bool = False) -> StorageOverhead:
    """Storage overhead of GDP (or GDP-O) on a given CMP configuration."""
    return StorageOverhead(
        cpl_estimator_bits_per_core=cpl_estimator_storage_bits(
            config.accounting.prb_entries, with_overlap=with_overlap
        ),
        dief_sampled_kilobytes=dief_storage_kilobytes(config),
        dief_full_map_kilobytes=config.n_cores
        * atd_storage_bits(config.llc, None)
        / _BITS_PER_KILOBYTE,
        n_cores=config.n_cores,
    )
