"""The Pending Commit Buffer (PCB).

The PCB is a single register (per core) describing the commit period that is
currently in progress (Figure 2 of the paper): its depth in the dataflow
graph, when it started, when it stalled, and which pending PRB requests are
its children.  Together with the PRB it holds exactly the state Algorithms
1–3 need to compute the critical path length online.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.prb import PRBEntry

__all__ = ["PendingCommitBuffer"]

# Field widths from Figure 2 (Depth, Started at, Stalled at; the Children bit
# vector has one bit per PRB entry).
_DEPTH_BITS = 15
_TIMESTAMP_BITS = 28


@dataclass
class PendingCommitBuffer:
    """State of the in-progress commit period."""

    depth: int = 0
    started_at: float = 0.0
    stalled_at: float = 0.0
    children: list[PRBEntry] = field(default_factory=list)

    def start_new_period(self, depth: int, started_at: float) -> None:
        """Begin a new commit period (Step 2 of Algorithm 3)."""
        self.depth = depth
        self.started_at = started_at
        self.stalled_at = started_at
        self.children = []

    def add_child(self, entry: PRBEntry) -> None:
        """Record that a request issued during this commit period (Algorithm 1)."""
        self.children.append(entry)

    def remove_child(self, entry: PRBEntry) -> None:
        """Drop a child pointer (when a PMS-load invalidates its PRB entry)."""
        self.children = [child for child in self.children if child is not entry]

    def valid_children(self) -> list[PRBEntry]:
        """Children whose PRB entries are still valid."""
        return [child for child in self.children if child.valid]

    def mark_stalled(self, time: float) -> None:
        """Record when this commit period stopped committing instructions."""
        self.stalled_at = time

    def reset(self, time: float = 0.0) -> None:
        """Reset the PCB, e.g. when the CPL is retrieved at an interval boundary."""
        self.start_new_period(depth=0, started_at=time)

    @staticmethod
    def storage_bits(prb_entries: int) -> int:
        """PCB storage cost in bits for a given PRB size (Figure 2)."""
        return _DEPTH_BITS + 2 * _TIMESTAMP_BITS + prb_entries
