"""The CPI decomposition performance model (Equations 1 and 2 of the paper).

Shared-mode performance decomposes into commit cycles plus stall cycles by
cause (Equation 1):

    CPI_p = (C_p + S_ind + S_loads + S_other) / Inst_p

with load stalls further split into private-memory-system (PMS) and shared-
memory-system (SMS) load stalls.  Because only the memory system differs
between the shared and private modes, the commit cycles, the memory-
independent stalls and the PMS-load stalls carry over unchanged; the private-
mode estimate replaces the SMS-load stalls and the (rare) other stalls with
estimates (Equation 2):

    pi_hat_p = (C_p + S_ind + S_pms + sigma_hat_sms + sigma_hat_other) / Inst_p
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.events import IntervalStats
from repro.errors import AccountingError

__all__ = ["CPIComponents", "components_from_interval", "estimate_other_stalls", "private_mode_cpi"]


@dataclass(frozen=True)
class CPIComponents:
    """Shared-mode cycle components of one estimate interval (Equation 1)."""

    instructions: int
    commit_cycles: float
    independent_stall_cycles: float
    pms_stall_cycles: float
    sms_stall_cycles: float
    other_stall_cycles: float

    @property
    def total_cycles(self) -> float:
        return (
            self.commit_cycles
            + self.independent_stall_cycles
            + self.pms_stall_cycles
            + self.sms_stall_cycles
            + self.other_stall_cycles
        )

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0


def components_from_interval(interval: IntervalStats) -> CPIComponents:
    """Extract the Equation 1 components from a shared-mode interval."""
    return CPIComponents(
        instructions=interval.instructions,
        commit_cycles=interval.commit_cycles,
        independent_stall_cycles=interval.stall_independent,
        pms_stall_cycles=interval.stall_pms,
        sms_stall_cycles=interval.stall_sms,
        other_stall_cycles=interval.stall_other,
    )


def estimate_other_stalls(components: CPIComponents, shared_latency: float,
                          private_latency: float) -> float:
    """Estimate private-mode "other" stalls (store buffer, blocked L1, ...).

    The paper observes these events are rare and that scaling their length by
    the ratio of private to shared memory latency is sufficiently accurate.
    """
    if components.other_stall_cycles <= 0:
        return 0.0
    if shared_latency <= 0:
        return components.other_stall_cycles
    ratio = max(0.0, min(1.0, private_latency / shared_latency))
    return components.other_stall_cycles * ratio


def private_mode_cpi(components: CPIComponents, sms_stall_estimate: float,
                     other_stall_estimate: float | None = None) -> float:
    """Evaluate Equation 2: the private-mode CPI estimate pi-hat.

    ``sms_stall_estimate`` is the accounting technique's sigma-hat_SMS;
    ``other_stall_estimate`` defaults to carrying the shared-mode other stalls
    over unchanged.
    """
    if components.instructions <= 0:
        raise AccountingError("cannot estimate CPI over an interval with no instructions")
    if sms_stall_estimate < 0:
        sms_stall_estimate = 0.0
    if other_stall_estimate is None:
        other_stall_estimate = components.other_stall_cycles
    cycles = (
        components.commit_cycles
        + components.independent_stall_cycles
        + components.pms_stall_cycles
        + sms_stall_estimate
        + other_stall_estimate
    )
    return cycles / components.instructions
