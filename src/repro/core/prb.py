"""The Pending Request Buffer (PRB).

The PRB is a small, fully associative buffer — indexed by request address and
by buffer index — that holds the SMS-load requests the CPL-estimation unit is
currently tracking (Figure 2 of the paper).  Each entry keeps the request's
depth in the dataflow graph, whether it has completed, when it completed and
(for GDP-O) how many cycles the processor committed instructions while the
request was pending.

The buffer is deliberately simple: when it is full the oldest pending request
is invalidated.  Section IV-A argues (and Section VII-B measures) that this
rarely disturbs the CPL, because if the oldest load has not stalled commit it
is unlikely to sit on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AccountingError

__all__ = ["PRBEntry", "PendingRequestBuffer"]

# Field widths from Figure 2, used to report the hardware storage cost.
_ADDRESS_BITS = 48
_DEPTH_BITS = 15
_TIMESTAMP_BITS = 28
_OVERLAP_BITS = 14
_FLAG_BITS = 2  # Completed + Valid


@dataclass(slots=True)
class PRBEntry:
    """One PRB entry (one in-flight or recently completed SMS-load)."""

    address: int
    depth: int = 0
    completed: bool = False
    completed_at: float = 0.0
    overlap: float = 0.0
    valid: bool = True


class PendingRequestBuffer:
    """Bounded buffer of pending load requests with oldest-entry eviction.

    ``capacity=None`` models unlimited buffer space, which the paper uses as
    the reference when measuring how much the capacity-eviction policy costs
    in CPL accuracy (Figure 7e).
    """

    def __init__(self, capacity: int | None = 32):
        if capacity is not None and capacity <= 0:
            raise AccountingError("the PRB needs a positive capacity (or None for unlimited)")
        self.capacity = capacity
        self._entries: list[PRBEntry] = []
        # Invalidated entries are removed lazily (compacting on every insert
        # would rebuild the list per request); this tracks the live count.
        self._valid_count = 0
        self.evictions = 0
        self.insertions = 0

    def __len__(self) -> int:
        return self._valid_count

    def __iter__(self):
        return (entry for entry in self._entries if entry.valid)

    # ------------------------------------------------------------------ insertion / lookup

    def insert(self, address: int, depth: int = 0) -> PRBEntry:
        """Algorithm 1: add a request, evicting the oldest pending one if full."""
        capacity = self.capacity
        if capacity is not None:
            if self._valid_count >= capacity:
                self._evict_oldest()
            if len(self._entries) >= 2 * capacity:
                self._compact()
        elif len(self._entries) > 64 and len(self._entries) > 2 * self._valid_count:
            self._compact()
        entry = PRBEntry(address=address, depth=depth)
        self._entries.append(entry)
        self._valid_count += 1
        self.insertions += 1
        return entry

    def find(self, address: int) -> PRBEntry | None:
        """Return the oldest valid entry with the given address, if any."""
        for entry in self._entries:
            if entry.valid and entry.address == address:
                return entry
        return None

    def invalidate(self, entry: PRBEntry) -> None:
        if entry.valid:
            entry.valid = False
            self._valid_count -= 1

    # ------------------------------------------------------------------ queries used by Algorithm 3

    def completed_entries(self) -> list[PRBEntry]:
        """All valid entries whose request has completed."""
        return [entry for entry in self._entries if entry.valid and entry.completed]

    def pending_entries(self) -> list[PRBEntry]:
        """All valid entries whose request is still outstanding."""
        return [entry for entry in self._entries if entry.valid and not entry.completed]

    def clear(self) -> None:
        self._entries.clear()
        self._valid_count = 0

    # ------------------------------------------------------------------ internals

    def _evict_oldest(self) -> None:
        for entry in self._entries:
            if entry.valid and not entry.completed:
                self.invalidate(entry)
                self.evictions += 1
                return
        # Everything is completed; drop the oldest completed entry instead.
        for entry in self._entries:
            if entry.valid:
                self.invalidate(entry)
                self.evictions += 1
                break

    def _compact(self) -> None:
        self._entries = [entry for entry in self._entries if entry.valid]

    # ------------------------------------------------------------------ hardware cost

    @staticmethod
    def entry_bits(with_overlap: bool = False) -> int:
        """Storage bits per PRB entry (Figure 2 field widths)."""
        bits = _ADDRESS_BITS + _DEPTH_BITS + _TIMESTAMP_BITS + _FLAG_BITS
        if with_overlap:
            bits += _OVERLAP_BITS
        return bits

    def storage_bits(self, with_overlap: bool = False) -> int:
        """Total PRB storage in bits for the configured capacity."""
        capacity = self.capacity if self.capacity is not None else self._valid_count
        return capacity * self.entry_bits(with_overlap)
