"""Out-of-order core model and the event records it produces."""

from repro.cpu.core import CoreProgress, OutOfOrderCore
from repro.cpu.events import CommitStall, IntervalStats, LoadRecord, StallCause, annotate_overlap

__all__ = [
    "CoreProgress",
    "OutOfOrderCore",
    "CommitStall",
    "IntervalStats",
    "LoadRecord",
    "StallCause",
    "annotate_overlap",
]
