"""Trace-driven out-of-order core model.

The model is interval-style: every instruction gets a dispatch time, a ready
time and a commit time with O(1) work, which reproduces the behaviour the
paper's accounting techniques depend on without cycle-stepping:

* in-order commit at the pipeline width, with commit stalls whenever the
  instruction at the head of the ROB (modelled through the commit stream) is a
  load whose data has not returned;
* memory-level parallelism: independent loads overlap, loads with data
  dependencies serialise;
* ROB-occupancy back-pressure: dispatch of instruction *i* cannot overtake the
  commit of instruction *i - ROB_entries*;
* MSHR limits via the memory hierarchy.

The core records the event stream (L1-miss loads, commit stalls) that the
accounting layer replays, and buckets statistics per estimate interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.events import CommitStall, IntervalStats, LoadRecord, StallCause, annotate_overlap
from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.config import CMPConfig
from repro.workloads.trace import InstrKind, Trace

__all__ = ["CoreProgress", "OutOfOrderCore"]

# Every LONG_OP_PERIOD-th compute instruction is treated as a long-latency
# operation (e.g. an FP divide).  The choice is a deterministic function of the
# instruction index so shared- and private-mode runs stall on the same
# instructions, as they would in reality.
_LONG_OP_PERIOD = 24
_LONG_OP_LATENCY = 12


@dataclass(frozen=True)
class CoreProgress:
    """Summary of a core's progress, used by the co-simulation scheduler."""

    core: int
    committed_instructions: int
    current_time: float
    finished: bool


class OutOfOrderCore:
    """One processor core executing a trace against a memory hierarchy."""

    def __init__(self, core_id: int, trace: Trace, config: CMPConfig,
                 hierarchy: MemoryHierarchy, target_instructions: int | None = None,
                 interval_instructions: int | None = None):
        if len(trace) == 0:
            raise SimulationError("cannot run an empty trace")
        self.core_id = core_id
        self.trace = trace
        self.config = config
        self.hierarchy = hierarchy
        self.target_instructions = target_instructions or len(trace)
        self.interval_instructions = (
            interval_instructions or config.accounting.estimate_interval_instructions
        )
        self.epoch_cycles = config.accounting.asm_epoch_cycles

        width = config.core.width
        self._dispatch_interval = 1.0 / width
        self._commit_interval = 1.0 / width
        self._rob_entries = config.core.rob_entries
        self._compute_latency = float(config.core.compute_latency)

        # Rolling commit-time window used for the ROB-occupancy constraint.
        self._commit_window = [0.0] * self._rob_entries
        self._last_dispatch = 0.0
        self._last_commit = 0.0
        self._trace_position = 0
        self._committed = 0
        # Completion time of each load, indexed by trace position, for
        # load-to-load dependencies.  Only recent entries are retained.
        self._load_completion: dict[int, float] = {}

        self.intervals: list[IntervalStats] = []
        self._interval = self._new_interval(index=0, start_time=0.0)
        self.finished = False

    # ------------------------------------------------------------------ public API

    def progress(self) -> CoreProgress:
        return CoreProgress(
            core=self.core_id,
            committed_instructions=self._committed,
            current_time=self._last_commit,
            finished=self.finished,
        )

    @property
    def committed_instructions(self) -> int:
        return self._committed

    @property
    def current_time(self) -> float:
        return self._last_commit

    def next_event_time(self) -> float:
        """Estimated time of the next instruction's dispatch (for co-sim ordering)."""
        oldest_commit = self._commit_window[self._trace_position % self._rob_entries]
        return max(self._last_dispatch + self._dispatch_interval, oldest_commit)

    def step(self) -> None:
        """Process one instruction."""
        if self.finished:
            return
        position = self._trace_position % len(self.trace)
        kind = self.trace.kinds[position]
        address = self.trace.addresses[position]
        dep = self.trace.deps[position]

        dispatch = self.next_event_time()
        self._last_dispatch = dispatch

        if kind == InstrKind.COMPUTE:
            ready, cause, load_record = self._execute_compute(dispatch)
        elif kind == InstrKind.STORE:
            ready, cause, load_record = self._execute_store(dispatch, address)
        else:
            ready, cause, load_record = self._execute_load(dispatch, address, dep)

        self._commit(ready, cause, load_record)
        self._trace_position += 1
        self._committed += 1
        if self._committed % self.interval_instructions == 0:
            self._close_interval()
        if self._committed >= self.target_instructions:
            self._finish()

    # ------------------------------------------------------------------ execution

    def _execute_compute(self, dispatch: float):
        latency = self._compute_latency
        if self._trace_position % _LONG_OP_PERIOD == 0:
            latency = float(_LONG_OP_LATENCY)
        return dispatch + latency, StallCause.INDEPENDENT, None

    def _execute_store(self, dispatch: float, address: int):
        # The store buffer hides store latency from commit; the access still
        # updates cache state through the hierarchy.
        self.hierarchy.access(self.core_id, address, dispatch, is_store=True)
        return dispatch + self._compute_latency, StallCause.OTHER, None

    def _execute_load(self, dispatch: float, address: int, dep: int):
        issue = dispatch
        if dep >= 0:
            dep_completion = self._lookup_dependency(dep)
            issue = max(issue, dep_completion)
        result = self.hierarchy.access(self.core_id, address, issue)
        self._load_completion[self._trace_position] = result.completion_time
        if len(self._load_completion) > 4 * self._rob_entries:
            self._prune_dependencies()
        if result.l1_hit:
            # L1 hits never enter the PRB and cannot cause visible SMS stalls.
            return result.completion_time, StallCause.PMS_LOAD, None
        record = LoadRecord(
            instr_index=self._trace_position,
            address=address,
            issue_time=result.issue_time,
            completion_time=result.completion_time,
            is_sms=result.is_sms,
            latency=result.latency,
            interference_cycles=result.interference_cycles,
            llc_hit=result.llc_hit,
            interference_miss=result.interference_miss,
        )
        self._interval.loads.append(record)
        cause = StallCause.SMS_LOAD if result.is_sms else StallCause.PMS_LOAD
        return result.completion_time, cause, record

    def _lookup_dependency(self, dep_position: int) -> float:
        # Dependencies refer to positions in the (possibly repeated) trace; map
        # them into the current repetition.
        base = (self._trace_position // len(self.trace)) * len(self.trace)
        candidates = (base + dep_position, base - len(self.trace) + dep_position)
        for candidate in candidates:
            if candidate in self._load_completion:
                return self._load_completion[candidate]
        return 0.0

    def _prune_dependencies(self) -> None:
        horizon = self._trace_position - 2 * self._rob_entries
        stale = [key for key in self._load_completion if key < horizon]
        for key in stale:
            del self._load_completion[key]

    # ------------------------------------------------------------------ commit

    def _commit(self, ready: float, cause: str, load_record: LoadRecord | None) -> None:
        earliest = self._last_commit + self._commit_interval
        commit_time = max(earliest, ready)
        gap = commit_time - earliest
        if gap > 1e-9:
            # The portion of the gap beyond the pipelined commit rate is a
            # stall; attribute it to the instruction that blocked commit.  The
            # stall starts at the cycle the instruction could have committed.
            self._record_stall(earliest, commit_time, gap, cause, load_record)
        self._last_commit = commit_time
        self._commit_window[self._trace_position % self._rob_entries] = commit_time
        self._bucket_epoch(commit_time, load_record)

    def _record_stall(self, start: float, end: float, cycles: float, cause: str,
                      load_record: LoadRecord | None) -> None:
        interval = self._interval
        if cause == StallCause.SMS_LOAD:
            interval.stall_sms += cycles
        elif cause == StallCause.PMS_LOAD:
            interval.stall_pms += cycles
        elif cause == StallCause.INDEPENDENT:
            interval.stall_independent += cycles
        else:
            interval.stall_other += cycles
        stall = CommitStall(
            start=start,
            end=end,
            cause=cause,
            load_address=load_record.address if load_record is not None else None,
            load_is_sms=load_record.is_sms if load_record is not None else False,
        )
        interval.stalls.append(stall)
        epoch = int(start // self.epoch_cycles)
        interval.epoch_stall_cycles[epoch] = interval.epoch_stall_cycles.get(epoch, 0.0) + cycles
        if load_record is not None:
            load_record.caused_stall = True
            load_record.stall_start = start
            load_record.stall_end = end

    def _bucket_epoch(self, commit_time: float, load_record: LoadRecord | None) -> None:
        interval = self._interval
        epoch = int(commit_time // self.epoch_cycles)
        interval.epoch_instructions[epoch] = interval.epoch_instructions.get(epoch, 0) + 1
        if load_record is not None and load_record.is_sms:
            interval.epoch_sms_accesses[epoch] = interval.epoch_sms_accesses.get(epoch, 0) + 1

    # ------------------------------------------------------------------ intervals

    def _new_interval(self, index: int, start_time: float) -> IntervalStats:
        self.hierarchy.reset_interval_counters(self.core_id)
        return IntervalStats(
            core=self.core_id,
            index=index,
            start_time=start_time,
            end_time=start_time,
            instructions=0,
            commit_cycles=0.0,
            stall_sms=0.0,
            stall_pms=0.0,
            stall_independent=0.0,
            stall_other=0.0,
        )

    def _close_interval(self) -> None:
        interval = self._interval
        interval.end_time = self._last_commit
        interval.instructions = self.interval_instructions
        interval.commit_cycles = max(
            0.0, interval.total_cycles - interval.stall_cycles
        )
        counters = self.hierarchy.counters[self.core_id]
        interval.sms_loads = counters.sms_loads
        interval.sms_latency_sum = counters.sms_latency_sum
        interval.pre_llc_latency_sum = counters.pre_llc_latency_sum
        interval.post_llc_latency_sum = counters.post_llc_latency_sum
        interval.interference_sum = counters.interference_sum
        interval.interference_miss_penalty_sum = counters.interference_miss_penalty_sum
        interval.dram_interference_sum = counters.dram_interference_sum
        interval.llc_accesses = counters.llc_accesses
        interval.llc_misses = counters.llc_misses
        interval.interference_misses = counters.interference_misses
        interval.sampled_llc_misses = counters.sampled_llc_misses
        annotate_overlap(interval.loads, interval.stalls)
        self.intervals.append(interval)
        self._interval = self._new_interval(index=interval.index + 1, start_time=self._last_commit)

    def _finish(self) -> None:
        # Close a trailing partial interval if it contains any instructions.
        remainder = self._committed % self.interval_instructions
        if remainder:
            interval = self._interval
            interval.end_time = self._last_commit
            interval.instructions = remainder
            interval.commit_cycles = max(0.0, interval.total_cycles - interval.stall_cycles)
            counters = self.hierarchy.counters[self.core_id]
            interval.sms_loads = counters.sms_loads
            interval.sms_latency_sum = counters.sms_latency_sum
            interval.pre_llc_latency_sum = counters.pre_llc_latency_sum
            interval.post_llc_latency_sum = counters.post_llc_latency_sum
            interval.interference_sum = counters.interference_sum
            interval.interference_miss_penalty_sum = counters.interference_miss_penalty_sum
            interval.dram_interference_sum = counters.dram_interference_sum
            interval.llc_accesses = counters.llc_accesses
            interval.llc_misses = counters.llc_misses
            interval.interference_misses = counters.interference_misses
            interval.sampled_llc_misses = counters.sampled_llc_misses
            annotate_overlap(interval.loads, interval.stalls)
            self.intervals.append(interval)
        self.finished = True

    # ------------------------------------------------------------------ aggregate statistics

    @property
    def total_cycles(self) -> float:
        return self._last_commit

    @property
    def cpi(self) -> float:
        return self._last_commit / self._committed if self._committed else 0.0

    @property
    def ipc(self) -> float:
        return self._committed / self._last_commit if self._last_commit else 0.0
