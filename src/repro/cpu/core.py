"""Trace-driven out-of-order core model.

The model is interval-style: every instruction gets a dispatch time, a ready
time and a commit time with O(1) work, which reproduces the behaviour the
paper's accounting techniques depend on without cycle-stepping:

* in-order commit at the pipeline width, with commit stalls whenever the
  instruction at the head of the ROB (modelled through the commit stream) is a
  load whose data has not returned;
* memory-level parallelism: independent loads overlap, loads with data
  dependencies serialise;
* ROB-occupancy back-pressure: dispatch of instruction *i* cannot overtake the
  commit of instruction *i - ROB_entries*;
* MSHR limits via the memory hierarchy.

The core records the event stream (L1-miss loads, commit stalls) that the
accounting layer replays, and buckets statistics per estimate interval.

The per-instruction work is done inside :meth:`OutOfOrderCore.step_until`,
a batched loop that keeps all mutable state in local variables and only
writes it back when the batch ends (at a co-simulation deadline, a periodic
hook boundary, or completion).  :meth:`step` is a one-instruction batch.
"""

from __future__ import annotations

from repro.cpu.events import CommitStall, IntervalStats, LoadRecord, StallCause, annotate_overlap
from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.config import CMPConfig
from repro.workloads.trace import InstrKind, Trace

from dataclasses import dataclass

__all__ = ["CoreProgress", "OutOfOrderCore"]

# Every LONG_OP_PERIOD-th compute instruction is treated as a long-latency
# operation (e.g. an FP divide).  The choice is a deterministic function of the
# instruction index so shared- and private-mode runs stall on the same
# instructions, as they would in reality.
_LONG_OP_PERIOD = 24
_LONG_OP_LATENCY = 12

_INFINITY = float("inf")


@dataclass(frozen=True)
class CoreProgress:
    """Summary of a core's progress, used by the co-simulation scheduler."""

    core: int
    committed_instructions: int
    current_time: float
    finished: bool


class OutOfOrderCore:
    """One processor core executing a trace against a memory hierarchy."""

    def __init__(self, core_id: int, trace: Trace, config: CMPConfig,
                 hierarchy: MemoryHierarchy, target_instructions: int | None = None,
                 interval_instructions: int | None = None, record_events: bool = True):
        if len(trace) == 0:
            raise SimulationError("cannot run an empty trace")
        self.core_id = core_id
        # When False, per-event records (LoadRecord / CommitStall lists) are
        # not materialised: all timing, stall-cycle sums, hierarchy counters
        # and per-epoch buckets are still maintained, so results that read
        # only aggregates are bit-identical.  Ground-truth private-mode runs
        # and policies that act on aggregates use this to skip a large
        # allocation cost.
        self.record_events = record_events
        self.trace = trace
        self.config = config
        self.hierarchy = hierarchy
        self.target_instructions = target_instructions or len(trace)
        self.interval_instructions = (
            interval_instructions or config.accounting.estimate_interval_instructions
        )
        self.epoch_cycles = config.accounting.asm_epoch_cycles

        width = config.core.width
        self._dispatch_interval = 1.0 / width
        self._commit_interval = 1.0 / width
        self._rob_entries = config.core.rob_entries
        self._compute_latency = float(config.core.compute_latency)

        # Rolling commit-time window used for the ROB-occupancy constraint.
        self._commit_window = [0.0] * self._rob_entries
        self._last_dispatch = 0.0
        self._last_commit = 0.0
        self._trace_position = 0
        self._committed = 0
        # Completion time of recent loads, for load-to-load dependencies.
        # A fixed-size ring keyed by ``position % ring_size``; each slot
        # remembers which absolute trace position it holds so stale entries
        # are detected on lookup instead of being pruned eagerly.
        self._dep_ring_size = 4 * self._rob_entries
        self._dep_ring_position = [-1] * self._dep_ring_size
        self._dep_ring_completion = [0.0] * self._dep_ring_size

        self.intervals: list[IntervalStats] = []
        self._interval = self._new_interval(index=0, start_time=0.0)
        self.finished = False

    # ------------------------------------------------------------------ public API

    def progress(self) -> CoreProgress:
        return CoreProgress(
            core=self.core_id,
            committed_instructions=self._committed,
            current_time=self._last_commit,
            finished=self.finished,
        )

    @property
    def committed_instructions(self) -> int:
        return self._committed

    @property
    def current_time(self) -> float:
        return self._last_commit

    def next_event_time(self) -> float:
        """Estimated time of the next instruction's dispatch (for co-sim ordering)."""
        oldest_commit = self._commit_window[self._trace_position % self._rob_entries]
        return max(self._last_dispatch + self._dispatch_interval, oldest_commit)

    def step(self) -> None:
        """Process one instruction."""
        self.step_until(max_instructions=1)

    # ------------------------------------------------------------------ simulation kernel

    def step_until(self, time_limit: float = _INFINITY, hook_limit: float = _INFINITY,
                   max_instructions: int | None = None) -> None:
        """Process instructions in a tight batch.

        At least one instruction is processed (matching the behaviour of the
        former one-instruction ``step`` under the co-simulation heap); the
        batch then continues while the next dispatch estimate stays below
        ``time_limit`` and the commit time stays below ``hook_limit`` (the
        next periodic-hook boundary).  All per-instruction state lives in
        locals and is written back once when the batch ends.
        """
        if self.finished:
            return
        # ---- hoist instance state into locals (the entire point of batching)
        trace = self.trace
        # Unboxed column views: indexing the packed arrays directly would
        # re-box one int per access in this per-instruction loop.
        kinds, addresses, deps = trace.hot()
        trace_length = len(kinds)
        dispatch_interval = self._dispatch_interval
        commit_interval = self._commit_interval
        rob_entries = self._rob_entries
        compute_latency = self._compute_latency
        long_latency = float(_LONG_OP_LATENCY)
        commit_window = self._commit_window
        last_dispatch = self._last_dispatch
        last_commit = self._last_commit
        position = self._trace_position
        committed = self._committed
        interval_instructions = self.interval_instructions
        target = self.target_instructions
        epoch_cycles = self.epoch_cycles
        core_id = self.core_id
        hierarchy = self.hierarchy
        load_fast = hierarchy.load_fast
        store_fast = hierarchy.store_fast
        ring_size = self._dep_ring_size
        ring_position = self._dep_ring_position
        ring_completion = self._dep_ring_completion
        recording = self.record_events
        interval = self._interval
        interval_loads = interval.loads
        interval_stalls = interval.stalls
        cause_sms = StallCause.SMS_LOAD
        cause_pms = StallCause.PMS_LOAD
        cause_independent = StallCause.INDEPENDENT
        cause_other = StallCause.OTHER
        kind_compute = InstrKind.COMPUTE
        kind_store = InstrKind.STORE
        kind_load = InstrKind.LOAD
        # Epoch bucketing cache: consecutive commits usually land in the same
        # ASM epoch, so batch the per-epoch instruction count locally and
        # flush it into the interval dict when the epoch (or batch) ends.
        epoch_index = -1
        epoch_count = 0
        epoch_boundary = 0.0
        window_index = position % rob_entries
        trace_offset = position % trace_length
        # Counters replacing per-instruction modulo arithmetic.  ``committed``
        # and ``position`` always advance in lockstep, so the loop tracks only
        # ``position`` and recovers the commit count from the fixed offset.
        long_op_countdown = (-position) % _LONG_OP_PERIOD
        interval_countdown = interval_instructions - (committed % interval_instructions)
        position_offset = position - committed
        start_position = position
        stop_position = position_offset + target
        max_stop = position + max_instructions if max_instructions is not None else -1
        finished = False

        while True:
            dispatch = last_dispatch + dispatch_interval
            oldest_commit = commit_window[window_index]
            if oldest_commit > dispatch:
                dispatch = oldest_commit
            if dispatch >= time_limit and position != start_position:
                break
            kind = kinds[trace_offset]
            if kind == kind_compute:
                if long_op_countdown == 0:
                    ready = dispatch + long_latency
                else:
                    ready = dispatch + compute_latency
            elif kind == kind_store:
                # The store buffer hides store latency from commit; the access
                # still updates cache state through the hierarchy.
                store_fast(core_id, addresses[trace_offset], dispatch)
                ready = dispatch + compute_latency
            else:  # load
                address = addresses[trace_offset]
                issue = dispatch
                dep = deps[trace_offset]
                if dep >= 0:
                    # Dependencies refer to positions in the (possibly
                    # repeated) trace; map them into the current repetition,
                    # falling back to the previous one around a restart.
                    candidate = position - trace_offset + dep
                    slot = candidate % ring_size
                    if ring_position[slot] == candidate:
                        dep_completion = ring_completion[slot]
                        if dep_completion > issue:
                            issue = dep_completion
                    else:
                        candidate -= trace_length
                        if candidate >= 0:
                            slot = candidate % ring_size
                            if ring_position[slot] == candidate:
                                dep_completion = ring_completion[slot]
                                if dep_completion > issue:
                                    issue = dep_completion
                ready, info = load_fast(core_id, address, issue)
                slot = position % ring_size
                ring_position[slot] = position
                ring_completion[slot] = ready
                if info is None:
                    # L1 hits never enter the PRB and cannot cause visible
                    # SMS stalls.
                    record = None
                    sms_load = False
                else:
                    sms_load = info[0]
                    record = None
                    if recording:
                        is_sms, latency, interference, llc_hit, interference_miss = info
                        record = LoadRecord(
                            instr_index=position,
                            address=address,
                            issue_time=issue,
                            completion_time=ready,
                            is_sms=is_sms,
                            latency=latency,
                            interference_cycles=interference,
                            llc_hit=llc_hit,
                            interference_miss=interference_miss,
                        )
                        interval_loads.append(record)

            # ---- commit (in-order, at the pipeline width)
            earliest = last_commit + commit_interval
            if ready > earliest:
                commit_time = ready
                gap = commit_time - earliest
                if gap > 1e-9:
                    # The portion of the gap beyond the pipelined commit rate
                    # is a stall; attribute it to the blocking instruction.
                    # (Stalls are rare relative to commits, so the cause is
                    # derived here from the instruction kind instead of being
                    # tracked on every instruction.)
                    if kind == kind_compute:
                        interval.stall_independent += gap
                        cause = cause_independent
                        stall_record = None
                    elif kind == kind_store:
                        interval.stall_other += gap
                        cause = cause_other
                        stall_record = None
                    elif sms_load:
                        interval.stall_sms += gap
                        cause = cause_sms
                        stall_record = record
                    else:
                        interval.stall_pms += gap
                        cause = cause_pms
                        stall_record = record
                    stall_epoch = int(earliest // epoch_cycles)
                    buckets = interval.epoch_stall_cycles
                    buckets[stall_epoch] = buckets.get(stall_epoch, 0.0) + gap
                    if recording:
                        interval_stalls.append(CommitStall(
                            start=earliest,
                            end=commit_time,
                            cause=cause,
                            load_address=stall_record.address if stall_record is not None else None,
                            load_is_sms=stall_record.is_sms if stall_record is not None else False,
                        ))
                        if stall_record is not None:
                            stall_record.caused_stall = True
                            stall_record.stall_start = earliest
                            stall_record.stall_end = commit_time
            else:
                commit_time = earliest
            last_dispatch = dispatch
            last_commit = commit_time
            commit_window[window_index] = commit_time
            # Commit times are monotonic, so the epoch only moves forward;
            # recompute the division only when the cached boundary is crossed.
            if epoch_index >= 0 and commit_time < epoch_boundary:
                epoch = epoch_index
                epoch_count += 1
            else:
                epoch = int(commit_time // epoch_cycles)
                if epoch_count:
                    buckets = interval.epoch_instructions
                    buckets[epoch_index] = buckets.get(epoch_index, 0) + epoch_count
                epoch_index = epoch
                epoch_boundary = (epoch + 1) * epoch_cycles
                epoch_count = 1
            if kind == kind_load and sms_load:
                buckets = interval.epoch_sms_accesses
                buckets[epoch] = buckets.get(epoch, 0) + 1

            position += 1
            window_index += 1
            if window_index == rob_entries:
                window_index = 0
            trace_offset += 1
            if trace_offset == trace_length:
                trace_offset = 0
            long_op_countdown -= 1
            if long_op_countdown < 0:
                long_op_countdown = _LONG_OP_PERIOD - 1
            interval_countdown -= 1

            if interval_countdown == 0:
                interval_countdown = interval_instructions
                if epoch_count:
                    buckets = interval.epoch_instructions
                    buckets[epoch_index] = buckets.get(epoch_index, 0) + epoch_count
                    epoch_index = -1
                    epoch_count = 0
                self._last_commit = last_commit
                self._trace_position = position
                self._committed = position - position_offset
                self._close_interval()
                interval = self._interval
                interval_loads = interval.loads
                interval_stalls = interval.stalls
            if position == stop_position:
                finished = True
                break
            if last_commit >= hook_limit:
                break
            if position == max_stop:
                break

        # ---- write locals back
        if epoch_count:
            buckets = interval.epoch_instructions
            buckets[epoch_index] = buckets.get(epoch_index, 0) + epoch_count
        self._last_dispatch = last_dispatch
        self._last_commit = last_commit
        self._trace_position = position
        self._committed = position - position_offset
        if finished:
            self._finish()

    # ------------------------------------------------------------------ intervals

    def _new_interval(self, index: int, start_time: float) -> IntervalStats:
        self.hierarchy.reset_interval_counters(self.core_id)
        return IntervalStats(
            core=self.core_id,
            index=index,
            start_time=start_time,
            end_time=start_time,
            instructions=0,
            commit_cycles=0.0,
            stall_sms=0.0,
            stall_pms=0.0,
            stall_independent=0.0,
            stall_other=0.0,
        )

    def _close_interval(self) -> None:
        interval = self._interval
        interval.end_time = self._last_commit
        interval.instructions = self.interval_instructions
        interval.commit_cycles = max(
            0.0, interval.total_cycles - interval.stall_cycles
        )
        counters = self.hierarchy.counters[self.core_id]
        interval.sms_loads = counters.sms_loads
        interval.sms_latency_sum = counters.sms_latency_sum
        interval.pre_llc_latency_sum = counters.pre_llc_latency_sum
        interval.post_llc_latency_sum = counters.post_llc_latency_sum
        interval.interference_sum = counters.interference_sum
        interval.interference_miss_penalty_sum = counters.interference_miss_penalty_sum
        interval.dram_interference_sum = counters.dram_interference_sum
        interval.llc_accesses = counters.llc_accesses
        interval.llc_misses = counters.llc_misses
        interval.interference_misses = counters.interference_misses
        interval.sampled_llc_misses = counters.sampled_llc_misses
        annotate_overlap(interval.loads, interval.stalls)
        self.intervals.append(interval)
        self._interval = self._new_interval(index=interval.index + 1, start_time=self._last_commit)

    def _finish(self) -> None:
        # Close a trailing partial interval if it contains any instructions.
        remainder = self._committed % self.interval_instructions
        if remainder:
            interval = self._interval
            interval.end_time = self._last_commit
            interval.instructions = remainder
            interval.commit_cycles = max(0.0, interval.total_cycles - interval.stall_cycles)
            counters = self.hierarchy.counters[self.core_id]
            interval.sms_loads = counters.sms_loads
            interval.sms_latency_sum = counters.sms_latency_sum
            interval.pre_llc_latency_sum = counters.pre_llc_latency_sum
            interval.post_llc_latency_sum = counters.post_llc_latency_sum
            interval.interference_sum = counters.interference_sum
            interval.interference_miss_penalty_sum = counters.interference_miss_penalty_sum
            interval.dram_interference_sum = counters.dram_interference_sum
            interval.llc_accesses = counters.llc_accesses
            interval.llc_misses = counters.llc_misses
            interval.interference_misses = counters.interference_misses
            interval.sampled_llc_misses = counters.sampled_llc_misses
            annotate_overlap(interval.loads, interval.stalls)
            self.intervals.append(interval)
        self.finished = True

    # ------------------------------------------------------------------ aggregate statistics

    @property
    def total_cycles(self) -> float:
        return self._last_commit

    @property
    def cpi(self) -> float:
        return self._last_commit / self._committed if self._committed else 0.0

    @property
    def ipc(self) -> float:
        return self._committed / self._last_commit if self._last_commit else 0.0
