"""Event records produced by the core model.

The accounting techniques never see the core's internal state directly; they
observe the same events a hardware implementation would: load requests that
miss the L1 (issue and completion), commit stalls and when commit resumes.
These records are the interface between the core model and the accounting
layer (GDP/GDP-O and the baselines).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace

__all__ = [
    "LoadRecord",
    "CommitStall",
    "IntervalStats",
    "StallCause",
    "annotate_overlap",
]


class StallCause:
    """Commit-stall cause categories from the paper's performance model."""

    SMS_LOAD = "sms"        # load that visited the shared memory system
    PMS_LOAD = "pms"        # load satisfied by the private memory system
    INDEPENDENT = "ind"     # memory-independent (long-latency compute)
    OTHER = "other"         # store buffer / blocked L1 / misc. rare events


@dataclass(slots=True)
class LoadRecord:
    """One load that missed in the L1 data cache."""

    instr_index: int
    address: int
    issue_time: float
    completion_time: float
    is_sms: bool
    latency: float
    interference_cycles: float = 0.0
    llc_hit: bool = False
    interference_miss: bool | None = None
    caused_stall: bool = False
    stall_start: float = 0.0
    stall_end: float = 0.0
    overlap_cycles: float = 0.0

    @property
    def stall_cycles(self) -> float:
        return max(0.0, self.stall_end - self.stall_start) if self.caused_stall else 0.0


@dataclass(frozen=True, slots=True)
class CommitStall:
    """A period during which the core committed no instructions."""

    start: float
    end: float
    cause: str
    load_address: int | None = None
    load_is_sms: bool = False

    @property
    def cycles(self) -> float:
        return self.end - self.start


@dataclass
class IntervalStats:
    """Everything the accounting layer may consume for one estimate interval.

    An interval covers a fixed number of committed instructions (the paper
    re-evaluates estimates every five million clock cycles; this reproduction
    uses instruction-count intervals so shared- and private-mode intervals
    cover exactly the same instructions, as the methodology requires).
    """

    core: int
    index: int
    start_time: float
    end_time: float
    instructions: int
    commit_cycles: float
    stall_sms: float
    stall_pms: float
    stall_independent: float
    stall_other: float
    loads: list[LoadRecord] = field(default_factory=list)
    stalls: list[CommitStall] = field(default_factory=list)
    # Per-epoch buckets used by the invasive ASM baseline (epoch index -> count).
    epoch_instructions: dict[int, int] = field(default_factory=dict)
    epoch_stall_cycles: dict[int, float] = field(default_factory=dict)
    epoch_sms_accesses: dict[int, int] = field(default_factory=dict)
    # Snapshot of the memory-hierarchy counters for this core and interval.
    sms_loads: int = 0
    sms_latency_sum: float = 0.0
    pre_llc_latency_sum: float = 0.0
    post_llc_latency_sum: float = 0.0
    interference_sum: float = 0.0
    interference_miss_penalty_sum: float = 0.0
    dram_interference_sum: float = 0.0
    llc_accesses: int = 0
    llc_misses: int = 0
    interference_misses: int = 0
    sampled_llc_misses: int = 0

    @property
    def total_cycles(self) -> float:
        return self.end_time - self.start_time

    @property
    def stall_cycles(self) -> float:
        return self.stall_sms + self.stall_pms + self.stall_independent + self.stall_other

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.total_cycles if self.total_cycles else 0.0

    def average_sms_latency(self) -> float:
        return self.sms_latency_sum / self.sms_loads if self.sms_loads else 0.0

    def average_interference(self) -> float:
        return self.interference_sum / self.sms_loads if self.sms_loads else 0.0

    def sms_load_records(self) -> list[LoadRecord]:
        return [load for load in self.loads if load.is_sms]

    def copy_without_events(self) -> "IntervalStats":
        """Lightweight copy used when event lists are no longer needed."""
        return replace(self, loads=[], stalls=[])


def annotate_overlap(loads: list[LoadRecord], stalls: list[CommitStall]) -> None:
    """Fill in each load's ``overlap_cycles``: pending cycles during which the CPU commits.

    The hardware counts, per in-flight L1 miss, the cycles where the processor
    commits instructions while the request is pending (the Overlap field of
    the PRB).  Offline this is the request's lifetime minus its overlap with
    commit-stall intervals.
    """
    if not loads:
        return
    # Flat local copies: the overlap scan is quadratic in the worst case and
    # dominated by attribute loads and min/max calls when done on the records
    # directly.
    stall_starts = [stall.start for stall in stalls]
    stall_ends = [stall.end for stall in stalls]
    n_stalls = len(stall_starts)
    bisect_left = bisect.bisect_left
    for load in loads:
        issue = load.issue_time
        completion = load.completion_time
        lifetime = completion - issue
        if lifetime < 0.0:
            lifetime = 0.0
        stalled = 0.0
        # Only stalls that can overlap [issue, completion) matter; stalls are
        # sorted by start time because commit progresses monotonically.
        first = bisect_left(stall_starts, issue)
        if first > 0:
            first -= 1
        for index in range(first, n_stalls):
            start = stall_starts[index]
            if start >= completion:
                break
            end = stall_ends[index]
            if end > completion:
                end = completion
            if start < issue:
                start = issue
            if end > start:
                stalled += end - start
        overlap = lifetime - stalled
        load.overlap_cycles = overlap if overlap > 0.0 else 0.0
