"""DRAM subsystem: bank/row-buffer model and the FR-FCFS-style memory controller."""

from repro.dram.bank import DRAMBank
from repro.dram.controller import DRAMAccessResult, MemoryController

__all__ = ["DRAMBank", "DRAMAccessResult", "MemoryController"]
