"""DRAM bank and row-buffer state.

Each bank keeps its open row (open-page policy) and the time at which it can
accept the next command.  The memory controller keeps one set of banks for the
actual shared-mode schedule and, per core, a *shadow* set that emulates the
schedule the core would have seen alone — the mechanism DIEF uses to estimate
private-mode latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAMTimingConfig

__all__ = ["DRAMBank"]


@dataclass
class DRAMBank:
    """State of one DRAM bank."""

    timing: DRAMTimingConfig
    open_row: int | None = None
    next_ready: float = 0.0
    row_hits: int = 0
    row_misses: int = 0

    def access_latency(self, row: int) -> tuple[int, bool]:
        """Return (latency, row_hit) for accessing ``row`` given the current open row."""
        if self.open_row == row:
            return self.timing.row_hit_latency, True
        return self.timing.row_miss_latency, False

    def service(self, row: int, start_time: float) -> tuple[float, bool]:
        """Service one access starting no earlier than ``start_time``.

        Returns (completion_time, row_hit).  The bank becomes ready for the
        next command once the access completes, and the open row is updated
        per the open-page policy.
        """
        latency, row_hit = self.access_latency(row)
        begin = max(start_time, self.next_ready)
        completion = begin + latency
        self.next_ready = completion
        self.open_row = row
        if row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        return completion, row_hit

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def reset(self) -> None:
        self.open_row = None
        self.next_ready = 0.0
        self.row_hits = 0
        self.row_misses = 0
