"""Memory controller model: banks, channels, data bus and FR-FCFS-style scheduling.

The controller resolves each read request into a queueing delay, a bank access
(row hit or row miss) and a data-bus transfer.  Because the surrounding
simulation is trace driven and single pass, requests are scheduled in arrival
order; FR-FCFS behaviour is approximated through the open-page policy (row
hits are cheap) and bank-level parallelism.  Two features matter for the
paper's evaluation and are modelled explicitly:

* **interference attribution** — for every request, the controller also
  advances a per-core *shadow* copy of the bank/bus state that only ever sees
  that core's own requests.  The difference between the shared-mode completion
  and the shadow completion is the latency caused by other cores.  This
  mirrors DIEF's hardware emulation of the private-mode service order.
* **per-core priority** — the invasive ASM technique periodically gives one
  core highest priority in the controller.  A prioritised request bypasses the
  accumulated backlog of other cores (it only waits for physical bank/bus
  timing), while everyone else queues behind it, recreating the backlog
  behaviour the paper describes in Figure 1c.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.bank import DRAMBank
from repro.errors import ConfigurationError
from repro.config import DRAMConfig

__all__ = ["DRAMAccessResult", "MemoryController"]


@dataclass(frozen=True)
class DRAMAccessResult:
    """Timing of one DRAM read."""

    arrival: float
    service_start: float
    completion: float
    row_hit: bool
    channel: int
    bank: int
    queue_wait: float
    interference_wait: float
    private_latency_estimate: float

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


@dataclass
class _ShadowChannel:
    """Per-core emulation of the channel as if the core were alone."""

    banks: list[DRAMBank]
    bus_next_free: float = 0.0


@dataclass
class _Channel:
    banks: list[DRAMBank]
    bus_next_free: float = 0.0
    shadows: dict[int, _ShadowChannel] = field(default_factory=dict)


class MemoryController:
    """A multi-channel memory controller with open-page banks and priority support."""

    def __init__(self, config: DRAMConfig, line_bytes: int = 64):
        config.validate()
        self.config = config
        self.timing = config.timing
        self.line_bytes = line_bytes
        self._channels = [
            _Channel(banks=[DRAMBank(config.timing) for _ in range(config.banks_per_channel)])
            for _ in range(config.channels)
        ]
        self._priority_core: int | None = None
        self.reads = 0
        self.row_hit_reads = 0
        self.per_core_reads: dict[int, int] = {}
        self.per_core_queue_cycles: dict[int, float] = {}
        self.per_core_interference_cycles: dict[int, float] = {}

    # ------------------------------------------------------------------ address mapping

    def map_address(self, address: int) -> tuple[int, int, int]:
        """Map a byte address to (channel, bank, row)."""
        line = address // self.line_bytes
        channel = line % self.config.channels
        line //= self.config.channels
        bank = line % self.config.banks_per_channel
        row = address // self.config.page_bytes
        return channel, bank, row

    # ------------------------------------------------------------------ priority (ASM)

    def set_priority_core(self, core: int | None) -> None:
        """Give one core highest scheduling priority (None disables priority)."""
        if core is not None and core < 0:
            raise ConfigurationError("priority core id cannot be negative")
        self._priority_core = core

    @property
    def priority_core(self) -> int | None:
        return self._priority_core

    # ------------------------------------------------------------------ access

    def access(self, address: int, core: int, arrival: float) -> DRAMAccessResult:
        """Service one read request and return its timing and interference breakdown."""
        channel_index, bank_index, row = self.map_address(address)
        channel = self._channels[channel_index]
        bank = channel.banks[bank_index]

        prioritised = self._priority_core is not None and core == self._priority_core
        latency, row_hit = bank.access_latency(row)
        if prioritised:
            # A prioritised request bypasses the queued backlog of other cores
            # and is scheduled as soon as physical timing allows.  It still
            # consumes bank and bus capacity, so the backlog of everyone else
            # grows by its service time (the Figure 1c backlog effect) and no
            # bandwidth is created out of thin air.
            service_start = arrival
            bus_available = arrival
        else:
            service_start = max(arrival, bank.next_ready)
            bus_available = channel.bus_next_free
        data_ready = service_start + latency - self.timing.data_transfer_latency
        data_start = max(data_ready, bus_available)
        completion = data_start + self.timing.data_transfer_latency
        queue_wait = (service_start - arrival) + (data_start - data_ready)

        # Commit shared resource state: the request's service time is always
        # appended to the schedule, whether it bypassed the queue or not.
        if prioritised:
            bank.next_ready = max(bank.next_ready, arrival) + latency
            channel.bus_next_free = (
                max(channel.bus_next_free, arrival) + self.timing.data_transfer_latency
            )
        else:
            bank.next_ready = service_start + latency
            channel.bus_next_free = completion
        bank.open_row = row
        if row_hit:
            bank.row_hits += 1
            self.row_hit_reads += 1
        else:
            bank.row_misses += 1

        # Shadow (alone-on-the-machine) emulation for interference attribution.
        shadow_completion = self._shadow_access(channel, core, bank_index, row, arrival)
        private_latency = shadow_completion - arrival
        interference_wait = max(0.0, completion - shadow_completion)

        self.reads += 1
        self.per_core_reads[core] = self.per_core_reads.get(core, 0) + 1
        self.per_core_queue_cycles[core] = self.per_core_queue_cycles.get(core, 0.0) + queue_wait
        self.per_core_interference_cycles[core] = (
            self.per_core_interference_cycles.get(core, 0.0) + interference_wait
        )

        return DRAMAccessResult(
            arrival=arrival,
            service_start=service_start,
            completion=completion,
            row_hit=row_hit,
            channel=channel_index,
            bank=bank_index,
            queue_wait=queue_wait,
            interference_wait=interference_wait,
            private_latency_estimate=private_latency,
        )

    def _shadow_access(self, channel: _Channel, core: int, bank_index: int, row: int,
                       arrival: float) -> float:
        """Advance the core's private-mode shadow state and return the shadow completion."""
        shadow = channel.shadows.get(core)
        if shadow is None:
            shadow = _ShadowChannel(
                banks=[DRAMBank(self.timing) for _ in range(self.config.banks_per_channel)]
            )
            channel.shadows[core] = shadow
        bank = shadow.banks[bank_index]
        latency, _ = bank.access_latency(row)
        service_start = max(arrival, bank.next_ready)
        data_ready = service_start + latency - self.timing.data_transfer_latency
        data_start = max(data_ready, shadow.bus_next_free)
        completion = data_start + self.timing.data_transfer_latency
        bank.next_ready = service_start + latency
        bank.open_row = row
        shadow.bus_next_free = completion
        return completion

    # ------------------------------------------------------------------ statistics

    def row_hit_rate(self) -> float:
        return self.row_hit_reads / self.reads if self.reads else 0.0

    def average_queue_wait(self, core: int) -> float:
        reads = self.per_core_reads.get(core, 0)
        if reads == 0:
            return 0.0
        return self.per_core_queue_cycles.get(core, 0.0) / reads

    def average_interference_wait(self, core: int) -> float:
        reads = self.per_core_reads.get(core, 0)
        if reads == 0:
            return 0.0
        return self.per_core_interference_cycles.get(core, 0.0) / reads

    def reset_statistics(self) -> None:
        self.reads = 0
        self.row_hit_reads = 0
        self.per_core_reads.clear()
        self.per_core_queue_cycles.clear()
        self.per_core_interference_cycles.clear()
