"""Memory controller model: banks, channels, data bus and FR-FCFS-style scheduling.

The controller resolves each read request into a queueing delay, a bank access
(row hit or row miss) and a data-bus transfer.  Because the surrounding
simulation is trace driven and single pass, requests are scheduled in arrival
order; FR-FCFS behaviour is approximated through the open-page policy (row
hits are cheap) and bank-level parallelism.  Two features matter for the
paper's evaluation and are modelled explicitly:

* **interference attribution** — for every request, the controller also
  advances a per-core *shadow* copy of the bank/bus state that only ever sees
  that core's own requests.  The difference between the shared-mode completion
  and the shadow completion is the latency caused by other cores.  This
  mirrors DIEF's hardware emulation of the private-mode service order.
* **per-core priority** — the invasive ASM technique periodically gives one
  core highest priority in the controller.  A prioritised request bypasses the
  accumulated backlog of other cores (it only waits for physical bank/bus
  timing), while everyone else queues behind it, recreating the backlog
  behaviour the paper describes in Figure 1c.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.bank import DRAMBank
from repro.errors import ConfigurationError
from repro.config import DRAMConfig

__all__ = ["DRAMAccessResult", "MemoryController"]


@dataclass(frozen=True)
class DRAMAccessResult:
    """Timing of one DRAM read."""

    arrival: float
    service_start: float
    completion: float
    row_hit: bool
    channel: int
    bank: int
    queue_wait: float
    interference_wait: float
    private_latency_estimate: float

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


@dataclass
class _ShadowChannel:
    """Per-core emulation of the channel as if the core were alone."""

    banks: list[DRAMBank]
    bus_next_free: float = 0.0


@dataclass
class _Channel:
    banks: list[DRAMBank]
    bus_next_free: float = 0.0
    # Indexed by core id, grown on demand (None until a core's first access).
    shadows: list[_ShadowChannel | None] = field(default_factory=list)


class MemoryController:
    """A multi-channel memory controller with open-page banks and priority support."""

    def __init__(self, config: DRAMConfig, line_bytes: int = 64):
        config.validate()
        self.config = config
        self.timing = config.timing
        self.line_bytes = line_bytes
        self._channels = [
            _Channel(banks=[DRAMBank(config.timing) for _ in range(config.banks_per_channel)])
            for _ in range(config.channels)
        ]
        self._priority_core: int | None = None
        self.reads = 0
        self.row_hit_reads = 0
        # Per-core statistics as dense lists indexed by core id, grown on
        # demand (cores are small integers).
        self.per_core_reads: list[int] = []
        self.per_core_queue_cycles: list[float] = []
        self.per_core_interference_cycles: list[float] = []
        # Address-mapping and timing constants hoisted off the access path.
        timing = config.timing
        self._row_hit_latency = timing.row_hit_latency
        self._row_miss_latency = timing.row_miss_latency
        self._data_transfer_latency = timing.data_transfer_latency
        self._n_channels = config.channels
        self._n_banks = config.banks_per_channel
        self._page_bytes = config.page_bytes

    # ------------------------------------------------------------------ address mapping

    def map_address(self, address: int) -> tuple[int, int, int]:
        """Map a byte address to (channel, bank, row)."""
        line = address // self.line_bytes
        channel = line % self.config.channels
        line //= self.config.channels
        bank = line % self.config.banks_per_channel
        row = address // self.config.page_bytes
        return channel, bank, row

    # ------------------------------------------------------------------ priority (ASM)

    def set_priority_core(self, core: int | None) -> None:
        """Give one core highest scheduling priority (None disables priority)."""
        if core is not None and core < 0:
            raise ConfigurationError("priority core id cannot be negative")
        self._priority_core = core

    @property
    def priority_core(self) -> int | None:
        return self._priority_core

    # ------------------------------------------------------------------ access

    def access(self, address: int, core: int, arrival: float) -> DRAMAccessResult:
        """Service one read request and return its timing and interference breakdown."""
        (service_start, completion, row_hit, channel_index, bank_index, queue_wait,
         interference_wait, private_latency) = self._access(address, core, arrival)
        return DRAMAccessResult(
            arrival=arrival,
            service_start=service_start,
            completion=completion,
            row_hit=row_hit,
            channel=channel_index,
            bank=bank_index,
            queue_wait=queue_wait,
            interference_wait=interference_wait,
            private_latency_estimate=private_latency,
        )

    def access_fast(self, address: int, core: int, arrival: float,
                    with_shadow: bool = True) -> tuple[float, bool, float]:
        """Hot-path read: returns ``(completion, row_hit, interference_wait)``.

        Thin projection of :meth:`_access` (the single source of the
        scheduling logic); the full tuple costs one unpack, which is noise
        next to the scheduling arithmetic itself.
        """
        (_start, completion, row_hit, _channel, _bank, _queue_wait,
         interference_wait, _private) = self._access(address, core, arrival, with_shadow)
        return completion, row_hit, interference_wait

    def _grow_per_core(self, core: int) -> None:
        grow_by = core + 1 - len(self.per_core_reads)
        self.per_core_reads.extend([0] * grow_by)
        self.per_core_queue_cycles.extend([0.0] * grow_by)
        self.per_core_interference_cycles.extend([0.0] * grow_by)

    def _shadow_channel(self, channel: _Channel, core: int) -> _ShadowChannel:
        shadows = channel.shadows
        if core >= len(shadows):
            shadows.extend([None] * (core + 1 - len(shadows)))
        shadow = shadows[core]
        if shadow is None:
            shadow = _ShadowChannel(
                banks=[DRAMBank(self.timing) for _ in range(self.config.banks_per_channel)]
            )
            shadows[core] = shadow
        return shadow

    def _access(self, address: int, core: int, arrival: float, with_shadow: bool = True):
        line = address // self.line_bytes
        channel_index = line % self._n_channels
        bank_index = (line // self._n_channels) % self._n_banks
        row = address // self._page_bytes
        channel = self._channels[channel_index]
        bank = channel.banks[bank_index]

        prioritised = self._priority_core is not None and core == self._priority_core
        if bank.open_row == row:
            latency = self._row_hit_latency
            row_hit = True
        else:
            latency = self._row_miss_latency
            row_hit = False
        transfer = self._data_transfer_latency
        bank_ready = bank.next_ready
        if prioritised:
            # A prioritised request bypasses the queued backlog of other cores
            # and is scheduled as soon as physical timing allows.  It still
            # consumes bank and bus capacity, so the backlog of everyone else
            # grows by its service time (the Figure 1c backlog effect) and no
            # bandwidth is created out of thin air.
            service_start = arrival
            bus_available = arrival
        else:
            service_start = arrival if arrival > bank_ready else bank_ready
            bus_available = channel.bus_next_free
        data_ready = service_start + latency - transfer
        data_start = data_ready if data_ready > bus_available else bus_available
        completion = data_start + transfer
        queue_wait = (service_start - arrival) + (data_start - data_ready)

        # Commit shared resource state: the request's service time is always
        # appended to the schedule, whether it bypassed the queue or not.
        if prioritised:
            bank.next_ready = (bank_ready if bank_ready > arrival else arrival) + latency
            bus_free = channel.bus_next_free
            channel.bus_next_free = (bus_free if bus_free > arrival else arrival) + transfer
        else:
            bank.next_ready = service_start + latency
            channel.bus_next_free = completion
        bank.open_row = row
        if row_hit:
            bank.row_hits += 1
            self.row_hit_reads += 1
        else:
            bank.row_misses += 1

        # Shadow (alone-on-the-machine) emulation for interference attribution,
        # inlined: advance the core's private-mode schedule and compare.  With
        # a single active core the shadow schedule is identical to the real
        # one by induction (same arrivals, same update rules), so callers in
        # private mode skip it: the interference is exactly 0.
        if not with_shadow:
            self.reads += 1
            try:
                self.per_core_reads[core] += 1
            except IndexError:
                self._grow_per_core(core)
                self.per_core_reads[core] += 1
            self.per_core_queue_cycles[core] += queue_wait
            return (service_start, completion, row_hit, channel_index, bank_index,
                    queue_wait, 0.0, completion - arrival)
        shadows = channel.shadows
        shadow = shadows[core] if core < len(shadows) else None
        if shadow is None:
            shadow = self._shadow_channel(channel, core)
        shadow_bank = shadow.banks[bank_index]
        shadow_latency = (
            self._row_hit_latency if shadow_bank.open_row == row else self._row_miss_latency
        )
        shadow_bank_ready = shadow_bank.next_ready
        shadow_service = arrival if arrival > shadow_bank_ready else shadow_bank_ready
        shadow_data_ready = shadow_service + shadow_latency - transfer
        shadow_bus_free = shadow.bus_next_free
        shadow_data_start = (
            shadow_data_ready if shadow_data_ready > shadow_bus_free else shadow_bus_free
        )
        shadow_completion = shadow_data_start + transfer
        shadow_bank.next_ready = shadow_service + shadow_latency
        shadow_bank.open_row = row
        shadow.bus_next_free = shadow_completion

        private_latency = shadow_completion - arrival
        interference_wait = completion - shadow_completion
        if interference_wait < 0.0:
            interference_wait = 0.0

        self.reads += 1
        try:
            self.per_core_reads[core] += 1
        except IndexError:
            self._grow_per_core(core)
            self.per_core_reads[core] += 1
        self.per_core_queue_cycles[core] += queue_wait
        self.per_core_interference_cycles[core] += interference_wait
        return (service_start, completion, row_hit, channel_index, bank_index,
                queue_wait, interference_wait, private_latency)

    # ------------------------------------------------------------------ statistics

    def row_hit_rate(self) -> float:
        return self.row_hit_reads / self.reads if self.reads else 0.0

    def average_queue_wait(self, core: int) -> float:
        reads = self.per_core_reads[core] if core < len(self.per_core_reads) else 0
        if reads == 0:
            return 0.0
        return self.per_core_queue_cycles[core] / reads

    def average_interference_wait(self, core: int) -> float:
        reads = self.per_core_reads[core] if core < len(self.per_core_reads) else 0
        if reads == 0:
            return 0.0
        return self.per_core_interference_cycles[core] / reads

    def reset_statistics(self) -> None:
        self.reads = 0
        self.row_hit_reads = 0
        self.per_core_reads = []
        self.per_core_queue_cycles = []
        self.per_core_interference_cycles = []
