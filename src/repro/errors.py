"""Exception types used across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a simulator or model configuration is invalid."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an inconsistent state."""


class TraceError(ReproError):
    """Raised when a workload trace is malformed."""


class AccountingError(ReproError):
    """Raised when a performance-accounting component is misused."""


class PartitioningError(ReproError):
    """Raised when a cache-partitioning policy produces an invalid allocation."""


class CacheKeyError(ReproError):
    """Raised when a value cannot be canonicalised into a result-cache key."""


class TransientFaultError(ReproError):
    """Raised for failures that are expected to succeed on retry.

    The cell supervisor (:mod:`repro.experiments.supervisor`) retries
    transient failures with exponential backoff; any other exception from an
    evaluator is treated as permanent and surfaces immediately.
    """


class InjectedFaultError(TransientFaultError):
    """A transient failure injected by a fault plan (:mod:`repro.faults`).

    Defined here (not in ``faults.py``) so instances raised inside worker
    processes pickle cleanly back across the process boundary.
    """


class CellTimeoutError(TransientFaultError):
    """Raised when one sweep cell exceeds its wall-clock timeout budget.

    Transient by classification: a timeout usually means a hung or starved
    worker, so the supervisor kills the pool and retries the cell until its
    attempt budget runs out.
    """


class JobCancelledError(ReproError):
    """Raised inside a sweep when its cooperative cancel token is set.

    ``run_parallel`` checks the token at cell boundaries; the scenario
    service's dispatcher catches this to move a ``cancelling`` job to
    ``cancelled`` without tearing anything down.
    """


class ServiceError(ReproError):
    """Raised when a scenario-service request cannot be satisfied."""


class JobConflictError(ServiceError):
    """Raised when a job operation is invalid in the job's current state.

    The HTTP layer maps this to 409 Conflict — e.g. cancelling a job that
    already started running.
    """


class LeaseLostError(ServiceError):
    """Raised when a worker acts on a lease the broker no longer honours.

    A lease dies when its heartbeat deadline passes (the cells were requeued
    for another worker), when its job finished without it, or when the id was
    never granted.  The HTTP layer maps this to 410 Gone; the worker's only
    correct move is to discard its in-flight work and acquire a fresh lease —
    the broker ignores results posted against a lost lease, which is what
    keeps duplicate results out of requeued jobs.
    """


class CompositeExecutionError(ReproError):
    """Raised when a composite scenario fails partway through its DAG.

    ``result`` carries the partial
    :class:`~repro.scenarios.composite.CompositeResult` — every member that
    completed before the failure, plus the per-node error messages — so
    callers can report what *did* finish instead of discarding it.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result
