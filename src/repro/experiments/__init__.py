"""Experiment harnesses: one module per paper figure plus the headline summary.

Every module exposes a ``run_*`` function returning a structured result with a
``report()`` method, and can also be run directly, e.g.::

    python -m repro.experiments.figure3
"""

from repro.experiments.accuracy import (
    TECHNIQUE_NAMES,
    BenchmarkAccuracy,
    ComponentAccuracy,
    WorkloadAccuracy,
    evaluate_workload_accuracy,
    summarize_rms,
)
from repro.experiments.case_study import (
    POLICY_NAMES,
    WorkloadThroughput,
    average_throughput,
    build_policy,
    evaluate_workload_throughput,
)
from repro.experiments.common import EXPERIMENT_LLC_KILOBYTES, default_experiment_config
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, Figure6Settings, run_figure6
from repro.experiments.figure7 import Figure7Result, Figure7Settings, run_figure7, run_figure7_panel
from repro.experiments.summary import HeadlineResult, run_headline_summary
from repro.experiments.sweep import AccuracySweep, SweepSettings, run_accuracy_sweep

__all__ = [
    "TECHNIQUE_NAMES",
    "POLICY_NAMES",
    "BenchmarkAccuracy",
    "ComponentAccuracy",
    "WorkloadAccuracy",
    "WorkloadThroughput",
    "evaluate_workload_accuracy",
    "evaluate_workload_throughput",
    "summarize_rms",
    "average_throughput",
    "build_policy",
    "EXPERIMENT_LLC_KILOBYTES",
    "default_experiment_config",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "Figure6Settings",
    "run_figure6",
    "Figure7Result",
    "Figure7Settings",
    "run_figure7",
    "run_figure7_panel",
    "HeadlineResult",
    "run_headline_summary",
    "AccuracySweep",
    "SweepSettings",
    "run_accuracy_sweep",
]
