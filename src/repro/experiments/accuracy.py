"""Accuracy evaluation engine (behind Figures 3, 4 and 5).

For a workload, the engine runs:

* one shared-mode simulation (used by the transparent techniques: ITCA, PTCA,
  GDP and GDP-O),
* one shared-mode simulation with ASM's epoch priority rotation installed
  (used by ASM, since it is invasive and needs the rotation to take place),
* one private-mode simulation per benchmark (the ground truth).

Intervals are aligned by committed instruction count, so interval *k* in
shared and private mode covers the same instructions, as the paper's
methodology requires.  Per-benchmark RMS errors follow Equation 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import install_asm_rotation
from repro.core.base import AccountingTechnique
from repro.core.cpl import estimate_interval_cpl
from repro.cpu.events import IntervalStats
from repro.latency.dief import DIEFLatencyEstimator
from repro.metrics.errors import mean, rms
from repro.config import CMPConfig
from repro.registry import accounting_techniques, latency_estimators
from repro.sim.runner import build_trace, run_private_mode, run_shared_mode
from repro.workloads.mixes import Workload

__all__ = [
    "TECHNIQUE_NAMES",
    "BenchmarkAccuracy",
    "WorkloadAccuracy",
    "ComponentAccuracy",
    "evaluate_workload_accuracy",
    "summarize_rms",
]

# Paper column order = registration order; single-sourced from the registry.
TECHNIQUE_NAMES = accounting_techniques.names()

DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_INTERVAL = 6_000


@dataclass
class BenchmarkAccuracy:
    """Per-benchmark estimation errors for one workload run.

    ``ipc_errors``/``stall_errors`` map technique name to the list of
    per-interval errors (absolute for stalls and IPC, as in Figure 3);
    ``*_rms`` aggregates them with Equation 8.
    """

    benchmark: str
    core: int
    ipc_errors: dict[str, list[float]] = field(default_factory=dict)
    stall_errors: dict[str, list[float]] = field(default_factory=dict)

    def ipc_rms(self, technique: str) -> float:
        return rms(self.ipc_errors.get(technique, []))

    def stall_rms(self, technique: str) -> float:
        return rms(self.stall_errors.get(technique, []))


@dataclass
class ComponentAccuracy:
    """Relative errors of GDP-O's estimate components (Figure 5)."""

    benchmark: str
    core: int
    cpl_errors: list[float] = field(default_factory=list)
    overlap_errors: list[float] = field(default_factory=list)
    latency_errors: list[float] = field(default_factory=list)

    def cpl_rms(self) -> float:
        return rms(self.cpl_errors)

    def overlap_rms(self) -> float:
        return rms(self.overlap_errors)

    def latency_rms(self) -> float:
        return rms(self.latency_errors)


@dataclass
class WorkloadAccuracy:
    """Accuracy results for every benchmark in one workload."""

    workload: Workload
    benchmarks: list[BenchmarkAccuracy] = field(default_factory=list)
    components: list[ComponentAccuracy] = field(default_factory=list)

    def mean_ipc_rms(self, technique: str) -> float:
        return mean([benchmark.ipc_rms(technique) for benchmark in self.benchmarks])

    def mean_stall_rms(self, technique: str) -> float:
        return mean([benchmark.stall_rms(technique) for benchmark in self.benchmarks])


def _build_techniques(config: CMPConfig,
                      names: tuple[str, ...] = TECHNIQUE_NAMES) -> dict[str, AccountingTechnique]:
    """Instantiate the named accounting techniques from the registry.

    All techniques share one latency-estimator instance, mirroring how a real
    deployment would feed several estimators from the same DIEF counters.
    """
    latency = latency_estimators.create("DIEF")
    return {name: accounting_techniques.create(name, config, latency) for name in names}


def evaluate_workload_accuracy(
    workload: Workload,
    config: CMPConfig,
    instructions_per_core: int = DEFAULT_INSTRUCTIONS,
    interval_instructions: int = DEFAULT_INTERVAL,
    seed: int = 0,
    techniques: tuple[str, ...] = TECHNIQUE_NAMES,
    collect_components: bool = False,
    prb_entries: int | None = None,
) -> WorkloadAccuracy:
    """Run one workload and return per-benchmark accuracy for every technique.

    ``prb_entries`` overrides the PRB size used by GDP/GDP-O (Figure 7e).
    """
    if prb_entries is not None:
        config = config.with_prb_entries(prb_entries)
    traces = {
        core: build_trace(name, instructions_per_core, seed=seed + core)
        for core, name in enumerate(workload.benchmarks)
    }
    shared = run_shared_mode(
        traces, config, target_instructions=instructions_per_core,
        interval_instructions=interval_instructions,
    )
    shared_asm = None
    if "ASM" in techniques:
        # ASM's estimate consumes only aggregate counters and the per-epoch
        # buckets, so the rotated run skips per-event record materialisation.
        shared_asm = run_shared_mode(
            traces, config, target_instructions=instructions_per_core,
            interval_instructions=interval_instructions,
            configure_system=install_asm_rotation,
            record_events=False,
        )
    # Private-mode ground truth is consumed as per-interval aggregates (IPC
    # and stall-cycle sums); the event lists are only needed for the Figure 5
    # component analysis.
    private = {
        core: run_private_mode(trace, config, core_id=core,
                               interval_instructions=interval_instructions,
                               target_instructions=instructions_per_core,
                               record_events=collect_components)
        for core, trace in traces.items()
    }

    estimators = _build_techniques(config, techniques)
    result = WorkloadAccuracy(workload=workload)
    for core, trace in traces.items():
        accuracy = BenchmarkAccuracy(benchmark=trace.name, core=core)
        components = ComponentAccuracy(benchmark=trace.name, core=core)
        shared_intervals = shared.cores[core].intervals
        asm_intervals = shared_asm.cores[core].intervals if shared_asm is not None else []
        private_intervals = private[core].intervals
        paired = min(len(shared_intervals), len(private_intervals))
        for index in range(paired):
            shared_interval = shared_intervals[index]
            private_interval = private_intervals[index]
            for name in techniques:
                source = shared_interval
                if name == "ASM":
                    if index >= len(asm_intervals):
                        continue
                    source = asm_intervals[index]
                estimate = estimators[name].estimate(source)
                accuracy.ipc_errors.setdefault(name, []).append(
                    estimate.ipc - private_interval.ipc
                )
                accuracy.stall_errors.setdefault(name, []).append(
                    estimate.sms_stall_cycles - private_interval.stall_sms
                )
            if collect_components:
                _collect_component_errors(
                    components, shared_interval, private_interval,
                    prb_entries=config.accounting.prb_entries,
                )
        result.benchmarks.append(accuracy)
        if collect_components:
            result.components.append(components)
    return result


def _collect_component_errors(components: ComponentAccuracy, shared_interval: IntervalStats,
                              private_interval: IntervalStats, prb_entries: int) -> None:
    """Relative errors of the CPL, overlap and latency estimates (Figure 5)."""
    shared_cpl = estimate_interval_cpl(shared_interval, prb_entries=prb_entries)
    private_cpl = estimate_interval_cpl(private_interval, prb_entries=None)
    if private_cpl.cpl > 0:
        components.cpl_errors.append((shared_cpl.cpl - private_cpl.cpl) / private_cpl.cpl)
    if private_cpl.average_overlap > 0:
        components.overlap_errors.append(
            (shared_cpl.average_overlap - private_cpl.average_overlap) / private_cpl.average_overlap
        )
    estimator = DIEFLatencyEstimator()
    estimated_latency = estimator.private_latency(shared_interval)
    actual_latency = private_interval.average_sms_latency()
    if actual_latency > 0:
        components.latency_errors.append((estimated_latency - actual_latency) / actual_latency)


def summarize_rms(results: list[WorkloadAccuracy], technique: str,
                  metric: str = "ipc") -> float:
    """Mean per-benchmark RMS error across a list of workload results."""
    per_benchmark: list[float] = []
    for result in results:
        for benchmark in result.benchmarks:
            if metric == "ipc":
                per_benchmark.append(benchmark.ipc_rms(technique))
            elif metric == "stall":
                per_benchmark.append(benchmark.stall_rms(technique))
            else:
                raise ValueError(f"unknown metric '{metric}'")
    return mean(per_benchmark)
