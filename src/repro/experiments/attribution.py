"""Interference attribution: where did each application's slowdown come from?

GDP's accounting infrastructure already measures, per shared-memory-system
load, how many cycles of its latency were caused by co-runners — split by the
resource that caused them.  This engine turns those measurements into a
per-application attribution: the shared-mode slowdown of every benchmark in a
workload, decomposed into the cycles lost to

* **cache** interference — extra DRAM round trips paid because a co-runner
  evicted a line the application would have kept alone (interference misses,
  detected with the per-core auxiliary tag directories),
* **dram** interference — queueing and row-conflict delays at the shared
  memory controller, and
* **ring** interference — queueing on the shared interconnect (computed as
  the residual of the total attributed interference after the cache and DRAM
  components; the simulator folds interference-miss DRAM queueing into the
  cache penalty, so the residual is clamped at zero).

The ground truth for the slowdown itself is one private-mode rerun per
benchmark over the same instructions, exactly like the accuracy methodology.
Only aggregate interval counters are consumed, so both simulation modes skip
per-event record materialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.errors import mean
from repro.config import CMPConfig
from repro.sim.runner import build_trace, run_private_mode, run_shared_mode
from repro.workloads.mixes import Workload

__all__ = [
    "ATTRIBUTION_COMPONENTS",
    "BenchmarkAttribution",
    "WorkloadAttribution",
    "evaluate_workload_attribution",
    "summarize_attribution",
]

DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_INTERVAL = 6_000

# Metric names reported by attribution scenarios (table columns).
ATTRIBUTION_COMPONENTS = (
    "slowdown", "cache_share", "ring_share", "dram_share", "interference_cpi"
)


@dataclass
class BenchmarkAttribution:
    """Slowdown decomposition for one benchmark of a shared-mode run."""

    benchmark: str
    core: int
    shared_cpi: float
    private_cpi: float
    shared_cycles: float
    instructions: int
    total_interference_cycles: float
    cache_interference_cycles: float
    ring_interference_cycles: float
    dram_interference_cycles: float
    interference_misses: int
    sms_loads: int

    @property
    def slowdown(self) -> float:
        """Shared-mode CPI over private-mode CPI (>= 1 when interference hurts)."""
        return self.shared_cpi / self.private_cpi if self.private_cpi > 0 else 1.0

    @property
    def interference_cpi(self) -> float:
        """Attributed interference cycles per committed instruction."""
        if not self.instructions:
            return 0.0
        return self.total_interference_cycles / self.instructions

    def component_share(self, component: str) -> float:
        """Fraction of the attributed interference caused by one resource."""
        total = self.total_interference_cycles
        if total <= 0:
            return 0.0
        cycles = {
            "cache": self.cache_interference_cycles,
            "ring": self.ring_interference_cycles,
            "dram": self.dram_interference_cycles,
        }[component]
        return cycles / total

    def metric(self, name: str) -> float:
        if name == "slowdown":
            return self.slowdown
        if name == "interference_cpi":
            return self.interference_cpi
        if name.endswith("_share"):
            return self.component_share(name[: -len("_share")])
        raise ValueError(f"unknown attribution metric '{name}'")


@dataclass
class WorkloadAttribution:
    """Attribution results for every benchmark in one workload."""

    workload: Workload
    benchmarks: list[BenchmarkAttribution] = field(default_factory=list)

    def mean_metric(self, name: str) -> float:
        return mean([benchmark.metric(name) for benchmark in self.benchmarks])


def evaluate_workload_attribution(
    workload: Workload,
    config: CMPConfig,
    instructions_per_core: int = DEFAULT_INSTRUCTIONS,
    interval_instructions: int = DEFAULT_INTERVAL,
    seed: int = 0,
) -> WorkloadAttribution:
    """Run one workload shared + private and attribute each core's slowdown."""
    traces = {
        core: build_trace(name, instructions_per_core, seed=seed + core)
        for core, name in enumerate(workload.benchmarks)
    }
    shared = run_shared_mode(
        traces, config, target_instructions=instructions_per_core,
        interval_instructions=interval_instructions, record_events=False,
    )
    result = WorkloadAttribution(workload=workload)
    for core, trace in traces.items():
        private = run_private_mode(
            trace, config, core_id=core, interval_instructions=interval_instructions,
            target_instructions=instructions_per_core, record_events=False,
        )
        shared_core = shared.cores[core]
        total = cache = dram = 0.0
        interference_misses = sms_loads = 0
        for interval in shared_core.intervals:
            total += interval.interference_sum
            cache += interval.interference_miss_penalty_sum
            dram += interval.dram_interference_sum
            interference_misses += interval.interference_misses
            sms_loads += interval.sms_loads
        # The interference sum counts an interference miss's whole DRAM round
        # trip as cache interference instead of its DRAM queueing share, so
        # the ring residual can only under-count; never let it go negative.
        ring = max(0.0, total - cache - dram)
        result.benchmarks.append(BenchmarkAttribution(
            benchmark=trace.name,
            core=core,
            shared_cpi=shared_core.cpi,
            private_cpi=private.cpi,
            shared_cycles=shared_core.cycles,
            instructions=shared_core.instructions,
            total_interference_cycles=total,
            cache_interference_cycles=cache,
            ring_interference_cycles=ring,
            dram_interference_cycles=dram,
            interference_misses=interference_misses,
            sms_loads=sms_loads,
        ))
    return result


def summarize_attribution(results: list[WorkloadAttribution], metric: str) -> float:
    """Mean per-benchmark value of one attribution metric across workloads."""
    values: list[float] = []
    for result in results:
        for benchmark in result.benchmarks:
            values.append(benchmark.metric(metric))
    return mean(values)
