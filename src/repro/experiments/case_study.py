"""Shared-cache management case study (behind Figure 6).

For every workload the engine runs one shared-mode simulation per partitioning
policy (LRU, UCP, ASM-driven, MCP, MCP-O) plus one private-mode run per
benchmark, and reports System Throughput: the sum over cores of the true
private-mode CPI divided by the shared-mode CPI achieved under that policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.errors import mean
from repro.partitioning import PartitioningPolicy
from repro.config import CMPConfig
from repro.registry import partitioning_policies
from repro.sim.runner import build_trace, run_private_mode, run_shared_mode
from repro.workloads.mixes import Workload

__all__ = [
    "POLICY_NAMES",
    "build_policy",
    "WorkloadThroughput",
    "evaluate_workload_throughput",
    "average_throughput",
]

# Paper column order = registration order; single-sourced from the registry.
POLICY_NAMES = partitioning_policies.names()

DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_INTERVAL = 6_000
DEFAULT_REPARTITION_CYCLES = 40_000.0


def build_policy(name: str, config: CMPConfig,
                 repartition_interval_cycles: float = DEFAULT_REPARTITION_CYCLES) -> PartitioningPolicy:
    """Instantiate a partitioning policy by registry name.

    Unknown names raise :class:`~repro.errors.ConfigurationError` listing the
    registered policies.
    """
    return partitioning_policies.create(name, config, repartition_interval_cycles)


@dataclass
class WorkloadThroughput:
    """System throughput of one workload under every evaluated policy."""

    workload: Workload
    stp: dict[str, float] = field(default_factory=dict)
    private_cpis: dict[int, float] = field(default_factory=dict)
    shared_cpis: dict[str, dict[int, float]] = field(default_factory=dict)

    def relative_to(self, baseline: str) -> dict[str, float]:
        """STP of every policy relative to ``baseline`` (Figure 6b is vs LRU)."""
        reference = self.stp.get(baseline, 0.0)
        if reference <= 0:
            return {name: 0.0 for name in self.stp}
        return {name: value / reference for name, value in self.stp.items()}


def evaluate_workload_throughput(
    workload: Workload,
    config: CMPConfig,
    policies: tuple[str, ...] = POLICY_NAMES,
    instructions_per_core: int = DEFAULT_INSTRUCTIONS,
    interval_instructions: int = DEFAULT_INTERVAL,
    repartition_interval_cycles: float = DEFAULT_REPARTITION_CYCLES,
    seed: int = 0,
) -> WorkloadThroughput:
    """Run one workload under each policy and compute its STP."""
    traces = {
        core: build_trace(name, instructions_per_core, seed=seed + core)
        for core, name in enumerate(workload.benchmarks)
    }
    result = WorkloadThroughput(workload=workload)
    for core, trace in traces.items():
        # Only the private-mode CPI is consumed; skip event materialisation.
        private = run_private_mode(
            trace, config, core_id=core, interval_instructions=interval_instructions,
            target_instructions=instructions_per_core, record_events=False,
        )
        result.private_cpis[core] = private.cpi

    for name in policies:
        policy = build_policy(name, config, repartition_interval_cycles)
        shared = run_shared_mode(
            traces,
            config,
            target_instructions=instructions_per_core,
            interval_instructions=interval_instructions,
            configure_system=policy.install,
            record_events=policy.needs_events,
        )
        shared_cpis = {core: shared.cores[core].cpi for core in traces}
        result.shared_cpis[name] = shared_cpis
        stp = 0.0
        for core in traces:
            if shared_cpis[core] > 0:
                stp += result.private_cpis[core] / shared_cpis[core]
        result.stp[name] = stp
    return result


def average_throughput(results: list[WorkloadThroughput], policy: str) -> float:
    """Average STP of one policy over a list of workload results."""
    return mean([result.stp.get(policy, 0.0) for result in results])
