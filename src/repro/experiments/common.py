"""Shared experiment configuration helpers and the parallel task executor.

The paper's 2-, 4- and 8-core CMPs use 8, 8 and 16 MB LLCs (Table I); this
reproduction runs much shorter traces, so experiments scale the cache
hierarchy down by roughly 64x (4 KB L1, 16 KB L2, 128/128/256 KB LLC) while
keeping latencies, associativities and the DRAM timing at their Table I
values.  All figure harnesses and benchmarks build their configurations
through :func:`default_experiment_config` so the scale-down is applied
consistently.

The figure experiments are embarrassingly parallel across (workload, config)
cells — every cell is an independent pure function of its arguments.
:func:`run_parallel` fans cells across a :class:`ProcessPoolExecutor`;
``REPRO_JOBS`` (or the ``jobs`` argument) selects the worker count, and
``jobs=1`` (the default on single-CPU machines) runs the exact same cells
serially in the same order, producing bit-identical results.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence

from repro.config import CMPConfig

__all__ = [
    "EXPERIMENT_LLC_KILOBYTES",
    "default_experiment_config",
    "resolve_jobs",
    "run_parallel",
]

# Scaled LLC capacity per core count, mirroring Table I's 8/8/16 MB.
EXPERIMENT_LLC_KILOBYTES = {2: 128, 4: 128, 8: 256}


def default_experiment_config(n_cores: int, llc_kilobytes: int | None = None) -> CMPConfig:
    """The scaled CMP configuration used by the experiments for ``n_cores`` cores."""
    if llc_kilobytes is None:
        llc_kilobytes = EXPERIMENT_LLC_KILOBYTES.get(n_cores, 128)
    return CMPConfig.default(n_cores).scaled(llc_kilobytes=llc_kilobytes)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count for parallel sweeps.

    Explicit ``jobs`` wins; otherwise the ``REPRO_JOBS`` environment variable;
    otherwise the machine's CPU count.  Always at least 1.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is not None and env != "":
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


def run_parallel(function: Callable, argument_tuples: Sequence[tuple],
                 jobs: int | None = None) -> list:
    """Apply ``function`` to every argument tuple, in order, possibly in parallel.

    ``function`` must be a picklable top-level callable and a pure function of
    its arguments (every experiment cell evaluator is).  Results are returned
    in submission order, so the output is bit-identical to the serial
    ``[function(*args) for args in argument_tuples]`` — the serial fallback
    used when ``jobs`` resolves to 1 or there is only one task.
    """
    jobs = resolve_jobs(jobs)
    tasks = list(argument_tuples)
    if jobs <= 1 or len(tasks) <= 1:
        return [function(*args) for args in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = [pool.submit(function, *args) for args in tasks]
        return [future.result() for future in futures]
