"""Shared experiment configuration helpers and the parallel task executor.

The paper's 2-, 4- and 8-core CMPs use 8, 8 and 16 MB LLCs (Table I); this
reproduction runs much shorter traces, so experiments scale the cache
hierarchy down by roughly 64x (4 KB L1, 16 KB L2, 128/128/256 KB LLC) while
keeping latencies, associativities and the DRAM timing at their Table I
values.  All figure harnesses and benchmarks build their configurations
through :func:`default_experiment_config` so the scale-down is applied
consistently.

The figure experiments are embarrassingly parallel across (workload, config)
cells — every cell is an independent pure function of its arguments.
:func:`run_parallel` is the one fan-out point they all share:

* **Memoisation** — each cell is first looked up in the content-addressed
  result cache (:mod:`repro.sim.result_cache`); only misses are computed and
  the results persisted, so a warm rerun of an identical sweep touches no
  simulator code at all.  ``REPRO_CACHE=0`` disables this.
* **Persistent process pool** — misses are fanned across one shared,
  lazily-created :class:`~concurrent.futures.ProcessPoolExecutor` that is
  reused for every figure of a run (``REPRO_JOBS`` / the ``jobs`` argument
  selects the worker count); creating a pool per experiment would pay
  worker spawn and import cost once per figure.  Call
  :func:`shutdown_executor` for an explicit teardown (``run_all`` does).
* **Supervision** — each miss is submitted as its own future under a
  supervisor that classifies failures (see
  :mod:`repro.experiments.supervisor`): transient ones — injected faults,
  cell timeouts, a broken pool — are retried with exponential backoff and
  deterministic jitter, a broken pool is rebuilt and only still-unanswered
  cells resubmitted, and evaluator bugs surface unretried.  A cooperative
  cancel token stops the sweep at the next cell boundary.  Completed cells
  are persisted to the result cache *as they finish*, so recovery after a
  crash never recomputes a cell the cache can already answer.
* **Scheduling** — when the caller provides a ``cost_key``, largest cells
  are submitted first so a long cell cannot strand the pool's tail; results
  are always returned in submission order, bit-identical to the serial
  fallback used when ``jobs`` resolves to 1 or only one task is pending.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from collections.abc import Callable, Sequence

from repro.errors import (
    CacheKeyError,
    CellTimeoutError,
    ConfigurationError,
    JobCancelledError,
)
from repro.cache.batch import resolve_vec_batch
from repro.config import CMPConfig
from repro.experiments.supervisor import (
    CancelToken,
    RetryPolicy,
    cell_timeout_from_env,
    is_transient,
    record,
    retry_policy_from_env,
)
from repro.sim.result_cache import get_result_cache, is_cacheable_function, task_digest

__all__ = [
    "EXPERIMENT_LLC_KILOBYTES",
    "default_experiment_config",
    "get_executor",
    "resolve_jobs",
    "run_parallel",
    "shutdown_executor",
]

# Scaled LLC capacity per core count, mirroring Table I's 8/8/16 MB.
EXPERIMENT_LLC_KILOBYTES = {2: 128, 4: 128, 8: 256}

# How long the supervisor's completion wait sleeps between bookkeeping passes
# (cancel checks, timeout scans, backoff expiry).  Pure overhead bound: a
# fault-free sweep wakes up this often and finds nothing to do.
_SUPERVISOR_TICK_SECONDS = 0.05

# Consecutive pool rebuilds without a single completed cell before the
# supervisor gives up — distinguishes "one worker died" (recoverable) from
# "workers die on startup" (hopeless, e.g. an import crash in every child).
_MAX_CONSECUTIVE_REBUILDS = 5


def default_experiment_config(n_cores: int, llc_kilobytes: int | None = None) -> CMPConfig:
    """The scaled CMP configuration used by the experiments for ``n_cores`` cores."""
    if llc_kilobytes is None:
        llc_kilobytes = EXPERIMENT_LLC_KILOBYTES.get(n_cores, 128)
    return CMPConfig.default(n_cores).scaled(llc_kilobytes=llc_kilobytes)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count for parallel sweeps.

    Explicit ``jobs`` wins; otherwise the ``REPRO_JOBS`` environment variable;
    otherwise the machine's CPU count.  Always at least 1.  A ``REPRO_JOBS``
    value that is not a positive integer raises
    :class:`~repro.errors.ConfigurationError` — silently clamping (or the
    bare ``ValueError`` ``int()`` used to throw) hid typos like
    ``REPRO_JOBS=all`` or ``REPRO_JOBS=-4`` until deep inside a sweep.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is not None and env.strip() != "":
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_JOBS must be a positive integer, got {env!r}"
                ) from None
            if jobs <= 0:
                raise ConfigurationError(
                    f"REPRO_JOBS must be a positive integer, got {env!r}"
                )
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


# ------------------------------------------------------------------ persistent pool

_EXECUTOR = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_ENV_FINGERPRINT = ""
_SHUTDOWN_REGISTERED = False
# Reentrant: shutdown_executor() may be reached from get_executor() while the
# lock is already held (worker-count/fingerprint change rebuilds the pool).
_EXECUTOR_LOCK = threading.RLock()


def _worker_env_fingerprint() -> str:
    """Ambient knobs that worker processes snapshot when the pool is created.

    Workers read ``REPRO_BATCH_CYCLES`` from their *own* environment (frozen
    at pool creation), while cache digests use the parent's current value; a
    pool that outlives an env change would therefore compute with the old
    knob and persist results under the new knob's digest.  The fingerprint
    forces a pool rebuild whenever a result-affecting ambient knob changes.
    """
    from repro.sim.system import resolved_batch_cycles

    return repr(resolved_batch_cycles())


def get_executor(workers: int):
    """The shared process pool, created lazily and reused across experiments.

    A pool with a different worker count — or a different ambient-knob
    fingerprint (see :func:`_worker_env_fingerprint`) — replaces the existing
    one (the old pool is shut down first).  The pool is torn down
    automatically at interpreter exit; ``run_all`` additionally shuts it down
    explicitly when a run completes.  Creation and teardown are serialised by
    a lock so long-lived multi-threaded callers (the scenario service) can
    interleave sweeps with ``run_all``-style explicit shutdowns: the next
    sweep after a shutdown simply builds a fresh pool.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_ENV_FINGERPRINT, _SHUTDOWN_REGISTERED
    if workers <= 0:
        raise ConfigurationError("the process pool needs at least one worker")
    fingerprint = _worker_env_fingerprint()
    with _EXECUTOR_LOCK:
        if _EXECUTOR is not None and (
            _EXECUTOR_WORKERS != workers or _EXECUTOR_ENV_FINGERPRINT != fingerprint
        ):
            shutdown_executor()
        if _EXECUTOR is None:
            from concurrent.futures import ProcessPoolExecutor

            _EXECUTOR = ProcessPoolExecutor(max_workers=workers)
            _EXECUTOR_WORKERS = workers
            _EXECUTOR_ENV_FINGERPRINT = fingerprint
            if not _SHUTDOWN_REGISTERED:
                atexit.register(shutdown_executor)
                _SHUTDOWN_REGISTERED = True
        return _EXECUTOR


def shutdown_executor() -> None:
    """Tear down the shared process pool (idempotent; safe from any thread).

    Calling it twice, concurrently, or while another thread is about to fan
    out work is allowed: the pool reference is swapped out under the lock and
    the next :func:`get_executor` call lazily builds a replacement, so a
    long-lived service can run ``run_all``-style scenarios (which shut the
    pool down when they finish) back to back without ever observing a closed
    pool.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_ENV_FINGERPRINT
    with _EXECUTOR_LOCK:
        executor, _EXECUTOR = _EXECUTOR, None
        _EXECUTOR_WORKERS = 0
        _EXECUTOR_ENV_FINGERPRINT = ""
    if executor is not None:
        executor.shutdown()


def _terminate_executor() -> None:
    """Kill the shared pool's workers and drop the pool (for hung cells).

    :func:`shutdown_executor` waits for running tasks — useless against a
    worker stuck inside a cell.  This variant SIGTERMs the worker processes
    first, then discards the executor without waiting; the next
    :func:`get_executor` call builds a fresh pool.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_ENV_FINGERPRINT
    with _EXECUTOR_LOCK:
        executor, _EXECUTOR = _EXECUTOR, None
        _EXECUTOR_WORKERS = 0
        _EXECUTOR_ENV_FINGERPRINT = ""
    if executor is None:
        return
    # _processes is an instance attribute of ProcessPoolExecutor (stable
    # across supported CPythons, but reach for it defensively).
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def _supervised_call(payload):
    """Top-level worker adapter: run one cell, firing any scripted fault first.

    ``payload`` is ``(function, args, cell, attempt, plan_dict)``.  The fault
    plan travels *inside* the pickled payload — not via environment
    inheritance — so injection is deterministic regardless of when the pool's
    workers were spawned.  ``in_worker`` is detected from the process tree:
    in the serial fallback this same adapter runs in the parent, where a
    scripted worker crash must degrade to a transient error instead of
    killing the caller.
    """
    function, args, cell, attempt, plan_dict = payload
    if plan_dict is not None:
        import multiprocessing

        from repro.faults import FaultPlan

        plan = FaultPlan.from_dict(plan_dict)
        plan.inject(cell, attempt, in_worker=multiprocessing.parent_process() is not None)
    return function(*args)


def _supervised_batch_call(payload):
    """Top-level worker adapter for one *batched* submission.

    ``payload`` is ``(function, entries, plan_dict, trace_dir)`` with
    ``entries`` a list of ``(cell, args, attempt)``.  The cells evaluate
    sequentially in this worker; each cell's scripted fault still fires at
    its own index, and a per-cell evaluator exception is captured into the
    outcome list — ``[(True, value) | (False, error), ...]``, parallel to
    ``entries`` — so one failing cell never discards its batch-mates'
    finished results.  (A scripted *worker crash* still kills the whole
    batch; the supervisor reschedules every member.)  ``trace_dir``, when
    present, installs the sweep's shared-memory trace directory before any
    cell runs, so ``build_trace`` attaches instead of regenerating.
    """
    function, entries, plan_dict, trace_dir = payload
    if trace_dir:
        from repro.workloads.shm import install_shared_traces

        install_shared_traces(trace_dir)
    plan = None
    in_worker = False
    if plan_dict is not None:
        import multiprocessing

        from repro.faults import FaultPlan

        plan = FaultPlan.from_dict(plan_dict)
        in_worker = multiprocessing.parent_process() is not None
    outcomes = []
    for cell, args, attempt in entries:
        try:
            if plan is not None:
                plan.inject(cell, attempt, in_worker=in_worker)
            outcomes.append((True, function(*args)))
        except Exception as error:
            outcomes.append((False, error))
    return outcomes


def _supervised_map(function: Callable, tasks: list[tuple], pending: list[int],
                    workers: int, cost_key: Callable[[tuple], float] | None,
                    policy: RetryPolicy, timeout: float | None,
                    cancel: CancelToken | None, plan,
                    on_value: Callable[[int, object], None],
                    recheck: Callable[[int], tuple[bool, object]],
                    batch_size: int = 0,
                    trace_dir: dict | None = None) -> None:
    """Supervised fan-out of the cells in ``pending`` over the shared pool.

    Cells are submitted largest first under ``cost_key`` and watched until
    answered.  ``batch_size == 0`` submits every cell as its own future (the
    exact historical path); ``batch_size >= 1`` groups up to that many ready
    cells per submission — the batch is the unit of *transport*, while
    supervision stays per cell:

    * a completed future reports every finished cell through ``on_value``
      immediately — the caller persists each to the result cache, so work
      done before a later crash is never redone;
    * a transient failure (injected fault, broken pool, timeout) charges the
      failing cell one attempt and reschedules it after deterministic
      backoff, re-checking the cache first via ``recheck``; batch-mates that
      already finished keep their results, and a dead pool (which takes the
      whole batch with it) reschedules every member;
    * a permanent evaluator failure — or a transient one out of attempt
      budget — tears the pool down and surfaces;
    * a set cancel token stops submissions, lets in-flight cells finish (and
      be persisted), then raises :class:`JobCancelledError`;
    * a batch running past ``timeout`` kills the pool's workers; every cell
      of the hung batch is charged an attempt, innocent casualties from
      other batches are resubmitted free.
    """
    plan_dict = plan.to_dict() if plan is not None else None
    batching = batch_size >= 1
    order = sorted(pending)
    if cost_key is not None:
        # Stable sort: equal costs keep submission order deterministic.
        order.sort(key=lambda index: -cost_key(tasks[index]))

    unanswered = set(pending)
    attempts = dict.fromkeys(pending, 0)
    ready = list(order)                 # cells to (re)submit, in order
    delayed: list[tuple[float, int]] = []  # (monotonic ready time, cell)
    active: dict = {}                   # future -> list of cells
    started: dict = {}                  # future -> monotonic start time
    rebuilds_without_progress = 0

    from concurrent.futures import FIRST_COMPLETED, wait as wait_futures
    from concurrent.futures.process import BrokenProcessPool

    def _answer(cell: int, value) -> None:
        nonlocal rebuilds_without_progress
        unanswered.discard(cell)
        rebuilds_without_progress = 0
        on_value(cell, value)

    def _reschedule(cell: int, error: BaseException) -> None:
        """Charge one attempt for a transient failure; requeue or give up."""
        attempt = attempts[cell]
        if not policy.allows_retry(attempt):
            raise error
        attempts[cell] = attempt + 1
        record(retries=1)
        hit, value = recheck(cell)
        if hit:
            _answer(cell, value)
            return
        delay = policy.backoff_seconds(cell, attempt)
        delayed.append((time.monotonic() + delay, cell))

    def _absorb(future, group: list) -> None:
        """Report a successfully completed future's per-cell results.

        Per-cell failures inside a batch are classified exactly like the
        unbatched path: transient ones reschedule, permanent ones raise
        (after the batch's finished cells were answered).
        """
        if not batching:
            _answer(group[0], future.result())
            return
        failures = []
        for cell, (ok, value) in zip(group, future.result()):
            if ok:
                _answer(cell, value)
            else:
                failures.append((cell, value))
        for cell, error in failures:
            if is_transient(error):
                _reschedule(cell, error)
            else:
                record(permanent_failures=1)
                raise error

    def _rebuild_pool() -> None:
        nonlocal rebuilds_without_progress
        rebuilds_without_progress += 1
        record(pool_rebuilds=1)
        if rebuilds_without_progress > _MAX_CONSECUTIVE_REBUILDS:
            raise RuntimeError(
                "process pool kept breaking without completing a single cell "
                f"({_MAX_CONSECUTIVE_REBUILDS} consecutive rebuilds); giving up"
            )

    def _requeue_active(casualties: dict, culprits: list | None,
                        culprit_error: BaseException | None) -> None:
        """Resubmit in-flight cells after a pool teardown.

        Completed-but-uncollected futures keep their results; the culprit
        cells (if named) are charged an attempt; everyone else requeues free.
        """
        culprit_set = set(culprits or ())
        for future, group in casualties.items():
            if future.done() and not future.cancelled() and future.exception() is None:
                _absorb(future, group)
                continue
            for cell in group:
                if cell in culprit_set and culprit_error is not None:
                    _reschedule(cell, culprit_error)
                elif cell in unanswered:
                    hit, value = recheck(cell)
                    if hit:
                        _answer(cell, value)
                    else:
                        ready.append(cell)

    try:
        while unanswered:
            if cancel is not None and cancel.cancelled:
                # Cooperative stop: no new submissions, but in-flight cells
                # run to completion so their results reach the cache.
                for future in active:
                    future.cancel()
                for future, group in active.items():
                    if future.cancelled():
                        continue
                    try:
                        if batching:
                            for cell, (ok, value) in zip(group, future.result()):
                                if ok:
                                    _answer(cell, value)
                        else:
                            _answer(group[0], future.result())
                    except BaseException:
                        pass  # a failing cell cannot matter: we're cancelling
                record(cancelled=1)
                raise JobCancelledError("sweep cancelled at cell boundary")

            now = time.monotonic()
            if delayed:
                due = sorted(entry for entry in delayed if entry[0] <= now)
                delayed = [entry for entry in delayed if entry[0] > now]
                ready.extend(cell for _when, cell in due)

            while ready:
                group = []
                limit = batch_size if batching else 1
                while ready and len(group) < limit:
                    cell = ready.pop(0)
                    if cell in unanswered:
                        group.append(cell)
                if not group:
                    continue
                if batching:
                    entries = [(cell, tasks[cell], attempts[cell]) for cell in group]
                    payload = (function, entries, plan_dict, trace_dir)
                    call = _supervised_batch_call
                else:
                    cell = group[0]
                    payload = (function, tasks[cell], cell, attempts[cell], plan_dict)
                    call = _supervised_call
                pool = get_executor(workers)
                try:
                    future = pool.submit(call, payload)
                except RuntimeError as error:
                    if "cannot schedule new futures" not in str(error):
                        raise
                    # Another thread shut the shared pool down between our
                    # lookup and the submission (a concurrent run_all
                    # finishing does exactly that): rebuild and resubmit.
                    shutdown_executor()
                    _rebuild_pool()
                    ready[:0] = group
                    continue
                active[future] = group
                if future.running():
                    started[future] = time.monotonic()

            if not active:
                if not (delayed or ready):
                    # Nothing in flight, nothing scheduled, yet cells remain:
                    # cannot happen unless the bookkeeping above is wrong.
                    raise RuntimeError("supervisor stalled with unanswered cells")
                time.sleep(_SUPERVISOR_TICK_SECONDS)
                continue

            done, _running = wait_futures(
                list(active), timeout=_SUPERVISOR_TICK_SECONDS,
                return_when=FIRST_COMPLETED,
            )

            pool_broke = False
            for future in done:
                group = active.pop(future)
                started.pop(future, None)
                if future.cancelled():
                    ready.extend(cell for cell in group if cell in unanswered)
                    continue
                error = future.exception()
                if error is None:
                    _absorb(future, group)
                elif isinstance(error, BrokenProcessPool):
                    # The pool is dead; every other in-flight future is about
                    # to fail the same way.  Handle them all at once below.
                    pool_broke = True
                    for cell in group:
                        if cell in unanswered:
                            _reschedule(cell, error)
                elif is_transient(error):
                    for cell in group:
                        if cell in unanswered:
                            _reschedule(cell, error)
                else:
                    record(permanent_failures=1)
                    raise error

            if pool_broke:
                casualties, active, started = dict(active), {}, {}
                shutdown_executor()
                _rebuild_pool()
                for future, group in casualties.items():
                    error = None if not future.done() or future.cancelled() \
                        else future.exception()
                    if future.done() and not future.cancelled() and error is None:
                        _absorb(future, group)
                        continue
                    for cell in group:
                        if cell not in unanswered:
                            continue
                        if isinstance(error, BrokenProcessPool):
                            _reschedule(cell, error)
                        else:
                            ready.append(cell)
                continue

            if timeout is not None and active:
                now = time.monotonic()
                hung: list | None = None
                for future, group in active.items():
                    if future not in started:
                        if future.running():
                            started[future] = now
                    elif now - started[future] > timeout:
                        hung = group
                        break
                if hung is not None:
                    record(timeouts=1)
                    casualties, active, started = dict(active), {}, {}
                    _terminate_executor()
                    _rebuild_pool()
                    _requeue_active(
                        casualties, culprits=hung,
                        culprit_error=CellTimeoutError(
                            f"cell(s) {hung} exceeded the {timeout:g}s budget"
                        ),
                    )
    except JobCancelledError:
        # The workers are healthy, the job just isn't wanted any more; keep
        # the pool warm for the next sweep.
        raise
    except BaseException:
        # A broken or abandoned pool poisons every later submission; drop it
        # so the next call starts fresh.
        for future in active:
            future.cancel()
        shutdown_executor()
        raise


# ------------------------------------------------------------------ cached fan-out


def run_parallel(function: Callable, argument_tuples: Sequence[tuple],
                 jobs: int | None = None,
                 cost_key: Callable[[tuple], float] | None = None,
                 cache: bool = True,
                 progress: Callable[[int, int], None] | None = None,
                 cancel: CancelToken | None = None,
                 fault_plan=None,
                 trace_keys: Callable[[tuple], Sequence[tuple]] | None = None) -> list:
    """Apply ``function`` to every argument tuple, in order, possibly in parallel.

    ``function`` must be a picklable top-level callable and a pure function of
    its arguments (every experiment cell evaluator is).  Results are returned
    in submission order, so the output is bit-identical to the serial
    ``[function(*args) for args in argument_tuples]`` fallback regardless of
    worker count, scheduling order, cache state or injected faults.

    Results of functions defined in the ``repro`` package are transparently
    memoised in the content-addressed result cache (see
    :mod:`repro.sim.result_cache`); pass ``cache=False`` or set
    ``REPRO_CACHE=0`` to force computation.  ``cost_key`` maps one argument
    tuple to a relative cost estimate used for largest-first scheduling.

    ``progress``, when given, is called as ``progress(completed, total)`` on
    the calling thread — once up front (cache hits count as completed) and
    once per task as results arrive — so long-running sweeps can report
    per-cell progress (the scenario service's job status does).

    Execution is *supervised*: transient failures retry with backoff
    (``REPRO_CELL_RETRIES``), cells may carry a wall-clock budget
    (``REPRO_CELL_TIMEOUT``, parallel path only — a hung in-process cell
    cannot be preempted), a broken pool is rebuilt and only unanswered cells
    resubmitted, and completed cells are persisted as they finish.
    ``cancel``, when given, is checked at cell boundaries and raises
    :class:`~repro.errors.JobCancelledError`.  ``fault_plan`` (default: the
    ``REPRO_FAULT_PLAN`` environment plan, if any) injects deterministic
    faults at chosen cell indices — indices count positions in
    ``argument_tuples``.

    ``REPRO_VEC_BATCH`` (see :func:`repro.cache.batch.resolve_vec_batch`)
    groups up to that many cells per pool submission; ``0`` (the default)
    keeps the exact per-cell path.  Batching changes transport only — retry
    accounting, cancellation checks and ``progress`` callbacks stay per
    cell, and results are bit-identical either way.  ``trace_keys``, when
    given, maps one argument tuple to the ``(benchmark, instructions,
    seed)`` keys of the traces that cell replays; batched sweeps publish
    those traces once through shared memory
    (:mod:`repro.workloads.shm`) instead of regenerating them per worker.
    """
    if cancel is not None:
        cancel.raise_if_cancelled()
    if fault_plan is None:
        from repro.faults import plan_from_env

        fault_plan = plan_from_env()
    tasks = list(argument_tuples)
    if not tasks:
        if progress is not None:
            progress(0, 0)
        return []
    # Validate the jobs and batch knobs eagerly: a typo in REPRO_JOBS or
    # REPRO_VEC_BATCH must surface even when every cell is served from the
    # cache and no pool is ever built.
    workers = resolve_jobs(jobs)
    batch_size = resolve_vec_batch()
    results: list = [None] * len(tasks)
    pending = list(range(len(tasks)))
    digests: list[str] | None = None

    result_cache = get_result_cache() if cache else None
    use_cache = (
        result_cache is not None
        and result_cache.enabled
        and is_cacheable_function(function)
    )
    if use_cache:
        # Ambient result-affecting knobs read inside the evaluators (not part
        # of the task tuples) must be folded into the digest: a run with a
        # different co-simulation batch slack simulates different
        # interleavings and may not share cache entries.
        from repro.sim.system import resolved_batch_cycles

        extra = ("batch_cycles", repr(resolved_batch_cycles()))
        try:
            digests = [task_digest(function, args, extra=extra) for args in tasks]
        except CacheKeyError:
            # Uncacheable argument (e.g. a local callable): compute everything.
            use_cache = False
        else:
            pending = []
            for index, digest in enumerate(digests):
                hit, value = result_cache.get(digest)
                if hit:
                    results[index] = value
                else:
                    pending.append(index)

    total = len(tasks)
    completed = total - len(pending)
    if progress is not None:
        progress(completed, total)

    if pending:
        policy = retry_policy_from_env()

        def _deliver(index: int, value) -> None:
            """Record one answered cell: result slot, cache persist, progress.

            Persisting *here* — as each cell completes, not after the whole
            sweep — is what makes recovery cheap: a crash mid-sweep leaves
            every finished cell answerable from the cache.
            """
            nonlocal completed
            results[index] = value
            if use_cache:
                result_cache.put(digests[index], value)
                if fault_plan is not None:
                    fault_plan.corrupt_cache_entry(result_cache, digests[index], index)
            completed += 1
            if progress is not None:
                progress(completed, total)

        def _recheck(index: int) -> tuple[bool, object]:
            if not use_cache:
                return False, None
            return result_cache.get(digests[index])

        if workers <= 1 or len(pending) <= 1:
            # Serial fallback: same supervision minus the timeout (an
            # in-process cell cannot be preempted) and minus the pool.
            plan_dict = fault_plan.to_dict() if fault_plan is not None else None
            for index in pending:
                if cancel is not None and cancel.cancelled:
                    record(cancelled=1)
                    raise JobCancelledError("sweep cancelled at cell boundary")
                attempt = 0
                while True:
                    try:
                        value = _supervised_call(
                            (function, tasks[index], index, attempt, plan_dict)
                        )
                        break
                    except BaseException as error:
                        if not is_transient(error):
                            record(permanent_failures=1)
                            raise
                        if not policy.allows_retry(attempt):
                            raise
                        record(retries=1)
                        time.sleep(policy.backoff_seconds(index, attempt))
                        attempt += 1
                _deliver(index, value)
        else:
            store = None
            trace_dir: dict | None = None
            if batch_size >= 1 and trace_keys is not None:
                from repro.sim.runner import build_trace
                from repro.workloads.shm import SharedTraceStore

                store = SharedTraceStore()
                for index in pending:
                    for key in trace_keys(tasks[index]):
                        store.publish(key, build_trace(*key))
                trace_dir = store.directory()
            try:
                _supervised_map(function, tasks, pending, workers, cost_key,
                                policy=policy, timeout=cell_timeout_from_env(),
                                cancel=cancel, plan=fault_plan,
                                on_value=_deliver, recheck=_recheck,
                                batch_size=batch_size, trace_dir=trace_dir)
            finally:
                if store is not None:
                    store.unlink_all()
    return results
