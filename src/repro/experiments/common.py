"""Shared experiment configuration helpers.

The paper's 2-, 4- and 8-core CMPs use 8, 8 and 16 MB LLCs (Table I); this
reproduction runs much shorter traces, so experiments scale the cache
hierarchy down by roughly 64x (4 KB L1, 16 KB L2, 128/128/256 KB LLC) while
keeping latencies, associativities and the DRAM timing at their Table I
values.  All figure harnesses and benchmarks build their configurations
through :func:`default_experiment_config` so the scale-down is applied
consistently.
"""

from __future__ import annotations

from repro.config import CMPConfig

__all__ = ["EXPERIMENT_LLC_KILOBYTES", "default_experiment_config"]

# Scaled LLC capacity per core count, mirroring Table I's 8/8/16 MB.
EXPERIMENT_LLC_KILOBYTES = {2: 128, 4: 128, 8: 256}


def default_experiment_config(n_cores: int, llc_kilobytes: int | None = None) -> CMPConfig:
    """The scaled CMP configuration used by the experiments for ``n_cores`` cores."""
    if llc_kilobytes is None:
        llc_kilobytes = EXPERIMENT_LLC_KILOBYTES.get(n_cores, 128)
    return CMPConfig.default(n_cores).scaled(llc_kilobytes=llc_kilobytes)
