"""Shared experiment configuration helpers and the parallel task executor.

The paper's 2-, 4- and 8-core CMPs use 8, 8 and 16 MB LLCs (Table I); this
reproduction runs much shorter traces, so experiments scale the cache
hierarchy down by roughly 64x (4 KB L1, 16 KB L2, 128/128/256 KB LLC) while
keeping latencies, associativities and the DRAM timing at their Table I
values.  All figure harnesses and benchmarks build their configurations
through :func:`default_experiment_config` so the scale-down is applied
consistently.

The figure experiments are embarrassingly parallel across (workload, config)
cells — every cell is an independent pure function of its arguments.
:func:`run_parallel` is the one fan-out point they all share:

* **Memoisation** — each cell is first looked up in the content-addressed
  result cache (:mod:`repro.sim.result_cache`); only misses are computed and
  the results persisted, so a warm rerun of an identical sweep touches no
  simulator code at all.  ``REPRO_CACHE=0`` disables this.
* **Persistent process pool** — misses are fanned across one shared,
  lazily-created :class:`~concurrent.futures.ProcessPoolExecutor` that is
  reused for every figure of a run (``REPRO_JOBS`` / the ``jobs`` argument
  selects the worker count); creating a pool per experiment would pay
  worker spawn and import cost once per figure.  Call
  :func:`shutdown_executor` for an explicit teardown (``run_all`` does).
* **Scheduling** — tasks are submitted in chunks (``map`` with a computed
  chunksize) and, when the caller provides a ``cost_key``, largest cells
  first so a long cell cannot strand the pool's tail; results are always
  returned in submission order, bit-identical to the serial fallback used
  when ``jobs`` resolves to 1 or only one task is pending.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections.abc import Callable, Sequence

from repro.errors import CacheKeyError, ConfigurationError
from repro.config import CMPConfig
from repro.sim.result_cache import get_result_cache, is_cacheable_function, task_digest

__all__ = [
    "EXPERIMENT_LLC_KILOBYTES",
    "default_experiment_config",
    "get_executor",
    "resolve_jobs",
    "run_parallel",
    "shutdown_executor",
]

# Scaled LLC capacity per core count, mirroring Table I's 8/8/16 MB.
EXPERIMENT_LLC_KILOBYTES = {2: 128, 4: 128, 8: 256}

# Target chunks per worker when chunking map submissions: small enough to
# load-balance, large enough to amortise inter-process transfer.
_CHUNKS_PER_WORKER = 4


def default_experiment_config(n_cores: int, llc_kilobytes: int | None = None) -> CMPConfig:
    """The scaled CMP configuration used by the experiments for ``n_cores`` cores."""
    if llc_kilobytes is None:
        llc_kilobytes = EXPERIMENT_LLC_KILOBYTES.get(n_cores, 128)
    return CMPConfig.default(n_cores).scaled(llc_kilobytes=llc_kilobytes)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count for parallel sweeps.

    Explicit ``jobs`` wins; otherwise the ``REPRO_JOBS`` environment variable;
    otherwise the machine's CPU count.  Always at least 1.  A ``REPRO_JOBS``
    value that is not a positive integer raises
    :class:`~repro.errors.ConfigurationError` — silently clamping (or the
    bare ``ValueError`` ``int()`` used to throw) hid typos like
    ``REPRO_JOBS=all`` or ``REPRO_JOBS=-4`` until deep inside a sweep.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is not None and env.strip() != "":
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_JOBS must be a positive integer, got {env!r}"
                ) from None
            if jobs <= 0:
                raise ConfigurationError(
                    f"REPRO_JOBS must be a positive integer, got {env!r}"
                )
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


# ------------------------------------------------------------------ persistent pool

_EXECUTOR = None
_EXECUTOR_WORKERS = 0
_EXECUTOR_ENV_FINGERPRINT = ""
_SHUTDOWN_REGISTERED = False
# Reentrant: shutdown_executor() may be reached from get_executor() while the
# lock is already held (worker-count/fingerprint change rebuilds the pool).
_EXECUTOR_LOCK = threading.RLock()


def _worker_env_fingerprint() -> str:
    """Ambient knobs that worker processes snapshot when the pool is created.

    Workers read ``REPRO_BATCH_CYCLES`` from their *own* environment (frozen
    at pool creation), while cache digests use the parent's current value; a
    pool that outlives an env change would therefore compute with the old
    knob and persist results under the new knob's digest.  The fingerprint
    forces a pool rebuild whenever a result-affecting ambient knob changes.
    """
    from repro.sim.system import resolved_batch_cycles

    return repr(resolved_batch_cycles())


def get_executor(workers: int):
    """The shared process pool, created lazily and reused across experiments.

    A pool with a different worker count — or a different ambient-knob
    fingerprint (see :func:`_worker_env_fingerprint`) — replaces the existing
    one (the old pool is shut down first).  The pool is torn down
    automatically at interpreter exit; ``run_all`` additionally shuts it down
    explicitly when a run completes.  Creation and teardown are serialised by
    a lock so long-lived multi-threaded callers (the scenario service) can
    interleave sweeps with ``run_all``-style explicit shutdowns: the next
    sweep after a shutdown simply builds a fresh pool.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_ENV_FINGERPRINT, _SHUTDOWN_REGISTERED
    if workers <= 0:
        raise ConfigurationError("the process pool needs at least one worker")
    fingerprint = _worker_env_fingerprint()
    with _EXECUTOR_LOCK:
        if _EXECUTOR is not None and (
            _EXECUTOR_WORKERS != workers or _EXECUTOR_ENV_FINGERPRINT != fingerprint
        ):
            shutdown_executor()
        if _EXECUTOR is None:
            from concurrent.futures import ProcessPoolExecutor

            _EXECUTOR = ProcessPoolExecutor(max_workers=workers)
            _EXECUTOR_WORKERS = workers
            _EXECUTOR_ENV_FINGERPRINT = fingerprint
            if not _SHUTDOWN_REGISTERED:
                atexit.register(shutdown_executor)
                _SHUTDOWN_REGISTERED = True
        return _EXECUTOR


def shutdown_executor() -> None:
    """Tear down the shared process pool (idempotent; safe from any thread).

    Calling it twice, concurrently, or while another thread is about to fan
    out work is allowed: the pool reference is swapped out under the lock and
    the next :func:`get_executor` call lazily builds a replacement, so a
    long-lived service can run ``run_all``-style scenarios (which shut the
    pool down when they finish) back to back without ever observing a closed
    pool.
    """
    global _EXECUTOR, _EXECUTOR_WORKERS, _EXECUTOR_ENV_FINGERPRINT
    with _EXECUTOR_LOCK:
        executor, _EXECUTOR = _EXECUTOR, None
        _EXECUTOR_WORKERS = 0
        _EXECUTOR_ENV_FINGERPRINT = ""
    if executor is not None:
        executor.shutdown()


def _star_call(payload):
    """Top-level ``map`` adapter: apply a picklable function to one task tuple."""
    function, args = payload
    return function(*args)


def _map_on_pool(function: Callable, tasks: list[tuple], workers: int,
                 cost_key: Callable[[tuple], float] | None,
                 on_result: Callable[[], None] | None = None) -> list:
    """Fan tasks over the shared pool; results come back in task order.

    With a ``cost_key``, tasks are *submitted* largest-first (stable order
    for equal costs) so stragglers start early, then the result list is
    permuted back to submission order — the output is bit-identical to the
    serial evaluation because every cell is a pure function.  ``on_result``
    is invoked (on the calling thread) once per completed task, in completion
    order, for progress reporting.
    """
    order = list(range(len(tasks)))
    if cost_key is not None:
        order.sort(key=lambda index: -cost_key(tasks[index]))
        # Chunking a cost-sorted sequence would hand the heaviest cells to a
        # single worker as one sequential chunk — the opposite of straggler
        # avoidance.  Per-task dispatch keeps the expensive cells spread
        # across workers; its IPC overhead is noise against simulation cells.
        chunksize = 1
    else:
        chunksize = max(1, -(-len(tasks) // (workers * _CHUNKS_PER_WORKER)))
    payloads = [(function, tasks[index]) for index in order]
    mapped: list = []
    for attempt in (0, 1):
        pool = get_executor(workers)
        try:
            for value in pool.map(_star_call, payloads, chunksize=chunksize):
                mapped.append(value)
                if on_result is not None:
                    on_result()
            break
        except RuntimeError as error:
            # Another thread shut the shared pool down between our lookup and
            # the submission (a concurrent run_all finishing does exactly
            # that).  Nothing ran yet in that case, so rebuild the pool once
            # and resubmit.  Only that specific failure retries: broken pools
            # (BrokenProcessPool subclasses RuntimeError) and evaluator
            # errors that happen to be RuntimeErrors must surface, not
            # silently re-run the whole sweep.
            shutdown_executor()
            if (attempt or mapped
                    or "cannot schedule new futures" not in str(error)):
                raise
        except BaseException:
            # A broken pool (e.g. a worker killed by the OOM killer) poisons
            # every later submission; drop it so the next call starts fresh.
            shutdown_executor()
            raise
    results: list = [None] * len(tasks)
    for position, index in enumerate(order):
        results[index] = mapped[position]
    return results


# ------------------------------------------------------------------ cached fan-out


def run_parallel(function: Callable, argument_tuples: Sequence[tuple],
                 jobs: int | None = None,
                 cost_key: Callable[[tuple], float] | None = None,
                 cache: bool = True,
                 progress: Callable[[int, int], None] | None = None) -> list:
    """Apply ``function`` to every argument tuple, in order, possibly in parallel.

    ``function`` must be a picklable top-level callable and a pure function of
    its arguments (every experiment cell evaluator is).  Results are returned
    in submission order, so the output is bit-identical to the serial
    ``[function(*args) for args in argument_tuples]`` fallback regardless of
    worker count, scheduling order or cache state.

    Results of functions defined in the ``repro`` package are transparently
    memoised in the content-addressed result cache (see
    :mod:`repro.sim.result_cache`); pass ``cache=False`` or set
    ``REPRO_CACHE=0`` to force computation.  ``cost_key`` maps one argument
    tuple to a relative cost estimate used for largest-first scheduling.

    ``progress``, when given, is called as ``progress(completed, total)`` on
    the calling thread — once up front (cache hits count as completed) and
    once per task as results arrive — so long-running sweeps can report
    per-cell progress (the scenario service's job status does).
    """
    tasks = list(argument_tuples)
    if not tasks:
        if progress is not None:
            progress(0, 0)
        return []
    # Validate the jobs knob eagerly: a typo in REPRO_JOBS must surface even
    # when every cell is served from the cache and no pool is ever built.
    workers = resolve_jobs(jobs)
    results: list = [None] * len(tasks)
    pending = list(range(len(tasks)))
    digests: list[str] | None = None

    result_cache = get_result_cache() if cache else None
    use_cache = (
        result_cache is not None
        and result_cache.enabled
        and is_cacheable_function(function)
    )
    if use_cache:
        # Ambient result-affecting knobs read inside the evaluators (not part
        # of the task tuples) must be folded into the digest: a run with a
        # different co-simulation batch slack simulates different
        # interleavings and may not share cache entries.
        from repro.sim.system import resolved_batch_cycles

        extra = ("batch_cycles", repr(resolved_batch_cycles()))
        try:
            digests = [task_digest(function, args, extra=extra) for args in tasks]
        except CacheKeyError:
            # Uncacheable argument (e.g. a local callable): compute everything.
            use_cache = False
        else:
            pending = []
            for index, digest in enumerate(digests):
                hit, value = result_cache.get(digest)
                if hit:
                    results[index] = value
                else:
                    pending.append(index)

    total = len(tasks)
    completed = total - len(pending)
    if progress is not None:
        progress(completed, total)

    if pending:
        miss_tasks = [tasks[index] for index in pending]

        def _one_done() -> None:
            nonlocal completed
            completed += 1
            progress(completed, total)

        on_result = None if progress is None else _one_done
        if workers <= 1 or len(miss_tasks) <= 1:
            computed = []
            for args in miss_tasks:
                computed.append(function(*args))
                if on_result is not None:
                    on_result()
        else:
            computed = _map_on_pool(function, miss_tasks, workers, cost_key,
                                    on_result=on_result)
        for index, value in zip(pending, computed):
            results[index] = value
            if use_cache:
                result_cache.put(digests[index], value)
    return results
