"""Figure 3: average private-mode prediction accuracy.

Figure 3a reports, for every (core count, workload category) cell, the average
per-benchmark absolute RMS error of the private-mode IPC estimates produced by
ITCA, PTCA, ASM, GDP and GDP-O.  Figure 3b reports the same matrix for the
SMS-load-related stall-cycle estimates.  The paper's headline observations are
that GDP and GDP-O have the lowest errors almost everywhere, that ITCA is
conservative (largest errors under real interference), that PTCA suffers from
its MLP blind spot and that ASM's IPC errors explode on the 8-core
L-workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.accuracy import TECHNIQUE_NAMES, summarize_rms
from repro.experiments.sweep import AccuracySweep, SweepSettings, run_accuracy_sweep
from repro.experiments.tables import format_cell_table

__all__ = ["Figure3Result", "run_figure3"]


@dataclass
class Figure3Result:
    """Average RMS errors per (core count, category) cell and technique."""

    ipc_rms: dict[str, dict[str, float]] = field(default_factory=dict)
    stall_rms: dict[str, dict[str, float]] = field(default_factory=dict)

    def cell_label(self, n_cores: int, category: str) -> str:
        return f"{n_cores}c-{category}"

    def report(self) -> str:
        lines = ["Figure 3a: IPC estimate (average absolute RMS error)"]
        lines.append(format_cell_table(self.ipc_rms))
        lines.append("")
        lines.append("Figure 3b: SMS-load stall cycles (average absolute RMS error)")
        lines.append(format_cell_table(self.stall_rms))
        return "\n".join(lines)


def run_figure3(settings: SweepSettings | None = None,
                sweep: AccuracySweep | None = None) -> Figure3Result:
    """Run (or reuse) an accuracy sweep and aggregate it into the Figure 3 matrices."""
    if sweep is None:
        sweep = run_accuracy_sweep(settings)
    result = Figure3Result()
    for (n_cores, category), workload_results in sorted(sweep.cells.items()):
        label = f"{n_cores}c-{category}"
        result.ipc_rms[label] = {
            technique: summarize_rms(workload_results, technique, metric="ipc")
            for technique in TECHNIQUE_NAMES
        }
        result.stall_rms[label] = {
            technique: summarize_rms(workload_results, technique, metric="stall")
            for technique in TECHNIQUE_NAMES
        }
    return result


if __name__ == "__main__":
    print(run_figure3().report())
