"""Figure 4: distribution of the SMS-load stall-cycle RMS errors.

For each core count the paper sorts the per-benchmark absolute RMS errors of
the stall-cycle estimates across all workloads and plots the resulting
distribution for every technique.  The reproduction returns the sorted error
series so the same curves can be plotted or compared numerically (lower curves
are better; GDP and GDP-O should dominate ITCA, PTCA and ASM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.accuracy import TECHNIQUE_NAMES
from repro.experiments.sweep import AccuracySweep, SweepSettings, run_accuracy_sweep
from repro.experiments.tables import format_table

__all__ = ["Figure4Result", "run_figure4"]


@dataclass
class Figure4Result:
    """Sorted per-benchmark stall-cycle RMS errors, per core count and technique."""

    distributions: dict[int, dict[str, list[float]]] = field(default_factory=dict)

    def median(self, n_cores: int, technique: str) -> float:
        series = self.distributions.get(n_cores, {}).get(technique, [])
        if not series:
            return 0.0
        middle = len(series) // 2
        return series[middle]

    def report(self) -> str:
        lines = ["Figure 4: sorted SMS-load stall-cycle RMS error distributions"]
        for n_cores, by_technique in sorted(self.distributions.items()):
            lines.append(f"\n{n_cores}-core CMP (median / maximum per technique)")
            rows = []
            for technique in TECHNIQUE_NAMES:
                series = by_technique.get(technique, [])
                maximum = series[-1] if series else 0.0
                rows.append([technique, self.median(n_cores, technique), maximum])
            lines.append(format_table(["technique", "median RMS", "max RMS"], rows))
        return "\n".join(lines)


def run_figure4(settings: SweepSettings | None = None,
                sweep: AccuracySweep | None = None) -> Figure4Result:
    """Aggregate an accuracy sweep into per-core-count sorted error distributions."""
    if sweep is None:
        sweep = run_accuracy_sweep(settings)
    result = Figure4Result()
    core_counts = sorted({n_cores for n_cores, _category in sweep.cells})
    for n_cores in core_counts:
        by_technique: dict[str, list[float]] = {name: [] for name in TECHNIQUE_NAMES}
        for workload_result in sweep.all_results(n_cores):
            for benchmark in workload_result.benchmarks:
                for technique in TECHNIQUE_NAMES:
                    by_technique[technique].append(benchmark.stall_rms(technique))
        for technique in TECHNIQUE_NAMES:
            by_technique[technique].sort()
        result.distributions[n_cores] = by_technique
    return result


if __name__ == "__main__":
    print(run_figure4().report())
