"""Figure 5: accuracy of GDP/GDP-O's estimate components.

The paper decomposes GDP-O's estimate into three components and reports the
relative RMS error distribution of each:

* Figure 5a — the CPL estimated at runtime (bounded PRB, shared mode) versus
  the same algorithms with unlimited buffer space in private mode,
* Figure 5b — GDP-O's overlap estimator versus the private-mode overlap,
* Figure 5c — DIEF's private-mode latency estimate versus the measured
  private-mode latency.

The headline observation is that CPL errors are small for most benchmarks and
that large component errors occur mostly where they do not matter (compute-
bound benchmarks whose SMS stalls barely affect CPI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.sweep import AccuracySweep, SweepSettings, run_accuracy_sweep
from repro.experiments.tables import format_table
from repro.metrics.errors import mean

__all__ = ["Figure5Result", "run_figure5"]

COMPONENTS = ("cpl", "overlap", "latency")


@dataclass
class Figure5Result:
    """Per-cell relative RMS error distributions for each GDP-O component."""

    distributions: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def series(self, component: str, cell: str) -> list[float]:
        return self.distributions.get(component, {}).get(cell, [])

    def median(self, component: str, cell: str) -> float:
        series = sorted(self.series(component, cell))
        if not series:
            return 0.0
        return series[len(series) // 2]

    def report(self) -> str:
        lines = ["Figure 5: relative RMS error of GDP-O estimate components (per benchmark)"]
        for component in COMPONENTS:
            lines.append(f"\n{component.upper()} estimation accuracy (median / mean / max per cell)")
            rows = []
            for cell, series in sorted(self.distributions.get(component, {}).items()):
                ordered = sorted(series)
                maximum = ordered[-1] if ordered else 0.0
                rows.append([cell, self.median(component, cell), mean(ordered), maximum])
            lines.append(format_table(["cell", "median", "mean", "max"], rows))
        return "\n".join(lines)


def run_figure5(settings: SweepSettings | None = None,
                sweep: AccuracySweep | None = None) -> Figure5Result:
    """Collect the per-benchmark component error distributions (Violin plot data)."""
    if sweep is None:
        settings = settings or SweepSettings(collect_components=True)
        if not settings.collect_components:
            settings = SweepSettings(
                core_counts=settings.core_counts,
                categories=settings.categories,
                workloads_per_category=settings.workloads_per_category,
                instructions_per_core=settings.instructions_per_core,
                interval_instructions=settings.interval_instructions,
                seed=settings.seed,
                collect_components=True,
            )
        sweep = run_accuracy_sweep(settings)
    result = Figure5Result()
    for component in COMPONENTS:
        result.distributions[component] = {}
    for (n_cores, category), workload_results in sorted(sweep.cells.items()):
        cell = f"{n_cores}c-{category}"
        cpl: list[float] = []
        overlap: list[float] = []
        latency: list[float] = []
        for workload_result in workload_results:
            for component_accuracy in workload_result.components:
                cpl.append(component_accuracy.cpl_rms())
                overlap.append(component_accuracy.overlap_rms())
                latency.append(component_accuracy.latency_rms())
        result.distributions["cpl"][cell] = cpl
        result.distributions["overlap"][cell] = overlap
        result.distributions["latency"][cell] = latency
    return result


if __name__ == "__main__":
    print(run_figure5().report())
