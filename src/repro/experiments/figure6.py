"""Figure 6: system throughput with LLC partitioning (the MCP case study).

Figure 6a reports the average System Throughput (STP) achieved by LRU, UCP,
ASM-driven partitioning, MCP and MCP-O over every (core count, category)
cell; Figure 6b shows the per-workload STP of the 8-core H-workloads relative
to LRU.  The paper's headline is that MCP/MCP-O deliver the highest average
STP on the 4- and 8-core CMPs, with the largest gains on the H-workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.case_study import (
    POLICY_NAMES,
    WorkloadThroughput,
    average_throughput,
)
from repro.experiments.common import default_experiment_config
from repro.experiments.tables import format_cell_table, format_table

__all__ = ["Figure6Settings", "Figure6Result", "figure6_spec", "run_figure6"]


@dataclass(frozen=True)
class Figure6Settings:
    """Size of the partitioning case study."""

    core_counts: tuple[int, ...] = (2, 4, 8)
    categories: tuple[str, ...] = ("H", "M", "L")
    workloads_per_category: int = 2
    instructions_per_core: int = 40_000
    interval_instructions: int = 6_000
    repartition_interval_cycles: float = 20_000.0
    policies: tuple[str, ...] = POLICY_NAMES
    seed: int = 0


@dataclass
class Figure6Result:
    """Average STP per cell (6a) and per-workload relative STP for 8-core H (6b)."""

    average_stp: dict[str, dict[str, float]] = field(default_factory=dict)
    per_workload: dict[tuple[int, str], list[WorkloadThroughput]] = field(default_factory=dict)

    def relative_to_lru(self, n_cores: int = 8, category: str = "H") -> list[dict[str, float]]:
        """Figure 6b: STP of each policy relative to LRU, per workload."""
        return [
            result.relative_to("LRU")
            for result in self.per_workload.get((n_cores, category), [])
        ]

    def improvement(self, policy: str, baseline: str, n_cores: int) -> float:
        """Average STP improvement of ``policy`` over ``baseline`` for one core count."""
        ratios = []
        for cell, values in self.average_stp.items():
            if not cell.startswith(f"{n_cores}c-"):
                continue
            if values.get(baseline, 0.0) > 0:
                ratios.append(values[policy] / values[baseline])
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios) - 1.0

    def report(self) -> str:
        lines = ["Figure 6a: average system throughput (STP) per cell"]
        lines.append(format_cell_table(self.average_stp))
        relative = self.relative_to_lru()
        if relative:
            lines.append("\nFigure 6b: 8-core H-workload STP relative to LRU")
            rows = []
            for index, ratios in enumerate(relative):
                rows.append([index, *[ratios.get(policy, 0.0) for policy in POLICY_NAMES]])
            lines.append(format_table(["workload", *POLICY_NAMES], rows))
        return "\n".join(lines)


def figure6_spec(settings: Figure6Settings | None = None, name: str = "figure6"):
    """The :class:`~repro.scenarios.spec.ScenarioSpec` equivalent of ``settings``."""
    # Lazy import: the scenario engine consumes this package's evaluators, so
    # a module-level import of repro.scenarios would be circular.
    from repro.scenarios.spec import MachineSpec, ScenarioSpec, WorkloadMixSpec

    settings = settings or Figure6Settings()
    return ScenarioSpec(
        name=name,
        kind="throughput",
        machine=MachineSpec(core_counts=tuple(settings.core_counts)),
        workloads=WorkloadMixSpec(
            generator="auto",
            groups=tuple(settings.categories),
            per_group=settings.workloads_per_category,
            seed=settings.seed,
        ),
        policies=tuple(settings.policies),
        instructions_per_core=settings.instructions_per_core,
        interval_instructions=settings.interval_instructions,
        repartition_interval_cycles=settings.repartition_interval_cycles,
        description="System throughput with LLC partitioning (the MCP case study)",
    )


def run_figure6(settings: Figure6Settings | None = None,
                config_factory=default_experiment_config,
                jobs: int | None = None) -> Figure6Result:
    """Run the partitioning case study over every (core count, category) cell.

    The settings are translated into a declarative scenario spec and executed
    by the generic engine — same cells, same shared parallel executor, results
    bit-identical to the pre-engine harness.
    """
    from repro.scenarios.runner import run_scenario

    settings = settings or Figure6Settings()
    scenario = run_scenario(figure6_spec(settings), jobs=jobs,
                            config_factory=config_factory)
    result = Figure6Result()
    for (n_cores, category, _axis_label), cell_results in scenario.cells.items():
        result.per_workload[(n_cores, category)] = list(cell_results)
    for (n_cores, category), cell_results in result.per_workload.items():
        result.average_stp[f"{n_cores}c-{category}"] = {
            policy: average_throughput(cell_results, policy)
            for policy in settings.policies
        }
    return result


if __name__ == "__main__":
    print(run_figure6().report())
