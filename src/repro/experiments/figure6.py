"""Figure 6: system throughput with LLC partitioning (the MCP case study).

Figure 6a reports the average System Throughput (STP) achieved by LRU, UCP,
ASM-driven partitioning, MCP and MCP-O over every (core count, category)
cell; Figure 6b shows the per-workload STP of the 8-core H-workloads relative
to LRU.  The paper's headline is that MCP/MCP-O deliver the highest average
STP on the 4- and 8-core CMPs, with the largest gains on the H-workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.case_study import (
    POLICY_NAMES,
    WorkloadThroughput,
    average_throughput,
    evaluate_workload_throughput,
)
from repro.experiments.common import default_experiment_config
from repro.experiments.sweep import run_workloads_parallel
from repro.experiments.tables import format_cell_table, format_table
from repro.workloads.mixes import generate_category_workloads

__all__ = ["Figure6Settings", "Figure6Result", "run_figure6"]


@dataclass(frozen=True)
class Figure6Settings:
    """Size of the partitioning case study."""

    core_counts: tuple[int, ...] = (2, 4, 8)
    categories: tuple[str, ...] = ("H", "M", "L")
    workloads_per_category: int = 2
    instructions_per_core: int = 40_000
    interval_instructions: int = 6_000
    repartition_interval_cycles: float = 20_000.0
    policies: tuple[str, ...] = POLICY_NAMES
    seed: int = 0


@dataclass
class Figure6Result:
    """Average STP per cell (6a) and per-workload relative STP for 8-core H (6b)."""

    average_stp: dict[str, dict[str, float]] = field(default_factory=dict)
    per_workload: dict[tuple[int, str], list[WorkloadThroughput]] = field(default_factory=dict)

    def relative_to_lru(self, n_cores: int = 8, category: str = "H") -> list[dict[str, float]]:
        """Figure 6b: STP of each policy relative to LRU, per workload."""
        return [
            result.relative_to("LRU")
            for result in self.per_workload.get((n_cores, category), [])
        ]

    def improvement(self, policy: str, baseline: str, n_cores: int) -> float:
        """Average STP improvement of ``policy`` over ``baseline`` for one core count."""
        ratios = []
        for cell, values in self.average_stp.items():
            if not cell.startswith(f"{n_cores}c-"):
                continue
            if values.get(baseline, 0.0) > 0:
                ratios.append(values[policy] / values[baseline])
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios) - 1.0

    def report(self) -> str:
        lines = ["Figure 6a: average system throughput (STP) per cell"]
        lines.append(format_cell_table(self.average_stp))
        relative = self.relative_to_lru()
        if relative:
            lines.append("\nFigure 6b: 8-core H-workload STP relative to LRU")
            rows = []
            for index, ratios in enumerate(relative):
                rows.append([index, *[ratios.get(policy, 0.0) for policy in POLICY_NAMES]])
            lines.append(format_table(["workload", *POLICY_NAMES], rows))
        return "\n".join(lines)


def _throughput_cell_cost(args: tuple) -> float:
    """Relative cost of one case-study cell: one shared run per policy plus
    one private run per core, all proportional to the instruction count."""
    workload, _config, policies, instructions_per_core = args[0], args[1], args[2], args[3]
    return float(len(workload.benchmarks) * (len(policies) + 1) * instructions_per_core)


def run_figure6(settings: Figure6Settings | None = None,
                config_factory=default_experiment_config,
                jobs: int | None = None) -> Figure6Result:
    """Run the partitioning case study over every (core count, category) cell.

    Cells are independent simulations; they are flattened into one task list
    and evaluated through the shared parallel executor (serial fallback is
    bit-identical).
    """
    settings = settings or Figure6Settings()
    result = Figure6Result()
    cell_keys: list[tuple[int, str]] = []
    tasks: list[tuple] = []
    for n_cores in settings.core_counts:
        config = config_factory(n_cores)
        for category in settings.categories:
            workloads = generate_category_workloads(
                n_cores, category, settings.workloads_per_category, seed=settings.seed
            )
            for workload in workloads:
                cell_keys.append((n_cores, category))
                tasks.append((
                    workload,
                    config,
                    settings.policies,
                    settings.instructions_per_core,
                    settings.interval_instructions,
                    settings.repartition_interval_cycles,
                    settings.seed,
                ))
    cell_results_flat = run_workloads_parallel(evaluate_workload_throughput, tasks, jobs=jobs,
                                               cost_key=_throughput_cell_cost)
    for key, cell_result in zip(cell_keys, cell_results_flat):
        result.per_workload.setdefault(key, []).append(cell_result)
    for (n_cores, category), cell_results in result.per_workload.items():
        result.average_stp[f"{n_cores}c-{category}"] = {
            policy: average_throughput(cell_results, policy)
            for policy in settings.policies
        }
    return result


if __name__ == "__main__":
    print(run_figure6().report())
