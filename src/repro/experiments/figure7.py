"""Figure 7: sensitivity of GDP-O's accuracy to architecture and configuration.

Each panel sweeps one knob on the 4-core CMP and reports GDP-O's average
absolute IPC RMS error for the H-, M- and L-workload categories:

* 7a — LLC size (the paper's 4/8/16 MB, scaled here to 64/128/256 KB),
* 7b — LLC associativity (16/32/64),
* 7c — number of DDR2 channels (1/2/4),
* 7d — DDR2-800 versus DDR4-2666,
* 7e — PRB entries (8/16/32/64/1024),
* 7f — mixed workloads (HHML, HMML, HMLL) compared with the pure categories.

The paper's observation is that GDP-O stays accurate across almost all
configurations, with errors shrinking when resources grow (less contention
makes the estimation problem easier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.experiments.accuracy import summarize_rms
from repro.experiments.tables import format_cell_table

__all__ = ["Figure7Settings", "Figure7Result", "figure7_panel_spec",
           "run_figure7", "run_figure7_panel"]

PANELS = ("llc_size", "llc_associativity", "dram_channels", "dram_interface", "prb_entries", "mixed_workloads")

# Scaled equivalents of the paper's sweep values.
LLC_SIZE_KB = (64, 128, 256)
LLC_ASSOCIATIVITY = (16, 32, 64)
DDR2_CHANNELS = (1, 2, 4)
DRAM_INTERFACES = ("DDR2", "DDR4")
PRB_SIZES = (8, 16, 32, 64, 1024)
MIXES = ("HHML", "HMML", "HMLL")

# Panel name -> the scenario sweep axis it varies (mixed_workloads varies the
# workload groups instead of a machine knob).
PANEL_AXES = {
    "llc_size": ("llc_size_kb", LLC_SIZE_KB),
    "llc_associativity": ("llc_associativity", LLC_ASSOCIATIVITY),
    "dram_channels": ("dram_channels", DDR2_CHANNELS),
    "dram_interface": ("dram_interface", DRAM_INTERFACES),
    "prb_entries": ("prb_entries", PRB_SIZES),
}


@dataclass(frozen=True)
class Figure7Settings:
    """Size of the sensitivity analysis (always a 4-core CMP, as in the paper)."""

    categories: tuple[str, ...] = ("H", "M", "L")
    workloads_per_category: int = 2
    instructions_per_core: int = 24_000
    interval_instructions: int = 6_000
    seed: int = 0
    technique: str = "GDP-O"


@dataclass
class Figure7Result:
    """GDP-O average IPC RMS error per panel, sweep value and workload category."""

    panels: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def panel(self, name: str) -> dict[str, dict[str, float]]:
        return self.panels.get(name, {})

    def report(self) -> str:
        lines = ["Figure 7: GDP-O IPC estimate sensitivity (average absolute RMS error)"]
        for panel_name, cells in self.panels.items():
            lines.append(f"\nFigure 7 ({panel_name})")
            lines.append(format_cell_table(cells))
        return "\n".join(lines)


def figure7_panel_spec(panel: str, settings: Figure7Settings | None = None):
    """The :class:`~repro.scenarios.spec.ScenarioSpec` for one sensitivity panel."""
    # Lazy import: the scenario engine consumes this package's evaluators, so
    # a module-level import of repro.scenarios would be circular.
    from repro.scenarios.spec import (
        MachineSpec,
        ScenarioSpec,
        SweepAxis,
        WorkloadMixSpec,
    )

    settings = settings or Figure7Settings()
    if panel not in PANELS:
        raise ConfigurationError(
            f"unknown Figure 7 panel '{panel}' (panels: {', '.join(PANELS)})"
        )
    if panel == "mixed_workloads":
        groups: tuple[str, ...] = (*settings.categories, *MIXES)
        axes: tuple[SweepAxis, ...] = ()
    else:
        groups = tuple(settings.categories)
        axis_name, values = PANEL_AXES[panel]
        axes = (SweepAxis(name=axis_name, values=values),)
    return ScenarioSpec(
        name=f"figure7-{panel}",
        kind="accuracy",
        machine=MachineSpec(core_counts=(4,)),
        workloads=WorkloadMixSpec(
            generator="auto",
            groups=groups,
            per_group=settings.workloads_per_category,
            seed=settings.seed,
        ),
        techniques=(settings.technique,),
        axes=axes,
        instructions_per_core=settings.instructions_per_core,
        interval_instructions=settings.interval_instructions,
        description=f"GDP-O sensitivity panel '{panel}' on the 4-core CMP",
    )


def run_figure7_panel(panel: str, settings: Figure7Settings | None = None,
                      jobs: int | None = None) -> dict[str, dict[str, float]]:
    """Run one sensitivity panel and return {category or mix: {sweep value: error}}."""
    from repro.scenarios.runner import axis_value_label, run_scenario

    settings = settings or Figure7Settings()
    spec = figure7_panel_spec(panel, settings)
    scenario = run_scenario(spec, jobs=jobs)
    technique = settings.technique

    def cell_error(group: str, axis_label: str = "") -> float:
        return summarize_rms(scenario.results(4, group, axis_label), technique,
                             metric="ipc")

    cells: dict[str, dict[str, float]] = {}
    if panel == "mixed_workloads":
        for category in settings.categories:
            cells[f"4c-{category}"] = {"error": cell_error(category)}
        for mix in MIXES:
            cells[mix] = {"error": cell_error(mix)}
        return cells

    (axis,) = spec.axes
    for category in settings.categories:
        cells[f"4c-{category}"] = {
            axis_value_label(axis, value): cell_error(category, axis_value_label(axis, value))
            for value in axis.values
        }
    return cells


def run_figure7(settings: Figure7Settings | None = None,
                panels: tuple[str, ...] = PANELS,
                jobs: int | None = None) -> Figure7Result:
    """Run the requested sensitivity panels (all of them by default)."""
    settings = settings or Figure7Settings()
    result = Figure7Result()
    for panel in panels:
        result.panels[panel] = run_figure7_panel(panel, settings, jobs=jobs)
    return result


if __name__ == "__main__":
    print(run_figure7().report())
