"""Figure 7: sensitivity of GDP-O's accuracy to architecture and configuration.

Each panel sweeps one knob on the 4-core CMP and reports GDP-O's average
absolute IPC RMS error for the H-, M- and L-workload categories:

* 7a — LLC size (the paper's 4/8/16 MB, scaled here to 64/128/256 KB),
* 7b — LLC associativity (16/32/64),
* 7c — number of DDR2 channels (1/2/4),
* 7d — DDR2-800 versus DDR4-2666,
* 7e — PRB entries (8/16/32/64/1024),
* 7f — mixed workloads (HHML, HMML, HMLL) compared with the pure categories.

The paper's observation is that GDP-O stays accurate across almost all
configurations, with errors shrinking when resources grow (less contention
makes the estimation problem easier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.accuracy import evaluate_workload_accuracy, summarize_rms
from repro.experiments.common import default_experiment_config
from repro.experiments.sweep import run_workloads_parallel
from repro.experiments.tables import format_cell_table
from repro.config import CMPConfig, DDR2_800, DDR4_2666
from repro.workloads.mixes import generate_category_workloads, generate_mixed_workloads

__all__ = ["Figure7Settings", "Figure7Result", "run_figure7", "run_figure7_panel"]

KILOBYTE = 1024

PANELS = ("llc_size", "llc_associativity", "dram_channels", "dram_interface", "prb_entries", "mixed_workloads")

# Scaled equivalents of the paper's sweep values.
LLC_SIZE_KB = (64, 128, 256)
LLC_ASSOCIATIVITY = (16, 32, 64)
DDR2_CHANNELS = (1, 2, 4)
DRAM_INTERFACES = ("DDR2", "DDR4")
PRB_SIZES = (8, 16, 32, 64, 1024)
MIXES = ("HHML", "HMML", "HMLL")


@dataclass(frozen=True)
class Figure7Settings:
    """Size of the sensitivity analysis (always a 4-core CMP, as in the paper)."""

    categories: tuple[str, ...] = ("H", "M", "L")
    workloads_per_category: int = 2
    instructions_per_core: int = 24_000
    interval_instructions: int = 6_000
    seed: int = 0
    technique: str = "GDP-O"


@dataclass
class Figure7Result:
    """GDP-O average IPC RMS error per panel, sweep value and workload category."""

    panels: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def panel(self, name: str) -> dict[str, dict[str, float]]:
        return self.panels.get(name, {})

    def report(self) -> str:
        lines = ["Figure 7: GDP-O IPC estimate sensitivity (average absolute RMS error)"]
        for panel_name, cells in self.panels.items():
            lines.append(f"\nFigure 7 ({panel_name})")
            lines.append(format_cell_table(cells))
        return "\n".join(lines)


def _evaluate_cell(workloads, config: CMPConfig, settings: Figure7Settings,
                   technique: str, prb_entries: int | None = None,
                   jobs: int | None = None) -> float:
    results = run_workloads_parallel(
        evaluate_workload_accuracy,
        [
            (
                workload,
                config,
                settings.instructions_per_core,
                settings.interval_instructions,
                settings.seed,
                (technique,),
                False,
                prb_entries,
            )
            for workload in workloads
        ],
        jobs=jobs,
    )
    return summarize_rms(results, technique, metric="ipc")


def run_figure7_panel(panel: str, settings: Figure7Settings | None = None,
                      jobs: int | None = None) -> dict[str, dict[str, float]]:
    """Run one sensitivity panel and return {category or mix: {sweep value: error}}."""
    settings = settings or Figure7Settings()
    if panel not in PANELS:
        raise ValueError(f"unknown Figure 7 panel '{panel}'")
    technique = settings.technique
    n_cores = 4
    base_config = default_experiment_config(n_cores)

    category_workloads = {
        category: generate_category_workloads(
            n_cores, category, settings.workloads_per_category, seed=settings.seed
        )
        for category in settings.categories
    }

    cells: dict[str, dict[str, float]] = {}
    if panel == "mixed_workloads":
        for category, workloads in category_workloads.items():
            cells[f"4c-{category}"] = {
                "error": _evaluate_cell(workloads, base_config, settings, technique, jobs=jobs)
            }
        for mix in MIXES:
            workloads = generate_mixed_workloads(
                n_cores, mix, settings.workloads_per_category, seed=settings.seed
            )
            cells[mix] = {"error": _evaluate_cell(workloads, base_config, settings, technique, jobs=jobs)}
        return cells

    for category, workloads in category_workloads.items():
        row: dict[str, float] = {}
        if panel == "llc_size":
            for size_kb in LLC_SIZE_KB:
                config = base_config.with_llc(size_bytes=size_kb * KILOBYTE)
                row[f"{size_kb}KB"] = _evaluate_cell(workloads, config, settings, technique, jobs=jobs)
        elif panel == "llc_associativity":
            for associativity in LLC_ASSOCIATIVITY:
                config = base_config.with_llc(associativity=associativity)
                row[str(associativity)] = _evaluate_cell(workloads, config, settings, technique, jobs=jobs)
        elif panel == "dram_channels":
            for channels in DDR2_CHANNELS:
                config = base_config.with_dram(channels=channels)
                row[str(channels)] = _evaluate_cell(workloads, config, settings, technique, jobs=jobs)
        elif panel == "dram_interface":
            for interface in DRAM_INTERFACES:
                timing = DDR2_800 if interface == "DDR2" else DDR4_2666
                config = base_config.with_dram(timing=timing)
                row[interface] = _evaluate_cell(workloads, config, settings, technique, jobs=jobs)
        elif panel == "prb_entries":
            for prb in PRB_SIZES:
                row[str(prb)] = _evaluate_cell(
                    workloads, base_config, settings, technique, prb_entries=prb,
                    jobs=jobs,
                )
        cells[f"4c-{category}"] = row
    return cells


def run_figure7(settings: Figure7Settings | None = None,
                panels: tuple[str, ...] = PANELS,
                jobs: int | None = None) -> Figure7Result:
    """Run the requested sensitivity panels (all of them by default)."""
    settings = settings or Figure7Settings()
    result = Figure7Result()
    for panel in panels:
        result.panels[panel] = run_figure7_panel(panel, settings, jobs=jobs)
    return result


if __name__ == "__main__":
    print(run_figure7().report())
