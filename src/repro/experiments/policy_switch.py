"""Policy-switching traces: estimated IPC under a mid-run policy change.

The paper's runtime story is an estimator feeding a resource manager *while
the manager's policy evolves*.  This engine runs one shared-mode simulation
in which the active LLC partitioning policy rotates through a configured
sequence at a fixed cycle period, and records a time series of

* which policy was active and the way allocation it chose, and
* each core's shared-mode IPC plus the private-mode IPC estimated by the
  configured accounting techniques from the most recent estimate interval

at every repartitioning event.  The result shows how the estimates track the
partitioning decisions across the switch boundaries — the runtime trace a
deployed GDP would expose to an operator dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import AccountingTechnique
from repro.metrics.errors import mean
from repro.partitioning.base import PartitioningPolicy, PolicyContext
from repro.config import CMPConfig
from repro.registry import accounting_techniques, latency_estimators, partitioning_policies
from repro.sim.runner import build_trace, run_shared_mode
from repro.workloads.mixes import Workload

__all__ = [
    "PolicySample",
    "SwitchingPolicy",
    "WorkloadPolicyTrace",
    "evaluate_workload_policy_switch",
    "summarize_estimated_ipc",
    "summarize_switches",
]

DEFAULT_INSTRUCTIONS = 24_000
DEFAULT_INTERVAL = 6_000
DEFAULT_REPARTITION_CYCLES = 40_000.0

# With no explicit switch period, the active policy advances every
# DEFAULT_SWITCH_REPARTITIONS repartitioning events: long enough for a policy
# to act on its own allocations, short enough that small runs still switch.
DEFAULT_SWITCH_REPARTITIONS = 2


@dataclass
class PolicySample:
    """One point of the policy-switching time series (a repartition event)."""

    time: float
    policy: str
    switched: bool
    allocation: dict[int, int] | None
    shared_ipc: dict[int, float] = field(default_factory=dict)
    # technique name -> core -> estimated private-mode IPC
    estimated_ipc: dict[str, dict[int, float]] = field(default_factory=dict)


@dataclass
class WorkloadPolicyTrace:
    """The recorded trace of one workload under a switching policy schedule."""

    workload: Workload
    policy_sequence: tuple[str, ...]
    switch_interval_cycles: float
    samples: list[PolicySample] = field(default_factory=list)

    @property
    def switch_count(self) -> int:
        return sum(1 for sample in self.samples if sample.switched)

    def mean_estimated_ipc(self, technique: str) -> float:
        values = [
            ipc
            for sample in self.samples
            for ipc in sample.estimated_ipc.get(technique, {}).values()
        ]
        return mean(values)

    def mean_shared_ipc(self) -> float:
        values = [ipc for sample in self.samples for ipc in sample.shared_ipc.values()]
        return mean(values)


class SwitchingPolicy(PartitioningPolicy):
    """A meta-policy that rotates through a sequence of real policies.

    At every repartitioning event the active policy is the sequence entry for
    the current switch period (``floor(now / switch_interval_cycles)``, modulo
    the sequence length); the event is delegated to it unchanged, so each
    policy behaves exactly as it would standalone while it is active.  The
    meta-policy also snapshots the sample the trace records.
    """

    name = "switching"

    def __init__(self, policies: dict[str, PartitioningPolicy],
                 techniques: dict[str, AccountingTechnique],
                 switch_interval_cycles: float,
                 repartition_interval_cycles: float | None = None):
        super().__init__(repartition_interval_cycles)
        if not policies:
            raise ValueError("a switching schedule needs at least one policy")
        if switch_interval_cycles <= 0:
            raise ValueError("switch_interval_cycles must be positive")
        self.policies = policies
        self.techniques = techniques
        self.switch_interval_cycles = float(switch_interval_cycles)
        self.needs_events = bool(techniques) or any(
            policy.needs_events for policy in policies.values()
        )
        self.samples: list[PolicySample] = []
        self._sequence = tuple(policies)
        self._previous: str | None = None

    def active_policy(self, now: float) -> str:
        period = int(now // self.switch_interval_cycles)
        return self._sequence[period % len(self._sequence)]

    def allocate(self, context: PolicyContext) -> dict[int, int] | None:
        active = self.active_policy(context.time)
        switched = self._previous is not None and active != self._previous
        self._previous = active
        allocation = self.policies[active].allocate(context)
        sample = PolicySample(
            time=context.time,
            policy=active,
            switched=switched,
            allocation=dict(allocation) if allocation is not None else None,
        )
        for core, interval in context.latest_intervals.items():
            sample.shared_ipc[core] = interval.ipc
            for name, technique in self.techniques.items():
                estimate = technique.estimate(interval)
                sample.estimated_ipc.setdefault(name, {})[core] = estimate.ipc
        self.samples.append(sample)
        return allocation


def evaluate_workload_policy_switch(
    workload: Workload,
    config: CMPConfig,
    policies: tuple[str, ...],
    techniques: tuple[str, ...],
    instructions_per_core: int = DEFAULT_INSTRUCTIONS,
    interval_instructions: int = DEFAULT_INTERVAL,
    repartition_interval_cycles: float = DEFAULT_REPARTITION_CYCLES,
    seed: int = 0,
    switch_interval_cycles: float | None = None,
) -> WorkloadPolicyTrace:
    """Run one workload under a rotating policy schedule and record the trace.

    ``switch_interval_cycles`` defaults to
    ``DEFAULT_SWITCH_REPARTITIONS * repartition_interval_cycles`` so the
    schedule advances every couple of repartitioning events.
    """
    if switch_interval_cycles is None:
        switch_interval_cycles = (
            DEFAULT_SWITCH_REPARTITIONS * repartition_interval_cycles
        )
    traces = {
        core: build_trace(name, instructions_per_core, seed=seed + core)
        for core, name in enumerate(workload.benchmarks)
    }
    latency = latency_estimators.create("DIEF")
    technique_instances = {
        name: accounting_techniques.create(name, config, latency)
        for name in techniques
    }
    policy_instances = {
        name: partitioning_policies.create(name, config, repartition_interval_cycles)
        for name in policies
    }
    switching = SwitchingPolicy(
        policy_instances, technique_instances, switch_interval_cycles,
        repartition_interval_cycles=repartition_interval_cycles,
    )
    run_shared_mode(
        traces, config, target_instructions=instructions_per_core,
        interval_instructions=interval_instructions,
        configure_system=switching.install,
        record_events=switching.needs_events,
    )
    return WorkloadPolicyTrace(
        workload=workload,
        policy_sequence=tuple(policies),
        switch_interval_cycles=switch_interval_cycles,
        samples=switching.samples,
    )


def summarize_estimated_ipc(results: list[WorkloadPolicyTrace], technique: str) -> float:
    """Mean estimated private-mode IPC of one technique across traces."""
    return mean([trace.mean_estimated_ipc(technique) for trace in results])


def summarize_switches(results: list[WorkloadPolicyTrace]) -> float:
    """Mean number of policy switches observed per trace."""
    return mean([float(trace.switch_count) for trace in results])
