"""Run every experiment and print the consolidated report.

Usage::

    python -m repro.experiments.run_all [--scale small|medium|large] [--json PATH]

``small`` matches the benchmark-harness defaults (a couple of minutes),
``medium`` the scale used to populate EXPERIMENTS.md, and ``large`` a
several-times-bigger sweep for overnight runs.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.experiments.common import shutdown_executor
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import Figure6Settings, run_figure6
from repro.experiments.figure7 import Figure7Settings, run_figure7
from repro.experiments.summary import run_headline_summary
from repro.experiments.sweep import SweepSettings, run_accuracy_sweep
from repro.scenarios.builtin import SCALES, resolve_scale
from repro.sim.result_cache import get_result_cache

__all__ = ["SCALES", "run_all", "main"]


def run_all(scale: str = "small", jobs: int | None = None) -> dict:
    """Run figures 3-7 plus the headline summary; returns a JSON-serialisable dict.

    ``jobs`` sets the process-parallel fan-out for the workload sweeps (None
    resolves the ``REPRO_JOBS`` environment variable, then the CPU count).
    An unknown ``scale`` raises :class:`~repro.errors.ConfigurationError`.
    """
    knobs = resolve_scale(scale)
    # Monotonic: a wall-clock step (NTP, DST) must not produce a negative or
    # wildly wrong elapsed time in the summary.
    start = time.monotonic()

    # All figures fan their cells through the shared persistent process pool
    # and the content-addressed result cache; the pool is shut down when the
    # run completes (it would otherwise idle until interpreter exit).
    try:
        sweep = run_accuracy_sweep(SweepSettings(
            core_counts=knobs["core_counts"],
            categories=("H", "M", "L"),
            workloads_per_category=knobs["workloads"],
            instructions_per_core=knobs["instructions"],
            interval_instructions=knobs["interval"],
            collect_components=True,
        ), jobs=jobs)
        figure3 = run_figure3(sweep=sweep)
        figure4 = run_figure4(sweep=sweep)
        figure5 = run_figure5(sweep=sweep)
        figure6 = run_figure6(Figure6Settings(
            core_counts=knobs["core_counts"],
            categories=("H", "M", "L"),
            workloads_per_category=knobs["workloads"],
            instructions_per_core=knobs["case_instructions"],
            interval_instructions=knobs["interval"],
        ), jobs=jobs)
        figure7 = run_figure7(Figure7Settings(
            categories=("H", "M", "L"),
            workloads_per_category=knobs["workloads"],
            instructions_per_core=knobs["instructions"],
            interval_instructions=knobs["interval"],
        ), jobs=jobs)
        headline = run_headline_summary(accuracy_sweep=sweep, figure6=figure6)
    finally:
        shutdown_executor()

    for result in (figure3, figure4, figure5, figure6, figure7, headline):
        print(result.report())
        print()

    cache = get_result_cache()
    if cache.enabled:
        stats = cache.stats
        print(f"result cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.stores} stored ({cache.directory})")

    return {
        "scale": scale,
        "figure3_ipc_rms": figure3.ipc_rms,
        "figure3_stall_rms": figure3.stall_rms,
        "figure6_average_stp": figure6.average_stp,
        "figure7_panels": figure7.panels,
        "headline_mean_ipc_error": headline.mean_ipc_error,
        "headline_mcp_vs_asm": headline.mcp_vs_asm_stp_improvement,
        "headline_mcp_vs_lru": headline.mcp_vs_lru_stp_improvement,
        "elapsed_seconds": time.monotonic() - start,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--json", help="write the consolidated results to this path")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel sweep workers (default: REPRO_JOBS or CPU count)")
    arguments = parser.parse_args(argv)
    summary = run_all(arguments.scale, jobs=arguments.jobs)
    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(summary, handle, indent=2, default=str)
        print(f"results written to {arguments.json}")


if __name__ == "__main__":
    main()
