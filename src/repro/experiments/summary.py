"""Headline numbers of the paper (Sections I and VII).

The paper summarises its evaluation with a handful of headline results:

* GDP's mean IPC estimation error is 3.4% on the 4-core CMP and 9.8% on the
  8-core CMP;
* GDP reduces the private-mode performance RMS error by large factors
  compared with invasive ASM accounting;
* GDP-O reduces the stall-cycle RMS error by roughly 10-14% compared to GDP;
* MCP improves average system throughput by 11.9% (4-core) and 20.8%
  (8-core) compared with ASM-driven cache partitioning.

This module computes the reproduction's equivalents of those aggregates from
the Figure 3 and Figure 6 machinery so they can be compared side by side in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.accuracy import summarize_rms
from repro.experiments.figure6 import Figure6Result, Figure6Settings, run_figure6
from repro.experiments.sweep import AccuracySweep, SweepSettings, run_accuracy_sweep
from repro.experiments.tables import format_table
from repro.metrics.errors import mean

__all__ = ["HeadlineResult", "run_headline_summary"]


@dataclass
class HeadlineResult:
    """The reproduction's headline aggregates."""

    mean_ipc_error: dict[int, dict[str, float]] = field(default_factory=dict)
    gdp_vs_asm_rms_ratio: dict[int, float] = field(default_factory=dict)
    gdpo_vs_gdp_stall_improvement: dict[int, float] = field(default_factory=dict)
    mcp_vs_asm_stp_improvement: dict[int, float] = field(default_factory=dict)
    mcp_vs_lru_stp_improvement: dict[int, float] = field(default_factory=dict)

    def report(self) -> str:
        lines = ["Headline summary (paper Section I / VII equivalents)"]
        rows = []
        for n_cores, by_technique in sorted(self.mean_ipc_error.items()):
            for technique, value in by_technique.items():
                rows.append([f"{n_cores}-core", f"mean {technique} IPC RMS error", value])
        for n_cores, value in sorted(self.gdp_vs_asm_rms_ratio.items()):
            rows.append([f"{n_cores}-core", "ASM / GDP IPC RMS error ratio", value])
        for n_cores, value in sorted(self.gdpo_vs_gdp_stall_improvement.items()):
            rows.append([f"{n_cores}-core", "GDP-O stall RMS reduction vs GDP", value])
        for n_cores, value in sorted(self.mcp_vs_asm_stp_improvement.items()):
            rows.append([f"{n_cores}-core", "MCP STP improvement vs ASM", value])
        for n_cores, value in sorted(self.mcp_vs_lru_stp_improvement.items()):
            rows.append([f"{n_cores}-core", "MCP STP improvement vs LRU", value])
        lines.append(format_table(["CMP", "metric", "value"], rows))
        return "\n".join(lines)


def run_headline_summary(accuracy_sweep: AccuracySweep | None = None,
                         figure6: Figure6Result | None = None,
                         sweep_settings: SweepSettings | None = None,
                         figure6_settings: Figure6Settings | None = None) -> HeadlineResult:
    """Compute the headline aggregates, reusing sweep results when provided."""
    if accuracy_sweep is None:
        # The headline aggregates only read ASM/GDP/GDP-O errors; when this
        # function owns the sweep, skip evaluating the techniques it never
        # reads (the simulations and the reported numbers are identical).
        settings = sweep_settings or SweepSettings(core_counts=(4, 8))
        wanted = tuple(
            name for name in settings.techniques if name in ("ASM", "GDP", "GDP-O")
        )
        if wanted and wanted != settings.techniques:
            settings = replace(settings, techniques=wanted)
        accuracy_sweep = run_accuracy_sweep(settings)
    if figure6 is None:
        figure6 = run_figure6(figure6_settings or Figure6Settings(core_counts=(4, 8)))

    result = HeadlineResult()
    core_counts = sorted({n_cores for n_cores, _category in accuracy_sweep.cells})
    for n_cores in core_counts:
        results = accuracy_sweep.all_results(n_cores)
        result.mean_ipc_error[n_cores] = {
            "GDP": summarize_rms(results, "GDP", metric="ipc"),
            "GDP-O": summarize_rms(results, "GDP-O", metric="ipc"),
        }
        gdp_error = result.mean_ipc_error[n_cores]["GDP"]
        asm_error = summarize_rms(results, "ASM", metric="ipc")
        result.gdp_vs_asm_rms_ratio[n_cores] = asm_error / gdp_error if gdp_error > 0 else 0.0

        gdp_stall = summarize_rms(results, "GDP", metric="stall")
        gdpo_stall = summarize_rms(results, "GDP-O", metric="stall")
        result.gdpo_vs_gdp_stall_improvement[n_cores] = (
            (gdp_stall - gdpo_stall) / gdp_stall if gdp_stall > 0 else 0.0
        )

    figure6_core_counts = sorted({n_cores for n_cores, _category in figure6.per_workload})
    for n_cores in figure6_core_counts:
        result.mcp_vs_asm_stp_improvement[n_cores] = figure6.improvement("MCP", "ASM", n_cores)
        result.mcp_vs_lru_stp_improvement[n_cores] = figure6.improvement("MCP", "LRU", n_cores)
    return result


def category_mean(values: dict[str, float]) -> float:
    """Arithmetic mean over a cell dictionary (helper for reports)."""
    return mean(list(values.values()))


if __name__ == "__main__":
    print(run_headline_summary().report())
