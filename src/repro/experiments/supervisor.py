"""Supervision primitives for fault-tolerant cell execution.

:func:`repro.experiments.common.run_parallel` fans sweep cells over a shared
process pool; this module supplies the pieces that keep that fan-out alive
when cells misbehave:

* :class:`CancelToken` — a thread-safe flag checked at cell boundaries, so a
  running sweep can be cancelled cooperatively (the scenario service's
  ``DELETE`` on a running job sets it).
* :class:`RetryPolicy` — attempt budget plus exponential backoff with
  *deterministic* jitter (derived from the (cell, attempt) pair, never from
  ``random``), so two runs of the same faulted sweep behave identically.
* :func:`is_transient` — the failure taxonomy: subclasses of
  :class:`~repro.errors.TransientFaultError` (injected faults, cell
  timeouts) and broken-pool failures retry; anything else an evaluator
  raises is a genuine bug in the cell and surfaces immediately.
* :class:`SupervisorStats` — process-wide counters (retries, timeouts, pool
  rebuilds, cancelled sweeps) surfaced by the service's ``GET /stats``.

Knobs
-----
``REPRO_CELL_RETRIES``
    Maximum *additional* attempts per cell after the first (default 3;
    0 disables retry entirely).
``REPRO_CELL_TIMEOUT``
    Per-cell wall-clock budget in seconds, measured from the moment the cell
    actually starts running in a worker (default: no timeout).  On expiry
    the worker is presumed hung: the pool is torn down and every unanswered
    cell is resubmitted, with the timed-out cell charged one attempt.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError, JobCancelledError, TransientFaultError

__all__ = [
    "CancelToken",
    "DEFAULT_CELL_RETRIES",
    "RetryPolicy",
    "SupervisorStats",
    "cell_timeout_from_env",
    "is_transient",
    "reset_supervisor_stats",
    "retry_policy_from_env",
    "supervisor_stats",
]

DEFAULT_CELL_RETRIES = 3

# Backoff shape: base * 2^(attempt-1), capped, plus up to `jitter` fraction.
DEFAULT_BACKOFF_BASE_SECONDS = 0.05
DEFAULT_BACKOFF_CAP_SECONDS = 2.0
DEFAULT_JITTER_FRACTION = 0.25


class CancelToken:
    """A cooperative cancellation flag shared between threads.

    The service's dispatcher hands one to ``run_parallel`` via
    ``run_scenario``; the HTTP ``DELETE`` handler sets it.  The sweep checks
    it at cell boundaries (never mid-simulation) and raises
    :class:`~repro.errors.JobCancelledError`, so cancellation is prompt —
    within one cell — but never leaves a half-written cache entry behind.
    """

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise JobCancelledError("sweep cancelled at cell boundary")


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` should be retried by the cell supervisor.

    Transient: the explicit :class:`TransientFaultError` taxonomy (injected
    faults, cell timeouts) and process-pool breakage
    (:class:`concurrent.futures.process.BrokenProcessPool` — a dead worker
    says nothing about the cell it happened to be running).  Everything else
    is the evaluator's own fault and must surface unretried — retrying a
    deterministic ``ZeroDivisionError`` three times just triples the time to
    the same traceback.
    """
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, (TransientFaultError, BrokenProcessPool))


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and deterministic backoff for one sweep's cells."""

    max_retries: int = DEFAULT_CELL_RETRIES
    backoff_base_seconds: float = DEFAULT_BACKOFF_BASE_SECONDS
    backoff_cap_seconds: float = DEFAULT_BACKOFF_CAP_SECONDS
    jitter_fraction: float = DEFAULT_JITTER_FRACTION

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def allows_retry(self, attempt: int) -> bool:
        """Whether a failure on ``attempt`` (0-based) leaves budget for another."""
        return attempt + 1 < self.max_attempts

    def backoff_seconds(self, cell: int, attempt: int) -> float:
        """Delay before re-running ``cell`` after a failure on ``attempt``.

        Exponential in the attempt number, capped, with jitter derived from
        a hash of (cell, attempt) rather than a PRNG: concurrent retries of
        different cells still spread out, while the schedule of any given
        faulted run is exactly reproducible.
        """
        if attempt < 0:
            return 0.0
        base = min(
            self.backoff_base_seconds * (2.0 ** attempt),
            self.backoff_cap_seconds,
        )
        if self.jitter_fraction <= 0:
            return base
        material = f"repro-backoff:{cell}:{attempt}".encode("ascii")
        bucket = int.from_bytes(hashlib.sha256(material).digest()[:4], "big")
        fraction = bucket / 0xFFFFFFFF
        return base * (1.0 + self.jitter_fraction * fraction)


def retry_policy_from_env() -> RetryPolicy:
    """The retry policy selected by ``REPRO_CELL_RETRIES`` (default 3)."""
    env = os.environ.get("REPRO_CELL_RETRIES")
    if env is None or env.strip() == "":
        return RetryPolicy()
    try:
        retries = int(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_CELL_RETRIES must be a non-negative integer, got {env!r}"
        ) from None
    if retries < 0:
        raise ConfigurationError(
            f"REPRO_CELL_RETRIES must be a non-negative integer, got {env!r}"
        )
    return RetryPolicy(max_retries=retries)


def cell_timeout_from_env() -> float | None:
    """The per-cell wall-clock budget from ``REPRO_CELL_TIMEOUT`` (seconds).

    Unset/empty means no timeout — the historical behaviour, and the right
    default for interactive runs where a long cell is usually just a big
    simulation, not a hang.
    """
    env = os.environ.get("REPRO_CELL_TIMEOUT")
    if env is None or env.strip() == "":
        return None
    try:
        seconds = float(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_CELL_TIMEOUT must be a positive number of seconds, got {env!r}"
        ) from None
    if seconds <= 0:
        raise ConfigurationError(
            f"REPRO_CELL_TIMEOUT must be a positive number of seconds, got {env!r}"
        )
    return seconds


# ------------------------------------------------------------------- counters


@dataclass
class SupervisorStats:
    """Process-wide counters of supervised-execution events.

    ``retries``
        Cell attempts re-run after a transient failure.
    ``timeouts``
        Cells whose wall-clock budget expired (each also counts a retry when
        budget remained).
    ``pool_rebuilds``
        Process pools torn down and rebuilt after breakage or a timeout kill.
    ``permanent_failures``
        Evaluator exceptions classified permanent and surfaced to the caller.
    ``cancelled``
        Sweeps stopped at a cell boundary by a cancel token.
    """

    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    permanent_failures: int = 0
    cancelled: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "permanent_failures": self.permanent_failures,
            "cancelled": self.cancelled,
        }


_stats = SupervisorStats()
_stats_lock = threading.Lock()


def supervisor_stats() -> SupervisorStats:
    """The process-wide supervisor counters (shared, mutated under a lock)."""
    return _stats


def reset_supervisor_stats() -> None:
    """Zero the counters (tests)."""
    with _stats_lock:
        _stats.retries = 0
        _stats.timeouts = 0
        _stats.pool_rebuilds = 0
        _stats.permanent_failures = 0
        _stats.cancelled = 0


def record(**deltas: int) -> None:
    """Bump supervisor counters atomically: ``record(retries=1, timeouts=1)``."""
    with _stats_lock:
        for name, delta in deltas.items():
            setattr(_stats, name, getattr(_stats, name) + delta)
