"""Workload sweeps shared by the accuracy figures (Figures 3, 4 and 5).

The paper evaluates 30 H-, 15 M- and 5 L-workloads per core count; this
reproduction exposes the workload count, instruction count and interval length
as parameters so the same sweep can run laptop-sized (the benchmark defaults)
or larger.

Since the scenario-engine refactor this module is a thin adapter:
:func:`accuracy_sweep_spec` translates a :class:`SweepSettings` into a
declarative :class:`~repro.scenarios.spec.ScenarioSpec` and
:func:`run_accuracy_sweep` executes it through the generic
:func:`~repro.scenarios.runner.run_scenario` runner — same cell tuples, same
ordering, same process-pool fan-out and result-cache memoisation, so the
results are bit-identical to the pre-engine harness.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.experiments.accuracy import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_INTERVAL,
    TECHNIQUE_NAMES,
    WorkloadAccuracy,
)
from repro.experiments.common import default_experiment_config, run_parallel

__all__ = ["SweepSettings", "AccuracySweep", "accuracy_sweep_spec",
           "run_accuracy_sweep", "run_workloads_parallel"]

DEFAULT_CATEGORIES = ("H", "M", "L")


@dataclass(frozen=True)
class SweepSettings:
    """Size of an accuracy sweep.

    ``techniques`` restricts which accounting techniques are evaluated per
    interval; consumers that only read a subset (e.g. the headline summary)
    use it to skip estimates nobody reads.  The simulated runs themselves are
    unaffected, so the errors of the techniques that are evaluated are
    identical regardless of the restriction.
    """

    core_counts: tuple[int, ...] = (2, 4, 8)
    categories: tuple[str, ...] = DEFAULT_CATEGORIES
    workloads_per_category: int = 2
    instructions_per_core: int = DEFAULT_INSTRUCTIONS
    interval_instructions: int = DEFAULT_INTERVAL
    seed: int = 0
    collect_components: bool = False
    techniques: tuple[str, ...] = TECHNIQUE_NAMES


@dataclass
class AccuracySweep:
    """All workload accuracy results of one sweep, keyed by (core count, category)."""

    settings: SweepSettings
    cells: dict[tuple[int, str], list[WorkloadAccuracy]] = field(default_factory=dict)

    def results(self, n_cores: int, category: str) -> list[WorkloadAccuracy]:
        return self.cells.get((n_cores, category), [])

    def all_results(self, n_cores: int | None = None) -> list[WorkloadAccuracy]:
        selected = []
        for (cores, _category), results in self.cells.items():
            if n_cores is None or cores == n_cores:
                selected.extend(results)
        return selected


def run_workloads_parallel(function: Callable, argument_tuples: Sequence[tuple],
                           jobs: int | None = None,
                           cost_key: Callable[[tuple], float] | None = None,
                           cache: bool = True) -> list:
    """Evaluate independent (workload, config) cells, in parallel when possible.

    Thin facade over :func:`repro.experiments.common.run_parallel` shared by
    all figure experiments: ``function`` must be a picklable pure function of
    its arguments; results come back in submission order, so ``jobs=1`` (the
    serial fallback) and any ``jobs>1`` produce identical outputs.  Cells are
    memoised in the content-addressed result cache unless ``cache=False`` or
    ``REPRO_CACHE=0``; ``cost_key`` enables largest-cells-first scheduling.
    """
    return run_parallel(function, argument_tuples, jobs=jobs, cost_key=cost_key,
                        cache=cache)


def accuracy_sweep_spec(settings: SweepSettings | None = None,
                        name: str = "accuracy-sweep"):
    """The :class:`~repro.scenarios.spec.ScenarioSpec` equivalent of ``settings``."""
    # Imported lazily: repro.scenarios sits architecturally above the
    # experiments package (its runner consumes the evaluators defined here),
    # so a module-level import would be circular.
    from repro.scenarios.spec import MachineSpec, ScenarioSpec, WorkloadMixSpec

    settings = settings or SweepSettings()
    return ScenarioSpec(
        name=name,
        kind="accuracy",
        machine=MachineSpec(core_counts=tuple(settings.core_counts)),
        workloads=WorkloadMixSpec(
            generator="auto",
            groups=tuple(settings.categories),
            per_group=settings.workloads_per_category,
            seed=settings.seed,
        ),
        techniques=tuple(settings.techniques),
        instructions_per_core=settings.instructions_per_core,
        interval_instructions=settings.interval_instructions,
        collect_components=settings.collect_components,
        description="Accuracy sweep shared by Figures 3, 4 and 5",
    )


def run_accuracy_sweep(settings: SweepSettings | None = None,
                       config_factory=default_experiment_config,
                       jobs: int | None = None) -> AccuracySweep:
    """Run the accuracy evaluation over every (core count, category) cell."""
    from repro.scenarios.runner import run_scenario

    settings = settings or SweepSettings()
    scenario = run_scenario(accuracy_sweep_spec(settings), jobs=jobs,
                            config_factory=config_factory)
    sweep = AccuracySweep(settings=settings)
    for (n_cores, group, _axis_label), results in scenario.cells.items():
        sweep.cells[(n_cores, group)] = list(results)
    return sweep
