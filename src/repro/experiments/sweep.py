"""Workload sweeps shared by the accuracy figures (Figures 3, 4 and 5).

The paper evaluates 30 H-, 15 M- and 5 L-workloads per core count; this
reproduction exposes the workload count, instruction count and interval length
as parameters so the same sweep can run laptop-sized (the benchmark defaults)
or larger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.accuracy import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_INTERVAL,
    WorkloadAccuracy,
    evaluate_workload_accuracy,
)
from repro.experiments.common import default_experiment_config
from repro.config import CMPConfig
from repro.workloads.mixes import generate_category_workloads

__all__ = ["SweepSettings", "AccuracySweep", "run_accuracy_sweep"]

DEFAULT_CATEGORIES = ("H", "M", "L")


@dataclass(frozen=True)
class SweepSettings:
    """Size of an accuracy sweep."""

    core_counts: tuple[int, ...] = (2, 4, 8)
    categories: tuple[str, ...] = DEFAULT_CATEGORIES
    workloads_per_category: int = 2
    instructions_per_core: int = DEFAULT_INSTRUCTIONS
    interval_instructions: int = DEFAULT_INTERVAL
    seed: int = 0
    collect_components: bool = False


@dataclass
class AccuracySweep:
    """All workload accuracy results of one sweep, keyed by (core count, category)."""

    settings: SweepSettings
    cells: dict[tuple[int, str], list[WorkloadAccuracy]] = field(default_factory=dict)

    def results(self, n_cores: int, category: str) -> list[WorkloadAccuracy]:
        return self.cells.get((n_cores, category), [])

    def all_results(self, n_cores: int | None = None) -> list[WorkloadAccuracy]:
        selected = []
        for (cores, _category), results in self.cells.items():
            if n_cores is None or cores == n_cores:
                selected.extend(results)
        return selected


def run_accuracy_sweep(settings: SweepSettings | None = None,
                       config_factory=default_experiment_config) -> AccuracySweep:
    """Run the accuracy evaluation over every (core count, category) cell."""
    settings = settings or SweepSettings()
    sweep = AccuracySweep(settings=settings)
    for n_cores in settings.core_counts:
        config: CMPConfig = config_factory(n_cores)
        for category in settings.categories:
            workloads = generate_category_workloads(
                n_cores, category, settings.workloads_per_category, seed=settings.seed
            )
            results = [
                evaluate_workload_accuracy(
                    workload,
                    config,
                    instructions_per_core=settings.instructions_per_core,
                    interval_instructions=settings.interval_instructions,
                    seed=settings.seed,
                    collect_components=settings.collect_components,
                )
                for workload in workloads
            ]
            sweep.cells[(n_cores, category)] = results
    return sweep
