"""Workload sweeps shared by the accuracy figures (Figures 3, 4 and 5).

The paper evaluates 30 H-, 15 M- and 5 L-workloads per core count; this
reproduction exposes the workload count, instruction count and interval length
as parameters so the same sweep can run laptop-sized (the benchmark defaults)
or larger.

Every (workload, config) cell is an independent simulation, so the sweep
flattens all cells into one task list and hands it to
:func:`run_workloads_parallel`, which fans the cells across worker processes
(``REPRO_JOBS`` / the ``jobs`` argument) with a serial fallback that produces
bit-identical results.  Workload generation and per-cell seeds are derived
from stable hashes, so every cell is deterministic regardless of which
process evaluates it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.experiments.accuracy import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_INTERVAL,
    TECHNIQUE_NAMES,
    WorkloadAccuracy,
    evaluate_workload_accuracy,
)
from repro.experiments.common import default_experiment_config, run_parallel
from repro.config import CMPConfig
from repro.workloads.mixes import generate_category_workloads

__all__ = ["SweepSettings", "AccuracySweep", "run_accuracy_sweep", "run_workloads_parallel"]

DEFAULT_CATEGORIES = ("H", "M", "L")


@dataclass(frozen=True)
class SweepSettings:
    """Size of an accuracy sweep.

    ``techniques`` restricts which accounting techniques are evaluated per
    interval; consumers that only read a subset (e.g. the headline summary)
    use it to skip estimates nobody reads.  The simulated runs themselves are
    unaffected, so the errors of the techniques that are evaluated are
    identical regardless of the restriction.
    """

    core_counts: tuple[int, ...] = (2, 4, 8)
    categories: tuple[str, ...] = DEFAULT_CATEGORIES
    workloads_per_category: int = 2
    instructions_per_core: int = DEFAULT_INSTRUCTIONS
    interval_instructions: int = DEFAULT_INTERVAL
    seed: int = 0
    collect_components: bool = False
    techniques: tuple[str, ...] = TECHNIQUE_NAMES


@dataclass
class AccuracySweep:
    """All workload accuracy results of one sweep, keyed by (core count, category)."""

    settings: SweepSettings
    cells: dict[tuple[int, str], list[WorkloadAccuracy]] = field(default_factory=dict)

    def results(self, n_cores: int, category: str) -> list[WorkloadAccuracy]:
        return self.cells.get((n_cores, category), [])

    def all_results(self, n_cores: int | None = None) -> list[WorkloadAccuracy]:
        selected = []
        for (cores, _category), results in self.cells.items():
            if n_cores is None or cores == n_cores:
                selected.extend(results)
        return selected


def run_workloads_parallel(function: Callable, argument_tuples: Sequence[tuple],
                           jobs: int | None = None,
                           cost_key: Callable[[tuple], float] | None = None,
                           cache: bool = True) -> list:
    """Evaluate independent (workload, config) cells, in parallel when possible.

    Thin facade over :func:`repro.experiments.common.run_parallel` shared by
    all figure experiments: ``function`` must be a picklable pure function of
    its arguments; results come back in submission order, so ``jobs=1`` (the
    serial fallback) and any ``jobs>1`` produce identical outputs.  Cells are
    memoised in the content-addressed result cache unless ``cache=False`` or
    ``REPRO_CACHE=0``; ``cost_key`` enables largest-cells-first scheduling.
    """
    return run_parallel(function, argument_tuples, jobs=jobs, cost_key=cost_key,
                        cache=cache)


def _accuracy_cell_cost(args: tuple) -> float:
    """Relative cost of one accuracy cell: cores x instructions dominates."""
    workload, _config, instructions_per_core = args[0], args[1], args[2]
    return float(len(workload.benchmarks) * instructions_per_core)


def run_accuracy_sweep(settings: SweepSettings | None = None,
                       config_factory=default_experiment_config,
                       jobs: int | None = None) -> AccuracySweep:
    """Run the accuracy evaluation over every (core count, category) cell."""
    settings = settings or SweepSettings()
    sweep = AccuracySweep(settings=settings)
    cell_keys: list[tuple[int, str]] = []
    tasks: list[tuple] = []
    for n_cores in settings.core_counts:
        config: CMPConfig = config_factory(n_cores)
        for category in settings.categories:
            workloads = generate_category_workloads(
                n_cores, category, settings.workloads_per_category, seed=settings.seed
            )
            for workload in workloads:
                cell_keys.append((n_cores, category))
                tasks.append((
                    workload,
                    config,
                    settings.instructions_per_core,
                    settings.interval_instructions,
                    settings.seed,
                    settings.techniques,
                    settings.collect_components,
                ))
    results = run_workloads_parallel(evaluate_workload_accuracy, tasks, jobs=jobs,
                                     cost_key=_accuracy_cell_cost)
    for key, result in zip(cell_keys, results):
        sweep.cells.setdefault(key, []).append(result)
    return sweep
