"""Small helpers for printing experiment results as plain-text tables."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_cell_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows = [[_render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = [
        "  ".join(header.ljust(widths[column]) for column, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(widths[column]) for column, value in enumerate(row)))
    return "\n".join(lines)


def format_cell_table(cells: Mapping[str, Mapping[str, float]], value_format: str = "{:.4g}") -> str:
    """Render a {row_label: {column_label: value}} mapping as a table."""
    columns: list[str] = []
    for row in cells.values():
        for column in row:
            if column not in columns:
                columns.append(column)
    headers = ["cell", *columns]
    rows = []
    for row_label, row in cells.items():
        rows.append([row_label, *[value_format.format(row.get(column, float("nan"))) for column in columns]])
    return format_table(headers, rows)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
