"""Deterministic fault injection for the supervised execution layer.

A :class:`FaultPlan` is a seeded, JSON-round-trippable description of
failures to inject at chosen sweep-cell indices — the chaos tests (and the CI
chaos smoke job) drive the retry/timeout/journal machinery with *scripted*
faults instead of hoping a race shows up.  Because every fault names the cell
index and the attempt window it fires in, a faulted run is exactly
reproducible: same plan, same failures, same recovery path.

Fault kinds
-----------
``worker_crash``
    The worker process evaluating the cell hard-exits (``os._exit``), which
    breaks the whole process pool — the supervisor must rebuild it and
    resubmit every unanswered cell.  Degrades to a transient error when the
    cell is evaluated in-process (serial fallback), where killing the worker
    would kill the caller.
``transient_error``
    The evaluator raises :class:`~repro.errors.InjectedFaultError`, the
    canonical retryable failure.
``slow_cell``
    The evaluator sleeps ``delay_seconds`` before computing, so a per-cell
    wall-clock timeout can be driven deterministically.
``corrupt_cache_entry``
    After the cell's result is persisted, its content-addressed cache shard
    is overwritten with garbage — exercising the quarantine path on the next
    read.  Applied by the supervisor in the parent process.

Activation
----------
Plans reach the supervisor two ways: the ``fault_plan`` field of a
:class:`~repro.scenarios.spec.ScenarioSpec` (travels with the spec through
the service), or the ``REPRO_FAULT_PLAN`` environment variable holding either
inline JSON or a path to a JSON file (``@path`` also accepted).  A spec-level
plan wins over the environment.  Cell indices refer to positions in the
sweep's expanded task order; a cell already answered by the cache never
executes, so faults aimed at it simply never fire.

Faults never change *results*: retries converge on the same payload a
fault-free run produces, cache digests ignore the plan entirely, and
injection happens outside the evaluator's arguments.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, InjectedFaultError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "plan_from_env",
]

FAULT_KINDS = (
    "worker_crash",
    "transient_error",
    "slow_cell",
    "corrupt_cache_entry",
)

# Exit status used by injected worker crashes; distinctive enough to spot in
# logs, irrelevant to the parent (a dead worker is a BrokenProcessPool either
# way).
WORKER_CRASH_EXIT_CODE = 70


def _is_positive_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value > 0


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: ``kind`` fired at ``cell`` for the first
    ``attempts`` attempts (attempt numbers 0..attempts-1)."""

    kind: str
    cell: int
    attempts: int = 1
    delay_seconds: float = 0.0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind '{self.kind}' "
                f"(expected one of: {', '.join(FAULT_KINDS)})"
            )
        if not isinstance(self.cell, int) or isinstance(self.cell, bool) or self.cell < 0:
            raise ConfigurationError(
                f"fault cell must be a non-negative integer, got {self.cell!r}"
            )
        if not _is_positive_int(self.attempts):
            raise ConfigurationError(
                f"fault attempts must be a positive integer, got {self.attempts!r}"
            )
        if (not isinstance(self.delay_seconds, (int, float))
                or isinstance(self.delay_seconds, bool) or self.delay_seconds < 0):
            raise ConfigurationError(
                f"fault delay_seconds must be a non-negative number, "
                f"got {self.delay_seconds!r}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cell": self.cell,
            "attempts": self.attempts,
            "delay_seconds": self.delay_seconds,
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"each fault must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"kind", "cell", "attempts", "delay_seconds"})
        if unknown:
            raise ConfigurationError(
                f"unknown fault field(s): {', '.join(str(k) for k in unknown)}"
            )
        if "kind" not in data or "cell" not in data:
            raise ConfigurationError("each fault needs 'kind' and 'cell'")
        spec = FaultSpec(
            kind=data["kind"],
            cell=data["cell"],
            attempts=data.get("attempts", 1),
            delay_seconds=data.get("delay_seconds", 0.0),
        )
        spec.validate()
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of scripted faults, addressable by (cell, attempt)."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def validate(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError("fault plan seed must be an integer")
        for fault in self.faults:
            fault.validate()

    def fault_for(self, cell: int, attempt: int,
                  kinds: tuple[str, ...] | None = None) -> FaultSpec | None:
        """The first fault scripted for this (cell, attempt), if any."""
        for fault in self.faults:
            if fault.cell != cell or attempt >= fault.attempts:
                continue
            if kinds is not None and fault.kind not in kinds:
                continue
            return fault
        return None

    # ------------------------------------------------------------- injection

    def inject(self, cell: int, attempt: int, in_worker: bool) -> None:
        """Fire any evaluator-side fault scripted for this cell attempt.

        Called immediately before the cell's evaluator runs — inside the
        worker process on the parallel path (``in_worker=True``), on the
        calling thread for the serial fallback.  ``worker_crash`` hard-exits
        only when genuinely inside a worker; in-process it degrades to the
        same retryable :class:`InjectedFaultError` a ``transient_error``
        raises, so serial chaos runs still exercise the retry path instead of
        killing the test process.
        """
        fault = self.fault_for(
            cell, attempt, kinds=("worker_crash", "transient_error", "slow_cell")
        )
        if fault is None:
            return
        if fault.kind == "slow_cell":
            time.sleep(fault.delay_seconds)
            return
        if fault.kind == "worker_crash" and in_worker:
            os._exit(WORKER_CRASH_EXIT_CODE)
        raise InjectedFaultError(
            f"injected {fault.kind} at cell {cell} attempt {attempt} "
            f"(plan seed {self.seed})"
        )

    def for_cells(self, indices) -> "FaultPlan":
        """The plan restricted to ``indices``, renumbered to subset positions.

        A worker holding a *lease* over a slice of a sweep evaluates only the
        leased cells, locally numbered 0..n-1; plan indices, however, address
        positions in the full :func:`~repro.scenarios.runner.expand_cells`
        order.  This remaps each retained fault's ``cell`` to its position in
        ``indices`` (faults aimed outside the slice are dropped — another
        lease will fire them), so a plan split across workers injects exactly
        the faults a single-node run would.
        """
        position = {int(index): local for local, index in enumerate(indices)}
        remapped = tuple(
            FaultSpec(kind=fault.kind, cell=position[fault.cell],
                      attempts=fault.attempts,
                      delay_seconds=fault.delay_seconds)
            for fault in self.faults
            if fault.cell in position
        )
        return FaultPlan(faults=remapped, seed=self.seed)

    def corrupt_cache_entry(self, cache, digest: str, cell: int) -> bool:
        """Overwrite the cell's just-persisted cache shard with garbage.

        Parent-side injection for the ``corrupt_cache_entry`` kind; returns
        True when a corruption was applied.  The garbage is derived from the
        plan seed so two runs of the same plan corrupt identically.
        """
        fault = self.fault_for(cell, 0, kinds=("corrupt_cache_entry",))
        if fault is None:
            return False
        path = cache.entry_path(digest)
        try:
            path.write_bytes(b"\x80repro-injected-corruption:"
                             + str(self.seed).encode("ascii"))
        except OSError:
            return False
        return True

    # ------------------------------------------------------------ round-trip

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a fault plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "faults"})
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan field(s): {', '.join(str(k) for k in unknown)}"
            )
        faults = data.get("faults", ())
        if not isinstance(faults, (list, tuple)):
            raise ConfigurationError("fault plan 'faults' must be a JSON array")
        plan = FaultPlan(
            faults=tuple(FaultSpec.from_dict(fault) for fault in faults),
            seed=data.get("seed", 0),
        )
        plan.validate()
        return plan

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {error}"
            ) from None
        return FaultPlan.from_dict(data)


# ------------------------------------------------------------- environment

# (raw env value, parsed plan) — plans are tiny, but run_parallel consults the
# environment once per sweep and tests flip the knob repeatedly.
_cached_env_plan: tuple[str, FaultPlan | None] | None = None


def plan_from_env() -> FaultPlan | None:
    """The plan selected by ``REPRO_FAULT_PLAN`` (inline JSON or a file path).

    Unset/empty means no injection (the production default).  A value
    starting with ``{`` is parsed inline; anything else — optionally prefixed
    with ``@`` — is read as a path to a JSON plan file.
    """
    global _cached_env_plan
    raw = os.environ.get("REPRO_FAULT_PLAN", "").strip()
    if _cached_env_plan is not None and _cached_env_plan[0] == raw:
        return _cached_env_plan[1]
    if not raw:
        plan = None
    elif raw.startswith("{"):
        plan = FaultPlan.from_json(raw)
    else:
        path = raw[1:] if raw.startswith("@") else raw
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ConfigurationError(
                f"cannot read REPRO_FAULT_PLAN file {path}: {error}"
            ) from None
        plan = FaultPlan.from_json(text)
    _cached_env_plan = (raw, plan)
    return plan
