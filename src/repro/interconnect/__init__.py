"""Ring interconnect between private caches and the shared LLC."""

from repro.interconnect.ring import RingInterconnect, RingTransferResult

__all__ = ["RingInterconnect", "RingTransferResult"]
