"""Ring interconnect between the private per-core memory systems and the LLC banks.

The ring adds a hop-proportional transfer latency plus queueing when the link
is occupied.  As with the DRAM controller, a per-core shadow copy of the link
availability (seeing only that core's own transfers) is maintained so the
waiting caused by other cores' traffic can be attributed as interference,
which DIEF's interconnect counters rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import RingConfig

__all__ = ["RingTransferResult", "RingInterconnect"]


@dataclass(frozen=True)
class RingTransferResult:
    """Timing of one traversal of the ring (request or response direction)."""

    arrival: float
    start: float
    completion: float
    hops: int
    queue_wait: float
    interference_wait: float

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


@dataclass
class _RingLink:
    next_free: float = 0.0
    shadow_next_free: dict[int, float] = field(default_factory=dict)


class RingInterconnect:
    """A simple ring: one shared request path and one shared response path.

    Multiple request rings (Table I lists 2 for the 8-core CMP) are modelled
    as additional parallel links; a transfer uses the link that frees first.
    """

    def __init__(self, config: RingConfig, n_cores: int, n_banks: int):
        config.validate()
        self.config = config
        self.n_cores = n_cores
        self.n_banks = n_banks
        self._request_links = [_RingLink() for _ in range(config.request_rings)]
        self._response_links = [_RingLink() for _ in range(config.response_rings)]
        self.transfers = 0
        self.per_core_interference_cycles: dict[int, float] = {}

    def hop_count(self, core: int, bank: int) -> int:
        """Hops between a core and an LLC bank on the ring.

        Cores and banks are interleaved around the ring; the distance is the
        shortest way around.
        """
        stations = self.n_cores + self.n_banks
        core_station = core
        bank_station = self.n_cores + bank
        clockwise = (bank_station - core_station) % stations
        counter = (core_station - bank_station) % stations
        return max(1, min(clockwise, counter))

    def transfer(self, core: int, bank: int, arrival: float, response: bool = False) -> RingTransferResult:
        """Traverse the ring and return the transfer timing."""
        links = self._response_links if response else self._request_links
        link = min(links, key=lambda candidate: candidate.next_free)
        hops = self.hop_count(core, bank)
        latency = hops * self.config.hop_latency
        occupancy = self.config.link_occupancy * self.config.hop_latency

        start = max(arrival, link.next_free)
        queue_wait = start - arrival
        link.next_free = start + occupancy

        # Shadow (core-alone) emulation of the same link.
        shadow_free = link.shadow_next_free.get(core, 0.0)
        shadow_start = max(arrival, shadow_free)
        link.shadow_next_free[core] = shadow_start + occupancy
        interference_wait = max(0.0, start - shadow_start)

        completion = start + latency
        self.transfers += 1
        self.per_core_interference_cycles[core] = (
            self.per_core_interference_cycles.get(core, 0.0) + interference_wait
        )
        return RingTransferResult(
            arrival=arrival,
            start=start,
            completion=completion,
            hops=hops,
            queue_wait=queue_wait,
            interference_wait=interference_wait,
        )

    def reset_statistics(self) -> None:
        self.transfers = 0
        self.per_core_interference_cycles.clear()
