"""Ring interconnect between the private per-core memory systems and the LLC banks.

The ring adds a hop-proportional transfer latency plus queueing when the link
is occupied.  As with the DRAM controller, a per-core shadow copy of the link
availability (seeing only that core's own transfers) is maintained so the
waiting caused by other cores' traffic can be attributed as interference,
which DIEF's interconnect counters rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import RingConfig

__all__ = ["RingTransferResult", "RingInterconnect"]


@dataclass(frozen=True)
class RingTransferResult:
    """Timing of one traversal of the ring (request or response direction)."""

    arrival: float
    start: float
    completion: float
    hops: int
    queue_wait: float
    interference_wait: float

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


@dataclass
class _RingLink:
    """One physical link; ``shadow_next_free`` is indexed by core id."""

    next_free: float = 0.0
    shadow_next_free: list[float] = field(default_factory=list)


def _link_next_free(link: _RingLink) -> float:
    return link.next_free


class RingInterconnect:
    """A simple ring: one shared request path and one shared response path.

    Multiple request rings (Table I lists 2 for the 8-core CMP) are modelled
    as additional parallel links; a transfer uses the link that frees first.
    """

    def __init__(self, config: RingConfig, n_cores: int, n_banks: int):
        config.validate()
        self.config = config
        self.n_cores = n_cores
        self.n_banks = n_banks
        self._request_links = [
            _RingLink(shadow_next_free=[0.0] * n_cores) for _ in range(config.request_rings)
        ]
        self._response_links = [
            _RingLink(shadow_next_free=[0.0] * n_cores) for _ in range(config.response_rings)
        ]
        self.transfers = 0
        # Indexed by core id (cores are dense small integers).
        self.per_core_interference_cycles: list[float] = [0.0] * n_cores
        # Hop counts and link timing are pure functions of the (static)
        # topology; precompute them so the per-transfer path is arithmetic
        # on locals only.
        self._hop_table = [
            [self.hop_count(core, bank) for bank in range(n_banks)]
            for core in range(n_cores)
        ]
        self._latency_table = [
            [hops * config.hop_latency for hops in row] for row in self._hop_table
        ]
        self._occupancy = config.link_occupancy * config.hop_latency

    def hop_count(self, core: int, bank: int) -> int:
        """Hops between a core and an LLC bank on the ring.

        Cores and banks are interleaved around the ring; the distance is the
        shortest way around.
        """
        stations = self.n_cores + self.n_banks
        core_station = core
        bank_station = self.n_cores + bank
        clockwise = (bank_station - core_station) % stations
        counter = (core_station - bank_station) % stations
        return max(1, min(clockwise, counter))

    def transfer(self, core: int, bank: int, arrival: float, response: bool = False) -> RingTransferResult:
        """Traverse the ring and return the full transfer timing."""
        start, completion, interference_wait = self._transfer(core, bank, arrival, response)
        return RingTransferResult(
            arrival=arrival,
            start=start,
            completion=completion,
            hops=self._hop_table[core][bank],
            queue_wait=start - arrival,
            interference_wait=interference_wait,
        )

    def transfer_fast(self, core: int, bank: int, arrival: float,
                      response: bool = False) -> tuple[float, float]:
        """Hot-path traversal: returns ``(completion, interference_wait)``."""
        _start, completion, interference_wait = self._transfer(core, bank, arrival, response)
        return completion, interference_wait

    def _transfer(self, core: int, bank: int, arrival: float, response: bool):
        links = self._response_links if response else self._request_links
        if len(links) == 1:
            link = links[0]
        else:
            link = min(links, key=_link_next_free)
        occupancy = self._occupancy

        next_free = link.next_free
        start = arrival if arrival > next_free else next_free
        link.next_free = start + occupancy

        # Shadow (core-alone) emulation of the same link.
        shadow = link.shadow_next_free
        shadow_free = shadow[core]
        shadow_start = arrival if arrival > shadow_free else shadow_free
        shadow[core] = shadow_start + occupancy
        interference_wait = start - shadow_start
        if interference_wait < 0.0:
            interference_wait = 0.0

        self.transfers += 1
        self.per_core_interference_cycles[core] += interference_wait
        return start, start + self._latency_table[core][bank], interference_wait

    def reset_statistics(self) -> None:
        self.transfers = 0
        self.per_core_interference_cycles = [0.0] * self.n_cores
