"""Private-mode memory latency estimation (DIEF)."""

from repro.latency.dief import DIEFLatencyEstimator, LatencyEstimate

__all__ = ["DIEFLatencyEstimator", "LatencyEstimate"]
