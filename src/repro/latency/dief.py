"""DIEF-style private-mode memory latency estimation.

The Dynamic Interference Estimation Framework (DIEF) measures the shared-mode
memory latency of each core and estimates the latency caused by inter-process
interference using counters in the interconnect, the LLC (via sampled ATDs,
which flag interference-induced misses) and the memory controller (which
emulates the private-mode service order).  The private-mode latency estimate
is then (Equation 3 of the paper):

    lambda_p = L_p - I_p

In this reproduction the memory hierarchy already maintains exactly those
counters per core and per estimate interval (see
:class:`repro.mem.hierarchy.CoreMemoryCounters` and the shadow-state
attribution in the DRAM controller and ring), so the estimator reads them from
the recorded :class:`IntervalStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.events import IntervalStats

__all__ = ["LatencyEstimate", "DIEFLatencyEstimator"]


@dataclass(frozen=True)
class LatencyEstimate:
    """Private-mode latency estimate for one core over one interval."""

    core: int
    interval_index: int
    shared_latency: float
    interference: float

    @property
    def private_latency(self) -> float:
        """lambda = L - I, floored at zero (an estimate can never be negative)."""
        return max(0.0, self.shared_latency - self.interference)


class DIEFLatencyEstimator:
    """Per-interval private-mode latency estimation from interference counters."""

    name = "DIEF"

    def estimate(self, interval: IntervalStats) -> LatencyEstimate:
        """Estimate the average private-mode SMS-load latency for one interval.

        The interference estimate has two components:

        * queueing interference measured by the ring and memory-controller
          counters (the shadow-schedule attribution), and
        * the penalty of interference-induced LLC misses.  The ATD only
          samples a subset of sets, so the sampled interference-miss rate is
          extrapolated to all LLC misses, mirroring how DIEF's set-sampled
          ATDs are used in hardware.
        """
        sms_loads = interval.sms_loads
        if sms_loads == 0:
            return LatencyEstimate(
                core=interval.core,
                interval_index=interval.index,
                shared_latency=0.0,
                interference=0.0,
            )
        # interference_sum already contains the ring/DRAM queueing interference
        # plus the full DRAM-trip penalty of the *detected* (sampled)
        # interference misses.  The sampled interference-miss rate is then
        # extrapolated to the remaining LLC misses; for those, only the part
        # of the miss penalty not already attributed as queueing interference
        # is added, to avoid double counting.
        llc_misses = interval.llc_misses
        sampled_rate = 0.0
        if interval.sampled_llc_misses > 0:
            sampled_rate = min(1.0, interval.interference_misses / interval.sampled_llc_misses)
        undetected_interference_misses = max(
            0.0, llc_misses * sampled_rate - interval.interference_misses
        )
        average_miss_penalty = interval.post_llc_latency_sum / llc_misses if llc_misses else 0.0
        average_dram_queue_interference = (
            interval.dram_interference_sum / llc_misses if llc_misses else 0.0
        )
        extra_per_undetected_miss = max(0.0, average_miss_penalty - average_dram_queue_interference)
        miss_interference = undetected_interference_misses * extra_per_undetected_miss
        interference = (interval.interference_sum + miss_interference) / sms_loads
        return LatencyEstimate(
            core=interval.core,
            interval_index=interval.index,
            shared_latency=interval.average_sms_latency(),
            interference=interference,
        )

    def private_latency(self, interval: IntervalStats) -> float:
        """Shortcut returning just lambda-hat for the interval."""
        return self.estimate(interval).private_latency
