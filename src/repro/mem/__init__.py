"""Memory hierarchy glue: the end-to-end request path with interference attribution."""

from repro.mem.hierarchy import CoreMemoryCounters, MemoryHierarchy
from repro.mem.request import MemoryAccessResult

__all__ = ["CoreMemoryCounters", "MemoryHierarchy", "MemoryAccessResult"]
