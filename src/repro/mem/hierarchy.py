"""End-to-end memory hierarchy: private L1/L2, ring, shared LLC, DRAM.

This is the shared substrate both simulation modes run on.  In shared mode all
cores issue requests into the same LLC, ring and memory controller; in private
mode a single core has exclusive access.  Each access returns a
:class:`MemoryAccessResult` with the latency breakdown and the interference
attribution the accounting techniques consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop as _heappop, heappush as _heappush

from repro.cache.atd import AuxiliaryTagDirectory
from repro.cache.cache import SetAssociativeCache
from repro.cache.mshr import MSHRFile
from repro.dram.controller import MemoryController
from repro.errors import ConfigurationError
from repro.interconnect.ring import RingInterconnect
from repro.mem.request import MemoryAccessResult
from repro.config import CMPConfig

__all__ = ["CoreMemoryCounters", "MemoryHierarchy"]


@dataclass(slots=True)
class CoreMemoryCounters:
    """Per-core, per-interval counters maintained by the memory hierarchy.

    These counters are what a hardware implementation would expose to the
    accounting units; they are reset whenever an estimate interval ends.
    (``slots=True``: the fields are updated on every shared-memory access.)
    """

    sms_loads: int = 0
    pms_loads: int = 0
    sms_latency_sum: float = 0.0
    pre_llc_latency_sum: float = 0.0
    post_llc_latency_sum: float = 0.0
    interference_sum: float = 0.0
    interference_miss_penalty_sum: float = 0.0
    dram_interference_sum: float = 0.0
    llc_accesses: int = 0
    llc_misses: int = 0
    interference_misses: int = 0
    sampled_llc_accesses: int = 0
    sampled_llc_misses: int = 0
    dram_row_hits: int = 0

    def average_sms_latency(self) -> float:
        return self.sms_latency_sum / self.sms_loads if self.sms_loads else 0.0

    def average_interference(self) -> float:
        return self.interference_sum / self.sms_loads if self.sms_loads else 0.0

    def average_pre_llc_latency(self) -> float:
        return self.pre_llc_latency_sum / self.sms_loads if self.sms_loads else 0.0

    def average_post_llc_latency(self) -> float:
        llc_miss_loads = max(1, self.llc_misses)
        return self.post_llc_latency_sum / llc_miss_loads if self.post_llc_latency_sum else 0.0

    def reset(self) -> None:
        self.sms_loads = 0
        self.pms_loads = 0
        self.sms_latency_sum = 0.0
        self.pre_llc_latency_sum = 0.0
        self.post_llc_latency_sum = 0.0
        self.interference_sum = 0.0
        self.interference_miss_penalty_sum = 0.0
        self.dram_interference_sum = 0.0
        self.llc_accesses = 0
        self.llc_misses = 0
        self.interference_misses = 0
        self.sampled_llc_accesses = 0
        self.sampled_llc_misses = 0
        self.dram_row_hits = 0


class MemoryHierarchy:
    """The CMP memory system shared by all cores.

    Parameters
    ----------
    config:
        The CMP configuration (Table I).
    active_cores:
        Core ids that participate; a single-element list models private mode.
    """

    def __init__(self, config: CMPConfig, active_cores: list[int] | None = None):
        config.validate()
        self.config = config
        self.active_cores = list(active_cores) if active_cores is not None else list(range(config.n_cores))
        if not self.active_cores:
            raise ConfigurationError("the memory hierarchy needs at least one active core")
        self.l1 = {core: SetAssociativeCache(config.l1d, name=f"l1d[{core}]") for core in self.active_cores}
        self.l2 = {core: SetAssociativeCache(config.l2, name=f"l2[{core}]") for core in self.active_cores}
        self.l1_mshrs = {core: MSHRFile(config.l1d.mshrs) for core in self.active_cores}
        self.llc = SetAssociativeCache(config.llc, name="llc", partitioned=True)
        self.ring = RingInterconnect(config.ring, n_cores=config.n_cores, n_banks=config.llc.banks)
        self.dram = MemoryController(config.dram, line_bytes=config.llc.line_bytes)
        self.atds = {
            core: AuxiliaryTagDirectory(config.llc, config.accounting.atd_sampled_sets, core=core)
            for core in self.active_cores
        }
        self.counters: dict[int, CoreMemoryCounters] = {
            core: CoreMemoryCounters() for core in self.active_cores
        }
        # Latencies and LLC geometry hoisted out of the per-access path.
        self._l1_latency = config.l1d.latency
        self._l2_latency = config.l2.latency
        self._llc_latency = config.llc.latency
        self._llc_line_shift = self.llc._line_shift
        self._llc_set_mask = self.llc._set_mask
        self._llc_tag_shift = self.llc._tag_shift
        self._llc_banks = config.llc.banks
        # ATD set-sampling geometry is identical across cores (same LLC
        # config), so one ATD's precomputed set->slot table serves the
        # inlined membership lookup in _shared_access.
        self._atd_slot_by_set = next(iter(self.atds.values()))._slot_by_set
        # With one active core the shadow (core-alone) schedules are provably
        # identical to the real schedules, so interference is exactly zero
        # and the shadow emulation can be skipped wholesale.
        self._multi_core = len(self.active_cores) > 1
        # LLC flat arrays for the inlined lookup on the SMS path (flush()
        # clears these in place, so the references stay valid).
        self._llc_state = (
            self.llc._tags,
            self.llc._last_use,
            self.llc._set_sizes,
            self.llc._owners,
            self.llc._core_occupancy,
            self.llc.associativity,
        )
        self._last_shared_access = (0.0, 0.0, False)
        # Per-core hot-path state bundled into one tuple so load_fast pays a
        # single dict lookup instead of five.  The private L1/L2 lookups are
        # inlined at array level (they are never partitioned, so the plain
        # LRU path below is their complete behaviour — pinned by
        # tests/test_kernel_equivalence.py); each cache contributes its flat
        # arrays and geometry.
        def _kernel_state(cache: SetAssociativeCache):
            return (
                cache,
                cache._tags,
                cache._last_use,
                cache._set_sizes,
                cache._owners,
                cache._core_occupancy,
                cache._line_shift,
                cache._set_mask,
                cache._tag_shift,
                cache.associativity,
            )

        self._fast_state = {
            core: (
                _kernel_state(self.l1[core]),
                _kernel_state(self.l2[core]),
                self.l1_mshrs[core],
                self.counters[core],
            )
            for core in self.active_cores
        }

    # ------------------------------------------------------------------ configuration

    def set_partition(self, allocation: dict[int, int] | None) -> None:
        """Install an LLC way allocation (None restores unpartitioned LRU)."""
        self.llc.set_partition(allocation)

    def set_priority_core(self, core: int | None) -> None:
        """Give one core highest memory-controller priority (used by ASM)."""
        self.dram.set_priority_core(core)

    # ------------------------------------------------------------------ access path

    def access(self, core: int, address: int, issue_time: float,
               is_store: bool = False) -> MemoryAccessResult:
        """Send one memory operation through the hierarchy.

        Stores update cache state but complete with the L1 latency; the store
        buffer hides their latency from commit (the paper treats store-related
        stalls as one of the rare "other" stall sources).

        This is the descriptive API: it always materialises a
        :class:`MemoryAccessResult`.  The simulation kernel uses the leaner
        :meth:`load_fast`/:meth:`store_fast` entry points, which share the
        same underlying logic.
        """
        if core not in self.l1:
            raise ConfigurationError(f"core {core} is not active in this hierarchy")
        if is_store:
            l1_hit = self.store_fast(core, address, issue_time)
            return MemoryAccessResult(
                address=address,
                core=core,
                issue_time=issue_time,
                completion_time=issue_time + self._l1_latency,
                is_sms=False,
                l1_hit=l1_hit,
                l2_hit=False,
                llc_hit=False,
            )
        completion, info = self.load_fast(core, address, issue_time)
        if info is None:
            return MemoryAccessResult(
                address=address,
                core=core,
                issue_time=issue_time,
                completion_time=completion,
                is_sms=False,
                l1_hit=True,
                l2_hit=False,
                llc_hit=False,
            )
        is_sms, _latency, interference, llc_hit, interference_miss = info
        if not is_sms:
            return MemoryAccessResult(
                address=address,
                core=core,
                issue_time=issue_time,
                completion_time=completion,
                is_sms=False,
                l1_hit=False,
                l2_hit=True,
                llc_hit=False,
            )
        shared = self._last_shared_access
        return MemoryAccessResult(
            address=address,
            core=core,
            issue_time=issue_time,
            completion_time=completion,
            is_sms=True,
            l1_hit=False,
            l2_hit=False,
            llc_hit=llc_hit,
            pre_llc_latency=shared[0],
            post_llc_latency=shared[1],
            interference_cycles=interference,
            interference_miss=interference_miss,
            row_hit=shared[2],
        )

    def store_fast(self, core: int, address: int, issue_time: float) -> bool:
        """Hot-path store: update cache state, return the L1 hit flag.

        The store buffer hides store latency from commit, so callers on the
        simulation hot path need no timing result at all.
        """
        if self.l1[core].access_hit(address, core, True):
            return True
        # A store miss still allocates in L2/LLC for footprint realism,
        # but its latency is hidden by the store buffer.
        self._fill_lower_levels(core, address, is_store=True)
        return False

    def load_fast(self, core: int, address: int, issue_time: float):
        """Hot-path load: returns ``(completion_time, info)``.

        ``info`` is None for an L1 hit; otherwise it is the tuple
        ``(is_sms, latency, interference_cycles, llc_hit, interference_miss)``
        the core model needs to build its :class:`LoadRecord`.
        """
        l1_state, l2_state, mshr, counters = self._fast_state[core]
        l1_latency = self._l1_latency

        # L1 lookup, inlined at array level (plain LRU, never partitioned).
        (cache, tags, last_use, set_sizes, owners, occupancy_counts,
         line_shift, set_mask, tag_shift, assoc) = l1_state
        counter = cache._use_counter + 1
        cache._use_counter = counter
        if set_mask is not None:
            index = (address >> line_shift) & set_mask
            tag = address >> tag_shift
        else:
            index = cache.set_index(address)
            tag = cache.tag(address)
        base = index * assoc
        size = set_sizes[index]
        slot = -1
        if assoc == 2:
            if size != 0:
                if tags[base] == tag:
                    slot = base
                elif size == 2 and tags[base + 1] == tag:
                    slot = base + 1
        else:
            segment = tags[base:base + size]
            if tag in segment:
                slot = base + segment.index(tag)
        if slot >= 0:
            last_use[slot] = counter
            cache.hits += 1
            counters.pms_loads += 1
            return issue_time + l1_latency, None
        cache.misses += 1
        if size < assoc:
            slot = base + size
            set_sizes[index] = size + 1
        else:
            if assoc == 2:
                slot = base if last_use[base] <= last_use[base + 1] else base + 1
            else:
                ages = last_use[base:base + assoc]
                slot = base + ages.index(min(ages))
            occupancy_counts[owners[slot]] -= 1
        try:
            occupancy_counts[core] += 1
        except IndexError:
            occupancy_counts.extend([0] * (core + 1 - len(occupancy_counts)))
            occupancy_counts[core] += 1
        tags[slot] = tag
        owners[slot] = core
        last_use[slot] = counter
        cache._dirty[slot] = False

        # L1 load miss: allocate an MSHR (may stall the request if all in
        # use).  The MSHR file's acquire/allocate pair is inlined here — this
        # runs once per L1 miss and the method-call overhead is measurable.
        outstanding = mshr._outstanding
        while outstanding and outstanding[0][0] <= issue_time:
            _heappop(outstanding)
        if len(outstanding) < mshr.entries:
            effective_issue = issue_time
        else:
            earliest = outstanding[0][0]
            effective_issue = earliest if earliest > issue_time else issue_time

        # L2 lookup, same inlined plain-LRU path.
        (cache, tags, last_use, set_sizes, owners, occupancy_counts,
         line_shift, set_mask, tag_shift, assoc) = l2_state
        counter = cache._use_counter + 1
        cache._use_counter = counter
        if set_mask is not None:
            index = (address >> line_shift) & set_mask
            tag = address >> tag_shift
        else:
            index = cache.set_index(address)
            tag = cache.tag(address)
        base = index * assoc
        size = set_sizes[index]
        slot = -1
        segment = tags[base:base + size]
        if tag in segment:
            slot = base + segment.index(tag)
        if slot >= 0:
            last_use[slot] = counter
            cache.hits += 1
            l2_hit = True
        else:
            cache.misses += 1
            if size < assoc:
                slot = base + size
                set_sizes[index] = size + 1
            else:
                ages = last_use[base:base + assoc]
                slot = base + ages.index(min(ages))
                occupancy_counts[owners[slot]] -= 1
            try:
                occupancy_counts[core] += 1
            except IndexError:
                occupancy_counts.extend([0] * (core + 1 - len(occupancy_counts)))
                occupancy_counts[core] += 1
            tags[slot] = tag
            owners[slot] = core
            last_use[slot] = counter
            cache._dirty[slot] = False
            l2_hit = False

        if l2_hit:
            completion = effective_issue + l1_latency + self._l2_latency
        else:
            # The request leaves the private memory system: it is an SMS-load.
            completion, interference, llc_hit, interference_miss = self._shared_access(
                core, address, effective_issue + l1_latency + self._l2_latency, issue_time
            )
            if len(outstanding) >= mshr.entries:
                _heappop(outstanding)
            _heappush(outstanding, (completion, address))
            return completion, (True, completion - issue_time, interference, llc_hit,
                                interference_miss)
        if len(outstanding) >= mshr.entries:
            _heappop(outstanding)
        _heappush(outstanding, (completion, address))
        counters.pms_loads += 1
        return completion, (False, completion - issue_time, 0.0, False, None)

    def _shared_access(self, core: int, address: int, ready_for_ring: float,
                       original_issue: float):
        counters = self.counters[core]
        ring = self.ring
        llc = self.llc
        # The LLC set index is shared between the bank mapping and the ATD
        # lookup (same geometry); compute it once with the hoisted shift/mask.
        mask = self._llc_set_mask
        if mask is not None:
            set_index = (address >> self._llc_line_shift) & mask
        else:
            set_index = llc.set_index(address)
        bank = set_index % self._llc_banks

        # Request hop towards the LLC bank (ring link logic inlined: this and
        # the response hop below run once per SMS-load each).  With a single
        # active core the shadow link schedule is identical to the real one,
        # so the shadow emulation is skipped and interference is exactly 0.
        multi_core = self._multi_core
        occupancy = ring._occupancy
        hop_latency = ring._latency_table[core][bank]
        links = ring._request_links
        if len(links) == 1:
            link = links[0]
        else:
            link = links[0]
            for candidate in links:
                if candidate.next_free < link.next_free:
                    link = candidate
        next_free = link.next_free
        start = ready_for_ring if ready_for_ring > next_free else next_free
        link.next_free = start + occupancy
        interference = 0.0
        if multi_core:
            shadow = link.shadow_next_free
            shadow_free = shadow[core]
            shadow_start = ready_for_ring if ready_for_ring > shadow_free else shadow_free
            shadow[core] = shadow_start + occupancy
            interference = start - shadow_start
            if interference < 0.0:
                interference = 0.0
            ring.per_core_interference_cycles[core] += interference
        llc_ready = start + hop_latency

        # The ATD shares the LLC's geometry, so the tag is computed once.
        if mask is not None:
            tag = address >> self._llc_tag_shift
        else:
            tag = llc.tag(address)
        atd = self.atds[core]
        counters.llc_accesses += 1
        # Sampled-set membership is one precomputed table lookup (built from
        # the stride test in AuxiliaryTagDirectory.__init__): -1 = unsampled.
        slot = self._atd_slot_by_set[set_index]
        if slot >= 0:
            atd_hit = atd.access_sampled(atd._stacks[slot], tag)
            counters.sampled_llc_accesses += 1
        else:
            atd_hit = None

        # LLC lookup, inlined (same flat-array kernel as the private levels;
        # partition-aware fills go through the shared SetAssociativeCache
        # machinery).
        (llc_tags, llc_last_use, llc_sizes, llc_owners, llc_occupancy,
         llc_assoc) = self._llc_state
        counter = llc._use_counter + 1
        llc._use_counter = counter
        base = set_index * llc_assoc
        size = llc_sizes[set_index]
        segment = llc_tags[base:base + size]
        if tag in segment:
            llc_last_use[base + segment.index(tag)] = counter
            llc.hits += 1
            llc_hit = True
        else:
            llc.misses += 1
            if llc._allocation is not None:
                llc._fill(set_index, tag, core, False, want_outcome=False)
            else:
                if size < llc_assoc:
                    slot = base + size
                    llc_sizes[set_index] = size + 1
                else:
                    ages = llc_last_use[base:base + llc_assoc]
                    slot = base + ages.index(min(ages))
                    llc_occupancy[llc_owners[slot]] -= 1
                try:
                    llc_occupancy[core] += 1
                except IndexError:
                    llc_occupancy.extend([0] * (core + 1 - len(llc_occupancy)))
                    llc_occupancy[core] += 1
                llc_tags[slot] = tag
                llc_owners[slot] = core
                llc_last_use[slot] = counter
                llc._dirty[slot] = False
            llc_hit = False
        row_hit = False
        post_llc_latency = 0.0

        if llc_hit:
            data_ready = llc_ready + self._llc_latency
        else:
            counters.llc_misses += 1
            if atd_hit is not None:
                counters.sampled_llc_misses += 1
            arrival = llc_ready + self._llc_latency
            data_ready, row_hit, dram_interference = self.dram.access_fast(
                address, core, arrival, multi_core
            )
            post_llc_latency = data_ready - arrival
            counters.dram_interference_sum += dram_interference
            if row_hit:
                counters.dram_row_hits += 1
            if atd_hit is True:
                # The private-mode LLC would have hit, so the entire DRAM
                # round trip (queueing included) is interference caused by
                # cache contention.  The penalty is tracked separately so
                # DIEF can extrapolate the sampled rate to unsampled sets.
                counters.interference_misses += 1
                counters.interference_miss_penalty_sum += post_llc_latency
                interference += post_llc_latency
            else:
                interference += dram_interference

        # Response hop back to the core.
        links = ring._response_links
        if len(links) == 1:
            link = links[0]
        else:
            link = links[0]
            for candidate in links:
                if candidate.next_free < link.next_free:
                    link = candidate
        next_free = link.next_free
        start = data_ready if data_ready > next_free else next_free
        link.next_free = start + occupancy
        if multi_core:
            shadow = link.shadow_next_free
            shadow_free = shadow[core]
            shadow_start = data_ready if data_ready > shadow_free else shadow_free
            shadow[core] = shadow_start + occupancy
            response_interference = start - shadow_start
            if response_interference < 0.0:
                response_interference = 0.0
            ring.per_core_interference_cycles[core] += response_interference
            interference += response_interference
        ring.transfers += 2
        completion = start + hop_latency

        latency = completion - original_issue
        pre_llc_latency = latency - post_llc_latency

        counters.sms_loads += 1
        counters.sms_latency_sum += latency
        counters.pre_llc_latency_sum += pre_llc_latency
        counters.post_llc_latency_sum += post_llc_latency
        counters.interference_sum += interference

        # Stashed for the descriptive access() wrapper (single-threaded use).
        self._last_shared_access = (pre_llc_latency, post_llc_latency, row_hit)
        interference_miss = atd_hit if not llc_hit else (
            False if atd_hit is not None else None
        )
        return completion, interference, llc_hit, interference_miss

    def _fill_lower_levels(self, core: int, address: int, is_store: bool) -> None:
        """Install a line in L2 and the LLC without modelling its timing."""
        self.l2[core].access_hit(address, core, is_store)
        self.atds[core].access(address)
        self.llc.access_hit(address, core, is_store)

    # ------------------------------------------------------------------ interval management

    def reset_interval_counters(self, core: int | None = None) -> None:
        """Reset per-interval counters (for one core or all cores).

        ATD stack-distance histograms are deliberately *not* reset here: they
        are consumed (and reset) by the cache-partitioning policies on their
        own repartitioning interval.
        """
        cores = [core] if core is not None else self.active_cores
        for core_id in cores:
            self.counters[core_id].reset()

    def reset_atd_statistics(self, core: int | None = None) -> None:
        """Reset ATD stack-distance histograms (done by partitioning policies)."""
        cores = [core] if core is not None else self.active_cores
        for core_id in cores:
            self.atds[core_id].reset_statistics()

    def miss_curve(self, core: int):
        """The core's private-mode LLC miss curve accumulated since the last ATD reset."""
        return self.atds[core].miss_curve()
