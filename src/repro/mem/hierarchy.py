"""End-to-end memory hierarchy: private L1/L2, ring, shared LLC, DRAM.

This is the shared substrate both simulation modes run on.  In shared mode all
cores issue requests into the same LLC, ring and memory controller; in private
mode a single core has exclusive access.  Each access returns a
:class:`MemoryAccessResult` with the latency breakdown and the interference
attribution the accounting techniques consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.atd import AuxiliaryTagDirectory
from repro.cache.cache import SetAssociativeCache
from repro.cache.mshr import MSHRFile
from repro.dram.controller import MemoryController
from repro.errors import ConfigurationError
from repro.interconnect.ring import RingInterconnect
from repro.mem.request import MemoryAccessResult
from repro.config import CMPConfig

__all__ = ["CoreMemoryCounters", "MemoryHierarchy"]


@dataclass
class CoreMemoryCounters:
    """Per-core, per-interval counters maintained by the memory hierarchy.

    These counters are what a hardware implementation would expose to the
    accounting units; they are reset whenever an estimate interval ends.
    """

    sms_loads: int = 0
    pms_loads: int = 0
    sms_latency_sum: float = 0.0
    pre_llc_latency_sum: float = 0.0
    post_llc_latency_sum: float = 0.0
    interference_sum: float = 0.0
    interference_miss_penalty_sum: float = 0.0
    dram_interference_sum: float = 0.0
    llc_accesses: int = 0
    llc_misses: int = 0
    interference_misses: int = 0
    sampled_llc_accesses: int = 0
    sampled_llc_misses: int = 0
    dram_row_hits: int = 0

    def average_sms_latency(self) -> float:
        return self.sms_latency_sum / self.sms_loads if self.sms_loads else 0.0

    def average_interference(self) -> float:
        return self.interference_sum / self.sms_loads if self.sms_loads else 0.0

    def average_pre_llc_latency(self) -> float:
        return self.pre_llc_latency_sum / self.sms_loads if self.sms_loads else 0.0

    def average_post_llc_latency(self) -> float:
        llc_miss_loads = max(1, self.llc_misses)
        return self.post_llc_latency_sum / llc_miss_loads if self.post_llc_latency_sum else 0.0

    def reset(self) -> None:
        self.sms_loads = 0
        self.pms_loads = 0
        self.sms_latency_sum = 0.0
        self.pre_llc_latency_sum = 0.0
        self.post_llc_latency_sum = 0.0
        self.interference_sum = 0.0
        self.interference_miss_penalty_sum = 0.0
        self.dram_interference_sum = 0.0
        self.llc_accesses = 0
        self.llc_misses = 0
        self.interference_misses = 0
        self.sampled_llc_accesses = 0
        self.sampled_llc_misses = 0
        self.dram_row_hits = 0


class MemoryHierarchy:
    """The CMP memory system shared by all cores.

    Parameters
    ----------
    config:
        The CMP configuration (Table I).
    active_cores:
        Core ids that participate; a single-element list models private mode.
    """

    def __init__(self, config: CMPConfig, active_cores: list[int] | None = None):
        config.validate()
        self.config = config
        self.active_cores = list(active_cores) if active_cores is not None else list(range(config.n_cores))
        if not self.active_cores:
            raise ConfigurationError("the memory hierarchy needs at least one active core")
        self.l1 = {core: SetAssociativeCache(config.l1d, name=f"l1d[{core}]") for core in self.active_cores}
        self.l2 = {core: SetAssociativeCache(config.l2, name=f"l2[{core}]") for core in self.active_cores}
        self.l1_mshrs = {core: MSHRFile(config.l1d.mshrs) for core in self.active_cores}
        self.llc = SetAssociativeCache(config.llc, name="llc", partitioned=True)
        self.ring = RingInterconnect(config.ring, n_cores=config.n_cores, n_banks=config.llc.banks)
        self.dram = MemoryController(config.dram, line_bytes=config.llc.line_bytes)
        self.atds = {
            core: AuxiliaryTagDirectory(config.llc, config.accounting.atd_sampled_sets, core=core)
            for core in self.active_cores
        }
        self.counters: dict[int, CoreMemoryCounters] = {
            core: CoreMemoryCounters() for core in self.active_cores
        }

    # ------------------------------------------------------------------ configuration

    def set_partition(self, allocation: dict[int, int] | None) -> None:
        """Install an LLC way allocation (None restores unpartitioned LRU)."""
        self.llc.set_partition(allocation)

    def set_priority_core(self, core: int | None) -> None:
        """Give one core highest memory-controller priority (used by ASM)."""
        self.dram.set_priority_core(core)

    # ------------------------------------------------------------------ access path

    def access(self, core: int, address: int, issue_time: float,
               is_store: bool = False) -> MemoryAccessResult:
        """Send one memory operation through the hierarchy.

        Stores update cache state but complete with the L1 latency; the store
        buffer hides their latency from commit (the paper treats store-related
        stalls as one of the rare "other" stall sources).
        """
        if core not in self.l1:
            raise ConfigurationError(f"core {core} is not active in this hierarchy")
        l1 = self.l1[core]
        l1_latency = self.config.l1d.latency
        l1_outcome = l1.access(address, core, is_store)
        if l1_outcome.hit or is_store:
            completion = issue_time + l1_latency
            if not l1_outcome.hit:
                # A store miss still allocates in L2/LLC for footprint realism,
                # but its latency is hidden by the store buffer.
                self._fill_lower_levels(core, address, is_store=True)
            self.counters[core].pms_loads += 0 if is_store else 1
            return MemoryAccessResult(
                address=address,
                core=core,
                issue_time=issue_time,
                completion_time=completion,
                is_sms=False,
                l1_hit=l1_outcome.hit,
                l2_hit=False,
                llc_hit=False,
            )

        # L1 load miss: allocate an MSHR (may stall the request if all in use).
        mshr = self.l1_mshrs[core]
        effective_issue = mshr.acquire_time(issue_time)

        l2 = self.l2[core]
        l2_outcome = l2.access(address, core)
        l2_latency = self.config.l2.latency
        if l2_outcome.hit:
            completion = effective_issue + l1_latency + l2_latency
            mshr.allocate(completion, address)
            self.counters[core].pms_loads += 1
            return MemoryAccessResult(
                address=address,
                core=core,
                issue_time=issue_time,
                completion_time=completion,
                is_sms=False,
                l1_hit=False,
                l2_hit=True,
                llc_hit=False,
            )

        # The request leaves the private memory system: it is an SMS-load.
        result = self._shared_access(core, address, effective_issue + l1_latency + l2_latency,
                                     issue_time)
        mshr.allocate(result.completion_time, address)
        return result

    def _shared_access(self, core: int, address: int, ready_for_ring: float,
                       original_issue: float) -> MemoryAccessResult:
        counters = self.counters[core]
        bank = self.llc.bank_index(address)

        request_hop = self.ring.transfer(core, bank, ready_for_ring, response=False)
        llc_ready = request_hop.completion
        llc_latency = self.config.llc.latency

        atd = self.atds[core]
        atd_hit = atd.access(address)
        counters.llc_accesses += 1
        if atd_hit is not None:
            counters.sampled_llc_accesses += 1

        llc_outcome = self.llc.access(address, core)
        interference = request_hop.interference_wait
        row_hit = False
        post_llc_latency = 0.0

        if llc_outcome.hit:
            data_ready = llc_ready + llc_latency
        else:
            counters.llc_misses += 1
            if atd_hit is not None:
                counters.sampled_llc_misses += 1
            dram_result = self.dram.access(address, core, llc_ready + llc_latency)
            data_ready = dram_result.completion
            row_hit = dram_result.row_hit
            post_llc_latency = dram_result.completion - dram_result.arrival
            counters.dram_interference_sum += dram_result.interference_wait
            if row_hit:
                counters.dram_row_hits += 1
            if atd_hit is True:
                # The private-mode LLC would have hit, so the entire DRAM
                # round trip (queueing included) is interference caused by
                # cache contention.  The penalty is tracked separately so
                # DIEF can extrapolate the sampled rate to unsampled sets.
                counters.interference_misses += 1
                counters.interference_miss_penalty_sum += post_llc_latency
                interference += post_llc_latency
            else:
                interference += dram_result.interference_wait

        response_hop = self.ring.transfer(core, bank, data_ready, response=True)
        interference += response_hop.interference_wait
        completion = response_hop.completion

        latency = completion - original_issue
        pre_llc_latency = latency - post_llc_latency

        counters.sms_loads += 1
        counters.sms_latency_sum += latency
        counters.pre_llc_latency_sum += pre_llc_latency
        counters.post_llc_latency_sum += post_llc_latency
        counters.interference_sum += interference

        return MemoryAccessResult(
            address=address,
            core=core,
            issue_time=original_issue,
            completion_time=completion,
            is_sms=True,
            l1_hit=False,
            l2_hit=False,
            llc_hit=llc_outcome.hit,
            pre_llc_latency=pre_llc_latency,
            post_llc_latency=post_llc_latency,
            interference_cycles=interference,
            interference_miss=atd_hit if not llc_outcome.hit else (False if atd_hit is not None else None),
            row_hit=row_hit,
        )

    def _fill_lower_levels(self, core: int, address: int, is_store: bool) -> None:
        """Install a line in L2 and the LLC without modelling its timing."""
        self.l2[core].access(address, core, is_store)
        self.atds[core].access(address)
        self.llc.access(address, core, is_store)

    # ------------------------------------------------------------------ interval management

    def reset_interval_counters(self, core: int | None = None) -> None:
        """Reset per-interval counters (for one core or all cores).

        ATD stack-distance histograms are deliberately *not* reset here: they
        are consumed (and reset) by the cache-partitioning policies on their
        own repartitioning interval.
        """
        cores = [core] if core is not None else self.active_cores
        for core_id in cores:
            self.counters[core_id].reset()

    def reset_atd_statistics(self, core: int | None = None) -> None:
        """Reset ATD stack-distance histograms (done by partitioning policies)."""
        cores = [core] if core is not None else self.active_cores
        for core_id in cores:
            self.atds[core_id].reset_statistics()

    def miss_curve(self, core: int):
        """The core's private-mode LLC miss curve accumulated since the last ATD reset."""
        return self.atds[core].miss_curve()
