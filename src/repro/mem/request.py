"""Memory request descriptors returned by the memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryAccessResult"]


@dataclass(frozen=True)
class MemoryAccessResult:
    """Timing and classification of one load's trip through the memory hierarchy.

    Attributes
    ----------
    address, core:
        The request's byte address and issuing core.
    issue_time, completion_time:
        When the request left the core and when its data returned.
    is_sms:
        True when the request visited the shared memory system (LLC or
        beyond), i.e. it is an SMS-load in the paper's terminology; False for
        PMS-loads that were satisfied by the private L1/L2.
    l1_hit, l2_hit, llc_hit:
        Where the request hit.
    pre_llc_latency:
        Cycles spent on the CPU side of the LLC plus the LLC access itself
        (ring + LLC); used by MCP's P_PreLLC component.
    post_llc_latency:
        Cycles spent in the memory controller and on the memory bus; used by
        MCP's CPI gradient.
    interference_cycles:
        Estimated cycles of the total latency caused by other cores (ring and
        DRAM queueing plus the penalty of an interference-induced LLC miss).
    interference_miss:
        True when the core's ATD indicates the access would have hit in
        private mode but missed in shared mode; None when the address does
        not map to a sampled ATD set.
    row_hit:
        Whether the DRAM access (if any) hit in the row buffer.
    """

    address: int
    core: int
    issue_time: float
    completion_time: float
    is_sms: bool
    l1_hit: bool
    l2_hit: bool
    llc_hit: bool
    pre_llc_latency: float = 0.0
    post_llc_latency: float = 0.0
    interference_cycles: float = 0.0
    interference_miss: bool | None = None
    row_hit: bool = False

    @property
    def latency(self) -> float:
        return self.completion_time - self.issue_time
