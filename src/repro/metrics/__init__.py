"""Metrics: estimation-error metrics (RMS) and system-level performance metrics (STP)."""

from repro.metrics.errors import (
    absolute_error,
    mean,
    relative_error,
    rms,
    rms_absolute_error,
    rms_relative_error,
)
from repro.metrics.throughput import (
    cpi,
    harmonic_mean_speedup,
    ipc,
    system_throughput,
    weighted_speedup,
)

__all__ = [
    "absolute_error",
    "relative_error",
    "rms",
    "rms_absolute_error",
    "rms_relative_error",
    "mean",
    "ipc",
    "cpi",
    "system_throughput",
    "weighted_speedup",
    "harmonic_mean_speedup",
]
