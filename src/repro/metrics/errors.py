"""Estimation-error metrics used throughout the paper's evaluation.

The paper quantifies how far a shared-mode estimate of a private-mode value is
from the actual private-mode value using absolute error, relative error and
the Root Mean Squared (RMS) aggregate of a series of per-interval errors
(Equation 8 in the paper).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = [
    "absolute_error",
    "relative_error",
    "rms",
    "rms_absolute_error",
    "rms_relative_error",
    "mean",
]


def absolute_error(estimate: float, actual: float) -> float:
    """Return the absolute error ``estimate - actual`` (paper: E_Abs)."""
    return estimate - actual


def relative_error(estimate: float, actual: float) -> float:
    """Return the relative error ``(estimate - actual) / actual`` (paper: E_Rel).

    If ``actual`` is zero the error is defined as zero when the estimate is
    also zero and as ``inf`` (signed) otherwise, which keeps RMS aggregation
    well defined for degenerate intervals (e.g. an interval with no stalls).
    """
    if actual == 0:
        if estimate == 0:
            return 0.0
        return math.copysign(math.inf, estimate)
    return (estimate - actual) / actual


def rms(errors: Sequence[float]) -> float:
    """Return the Root Mean Squared value of a series of errors (Equation 8).

    Non-finite entries are ignored; an empty (or all-non-finite) series has an
    RMS of zero.
    """
    finite = [e for e in errors if math.isfinite(e)]
    if not finite:
        return 0.0
    return math.sqrt(sum(e * e for e in finite) / len(finite))


def rms_absolute_error(estimates: Sequence[float], actuals: Sequence[float]) -> float:
    """RMS of per-interval absolute errors between two aligned series."""
    _check_aligned(estimates, actuals)
    return rms([absolute_error(e, a) for e, a in zip(estimates, actuals)])


def rms_relative_error(estimates: Sequence[float], actuals: Sequence[float]) -> float:
    """RMS of per-interval relative errors between two aligned series."""
    _check_aligned(estimates, actuals)
    return rms([relative_error(e, a) for e, a in zip(estimates, actuals)])


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; the paper uses it to aggregate per-benchmark RMS errors."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def _check_aligned(estimates: Sequence[float], actuals: Sequence[float]) -> None:
    if len(estimates) != len(actuals):
        raise ValueError(
            f"estimate series (len {len(estimates)}) and actual series "
            f"(len {len(actuals)}) must be aligned"
        )
