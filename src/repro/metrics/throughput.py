"""System-level performance metrics.

The paper's cache-partitioning case study optimises and reports System
Throughput (STP) as defined by Eyerman and Eeckhout: the sum over cores of the
private-mode to shared-mode CPI ratio.  A core running exactly as fast as it
would alone contributes 1.0; interference pushes its contribution below 1.0.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ipc", "cpi", "system_throughput", "weighted_speedup", "harmonic_mean_speedup"]


def ipc(instructions: float, cycles: float) -> float:
    """Instructions per cycle; zero cycles yields zero IPC."""
    if cycles <= 0:
        return 0.0
    return instructions / cycles


def cpi(instructions: float, cycles: float) -> float:
    """Cycles per instruction; zero instructions yields zero CPI."""
    if instructions <= 0:
        return 0.0
    return cycles / instructions


def system_throughput(private_cpis: Sequence[float], shared_cpis: Sequence[float]) -> float:
    """System Throughput: sum over cores of ``private_cpi / shared_cpi``.

    Cores whose shared-mode CPI is zero (no committed instructions) contribute
    zero, which only happens for degenerate, empty intervals.
    """
    if len(private_cpis) != len(shared_cpis):
        raise ValueError("private and shared CPI series must have the same length")
    total = 0.0
    for private, shared in zip(private_cpis, shared_cpis):
        if shared > 0:
            total += private / shared
    return total


def weighted_speedup(private_cpis: Sequence[float], shared_cpis: Sequence[float]) -> float:
    """Alias of :func:`system_throughput`; the metric is also known as weighted speedup."""
    return system_throughput(private_cpis, shared_cpis)


def harmonic_mean_speedup(private_cpis: Sequence[float], shared_cpis: Sequence[float]) -> float:
    """Harmonic mean of per-core speedups; balances throughput and fairness."""
    if len(private_cpis) != len(shared_cpis):
        raise ValueError("private and shared CPI series must have the same length")
    n = len(private_cpis)
    if n == 0:
        return 0.0
    denom = 0.0
    for private, shared in zip(private_cpis, shared_cpis):
        if private <= 0:
            return 0.0
        denom += shared / private
    if denom == 0:
        return 0.0
    return n / denom
