"""LLC partitioning policies: LRU (none), UCP, ASM-driven, MCP and MCP-O."""

from repro.partitioning.asm_policy import ASMPartitioningPolicy
from repro.partitioning.base import PartitioningPolicy, PolicyContext
from repro.partitioning.lookahead import lookahead_allocate
from repro.partitioning.lru import LRUSharingPolicy
from repro.partitioning.mcp import MCPOPolicy, MCPPolicy, PerformanceModel
from repro.partitioning.ucp import UCPPolicy

__all__ = [
    "PartitioningPolicy",
    "PolicyContext",
    "lookahead_allocate",
    "LRUSharingPolicy",
    "UCPPolicy",
    "ASMPartitioningPolicy",
    "MCPPolicy",
    "MCPOPolicy",
    "PerformanceModel",
]
