"""ASM-driven cache partitioning (the invasive state-of-the-art baseline of Figure 6).

The policy uses the same miss-curve + first-order performance model machinery
as MCP but takes its private-mode CPI estimates from the invasive ASM
technique instead of GDP.  Installing the policy also installs ASM's
epoch-based memory-controller priority rotation, because ASM cannot produce
estimates without it — which is precisely why it perturbs the workloads it is
trying to measure.
"""

from __future__ import annotations

from repro.baselines.asm import ASMAccounting, install_asm_rotation
from repro.partitioning.base import PartitioningPolicy, PolicyContext
from repro.partitioning.lookahead import lookahead_allocate
from repro.partitioning.mcp import PerformanceModel
from repro.sim.system import CMPSystem

__all__ = ["ASMPartitioningPolicy"]


class ASMPartitioningPolicy(PartitioningPolicy):
    """Throughput-oriented partitioning driven by ASM slowdown estimates."""

    name = "ASM"
    # ASM estimates read aggregate counters and epoch buckets only.
    needs_events = False

    def __init__(self, n_cores: int, repartition_interval_cycles: float | None = None,
                 epoch_cycles: float = 2_000.0):
        super().__init__(repartition_interval_cycles)
        self.accounting = ASMAccounting(n_cores=n_cores, epoch_cycles=epoch_cycles)

    def install(self, system: CMPSystem) -> None:
        install_asm_rotation(system, epoch_cycles=self.accounting.epoch_cycles)
        super().install(system)

    def allocate(self, context: PolicyContext) -> dict[int, int] | None:
        cores = context.cores
        if not cores:
            return None
        models: dict[int, PerformanceModel] = {}
        for core in cores:
            interval = context.latest_intervals.get(core)
            if interval is None or interval.instructions == 0:
                continue
            estimate = self.accounting.estimate(interval)
            models[core] = PerformanceModel.from_interval(interval, private_cpi=estimate.cpi)
        if len(models) < len(cores):
            return self.equal_allocation(cores, context.total_ways)
        utilities = {}
        for core in cores:
            curve = context.miss_curves[core]
            model = models[core]
            utilities[core] = [
                model.throughput_contribution(curve.misses_at(ways))
                for ways in range(context.total_ways + 1)
            ]
        return lookahead_allocate(utilities, context.total_ways)
