"""Common machinery of the LLC partitioning policies (the Figure 6 case study).

A policy is installed on a shared-mode :class:`CMPSystem` and re-evaluates the
per-core way allocation at a fixed cycle interval.  On every repartitioning
event the policy is handed a :class:`PolicyContext`: the ATD miss curves
accumulated since the previous repartitioning plus each core's most recent
estimate interval (which MCP and ASM-driven partitioning turn into
performance estimates).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cache.miss_curve import MissCurve
from repro.cpu.events import IntervalStats
from repro.errors import PartitioningError
from repro.sim.system import CMPSystem

__all__ = ["PolicyContext", "PartitioningPolicy"]


@dataclass
class PolicyContext:
    """Everything a partitioning policy may consult at a repartitioning event."""

    time: float
    total_ways: int
    miss_curves: dict[int, MissCurve] = field(default_factory=dict)
    latest_intervals: dict[int, IntervalStats] = field(default_factory=dict)

    @property
    def cores(self) -> list[int]:
        return sorted(self.miss_curves)


class PartitioningPolicy(ABC):
    """Base class for LLC way-partitioning policies."""

    name: str = "abstract"
    # Whether the policy reads per-event records (LoadRecord/CommitStall
    # lists) from the estimate intervals.  Policies that act only on miss
    # curves and aggregate counters set this to False so their shared-mode
    # runs can skip event materialisation entirely.
    needs_events: bool = True

    def __init__(self, repartition_interval_cycles: float | None = None):
        self.repartition_interval_cycles = repartition_interval_cycles
        self.allocations_history: list[dict[int, int]] = []

    # ------------------------------------------------------------------ policy interface

    @abstractmethod
    def allocate(self, context: PolicyContext) -> dict[int, int] | None:
        """Return the new way allocation, or None to leave the LLC unpartitioned."""

    # ------------------------------------------------------------------ installation

    def install(self, system: CMPSystem) -> None:
        """Attach this policy to a shared-mode run (call before ``system.run()``)."""
        period = self.repartition_interval_cycles or float(
            system.config.accounting.partitioning_interval_cycles
        )
        total_ways = system.config.llc.associativity
        if total_ways < len(system.cores):
            raise PartitioningError("the LLC must have at least one way per core")

        def repartition(now: float, sim: CMPSystem) -> None:
            context = self._build_context(now, total_ways, sim)
            allocation = self.allocate(context)
            if allocation is not None:
                sim.hierarchy.set_partition(allocation)
                self.allocations_history.append(dict(allocation))
            sim.hierarchy.reset_atd_statistics()

        system.add_periodic_hook(period, repartition)

    def _build_context(self, now: float, total_ways: int, system: CMPSystem) -> PolicyContext:
        context = PolicyContext(time=now, total_ways=total_ways)
        for core_id, core in system.cores.items():
            context.miss_curves[core_id] = system.hierarchy.miss_curve(core_id)
            if core.intervals:
                context.latest_intervals[core_id] = core.intervals[-1]
        return context

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def equal_allocation(cores: list[int], total_ways: int) -> dict[int, int]:
        """Split ways as evenly as possible (fallback before estimates exist)."""
        if not cores:
            raise PartitioningError("cannot allocate ways to zero cores")
        base = total_ways // len(cores)
        remainder = total_ways - base * len(cores)
        allocation = {}
        for position, core in enumerate(sorted(cores)):
            allocation[core] = base + (1 if position < remainder else 0)
        return allocation
