"""The lookahead allocation algorithm (Qureshi and Patt, used by UCP and MCP).

Given a per-core utility curve — the benefit of holding ``w`` ways, for every
``w`` up to the LLC associativity — the lookahead algorithm greedily hands out
ways: at every step each core reports the best *marginal* utility it could get
from any number of additional ways (utility gained divided by ways needed),
and the core with the highest marginal utility receives that block of ways.
This handles non-convex utility curves (where the benefit of one more way is
tiny but the benefit of four more is large), which plain greedy allocation by
single ways does not.

UCP's utility is the hit count from the ATD miss curves; MCP's utility is each
core's estimated contribution to system throughput (Equation 7 of the paper).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import PartitioningError

__all__ = ["lookahead_allocate"]


def lookahead_allocate(
    utilities: Mapping[int, Sequence[float]],
    total_ways: int,
    minimum_ways: int = 1,
) -> dict[int, int]:
    """Allocate ``total_ways`` among cores maximising summed utility greedily.

    Parameters
    ----------
    utilities:
        Maps core id to its utility curve; ``utilities[core][w]`` is the
        benefit of owning ``w`` ways (index 0 = no ways).  Curves may have
        fewer entries than ``total_ways`` + 1; the last entry is extended.
    total_ways:
        Number of LLC ways to distribute (the cache associativity).
    minimum_ways:
        Every core is guaranteed at least this many ways (way partitioning
        cannot starve a core completely).

    Returns
    -------
    dict mapping core id to its way allocation; the values sum to
    ``total_ways`` exactly.
    """
    cores = sorted(utilities)
    if not cores:
        raise PartitioningError("lookahead needs at least one core")
    if total_ways < len(cores) * minimum_ways:
        raise PartitioningError(
            f"{total_ways} ways cannot give {len(cores)} cores {minimum_ways} way(s) each"
        )

    def utility(core: int, ways: int) -> float:
        curve = utilities[core]
        if not curve:
            return 0.0
        index = min(ways, len(curve) - 1)
        return float(curve[index])

    allocation = {core: minimum_ways for core in cores}
    remaining = total_ways - sum(allocation.values())

    while remaining > 0:
        best_core = None
        best_block = 0
        best_marginal = 0.0
        for core in cores:
            current = allocation[core]
            base = utility(core, current)
            for block in range(1, remaining + 1):
                gain = utility(core, current + block) - base
                marginal = gain / block
                if marginal > best_marginal + 1e-12:
                    best_marginal = marginal
                    best_core = core
                    best_block = block
        if best_core is None:
            # Nobody benefits from more ways; hand the remainder out round-
            # robin so the allocation always sums to the associativity.
            position = 0
            while remaining > 0:
                allocation[cores[position % len(cores)]] += 1
                position += 1
                remaining -= 1
            break
        allocation[best_core] += best_block
        remaining -= best_block

    assert sum(allocation.values()) == total_ways
    return allocation
