"""The unmanaged baseline: shared LLC with plain LRU replacement.

LRU never installs a partition, so every core competes freely for LLC
capacity.  The paper uses it as the reference point of Figure 6b and shows
that on the 8-core H-workloads it can even beat UCP and ASM because way
partitioning is coarse grained.
"""

from __future__ import annotations

from repro.partitioning.base import PartitioningPolicy, PolicyContext

__all__ = ["LRUSharingPolicy"]


class LRUSharingPolicy(PartitioningPolicy):
    """No partitioning at all: the LLC stays a free-for-all under LRU."""

    name = "LRU"
    # LRU consults nothing at all.
    needs_events = False

    def allocate(self, context: PolicyContext) -> dict[int, int] | None:
        return None
