"""MCP: Model-based Cache Partitioning (Section V of the paper).

MCP combines three ingredients at every repartitioning event:

1. the per-core ATD miss curves (estimated misses for any way allocation),
2. a first-order performance model that links LLC misses to CPI
   (Equations 4–6): ``CPI(m) = P_PreLLC + g * m`` where ``P_PreLLC`` is the
   CPI with an infinite LLC and ``g`` the CPI cost of one additional miss, and
3. the private-mode CPI estimates pi-hat produced by GDP (MCP) or GDP-O
   (MCP-O).

Together they give an online estimate of System Throughput for any candidate
allocation (Equation 7); MCP feeds that utility into the lookahead algorithm
and installs the allocation that maximises it.  Accurate private-mode
estimates are what allow MCP to pick the working sets that matter for *system
performance* rather than just minimising misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.miss_curve import MissCurve
from repro.core.base import AccountingTechnique
from repro.core.gdp import GDPAccounting, GDPOAccounting
from repro.cpu.events import IntervalStats
from repro.partitioning.base import PartitioningPolicy, PolicyContext
from repro.partitioning.lookahead import lookahead_allocate

__all__ = ["PerformanceModel", "MCPPolicy", "MCPOPolicy"]


@dataclass(frozen=True)
class PerformanceModel:
    """Per-core first-order CPI model: ``CPI(m) = pre_llc_cpi + gradient * m``."""

    core: int
    pre_llc_cpi: float
    gradient: float
    private_cpi: float
    instructions: int

    def shared_cpi(self, misses: float) -> float:
        """Estimated shared-mode CPI with ``misses`` SMS-load LLC misses."""
        return self.pre_llc_cpi + self.gradient * misses

    def throughput_contribution(self, misses: float) -> float:
        """This core's term of the STP estimate (Equation 7)."""
        shared = self.shared_cpi(misses)
        if shared <= 0:
            return 0.0
        return self.private_cpi / shared

    @staticmethod
    def from_interval(interval: IntervalStats, private_cpi: float) -> "PerformanceModel":
        """Build the model from one estimate interval (Equations 5 and 6).

        The critical path length is approximated locally as the SMS stall
        cycles divided by the average SMS latency (footnote 4 of the paper),
        so the model does not need the full CPL estimator.
        """
        instructions = max(1, interval.instructions)
        average_latency = interval.average_sms_latency()
        cpl_estimate = interval.stall_sms / average_latency if average_latency > 0 else 0.0
        pre_llc_latency = (
            interval.pre_llc_latency_sum / interval.sms_loads if interval.sms_loads else 0.0
        )
        post_llc_latency = (
            interval.post_llc_latency_sum / interval.llc_misses if interval.llc_misses else 0.0
        )
        non_sms_stalls = interval.stall_independent + interval.stall_other + interval.stall_pms
        pre_llc_cycles = interval.commit_cycles + non_sms_stalls + cpl_estimate * pre_llc_latency
        pre_llc_cpi = pre_llc_cycles / instructions
        # CPI increase per additional SMS-load LLC miss (Equation 6): the miss
        # pays the memory-controller/bus latency, serialised per unit of MLP.
        miss_cpl_fraction = cpl_estimate / interval.llc_misses if interval.llc_misses else 0.0
        gradient = (miss_cpl_fraction * post_llc_latency) / instructions
        return PerformanceModel(
            core=interval.core,
            pre_llc_cpi=pre_llc_cpi,
            gradient=gradient,
            private_cpi=private_cpi,
            instructions=instructions,
        )


class MCPPolicy(PartitioningPolicy):
    """Model-based Cache Partitioning driven by GDP private-mode estimates."""

    name = "MCP"

    def __init__(self, repartition_interval_cycles: float | None = None,
                 accounting: AccountingTechnique | None = None,
                 prb_entries: int | None = 32):
        super().__init__(repartition_interval_cycles)
        self.accounting = accounting or GDPAccounting(prb_entries=prb_entries)

    def allocate(self, context: PolicyContext) -> dict[int, int] | None:
        cores = context.cores
        if not cores:
            return None
        models: dict[int, PerformanceModel] = {}
        for core in cores:
            interval = context.latest_intervals.get(core)
            if interval is None or interval.instructions == 0:
                continue
            estimate = self.accounting.estimate(interval)
            models[core] = PerformanceModel.from_interval(interval, private_cpi=estimate.cpi)
        if len(models) < len(cores):
            # Not every core has produced an estimate interval yet.
            return self.equal_allocation(cores, context.total_ways)

        utilities = {
            core: self._utility_curve(models[core], context.miss_curves[core], context.total_ways)
            for core in cores
        }
        return lookahead_allocate(utilities, context.total_ways)

    def _utility_curve(self, model: PerformanceModel, miss_curve: MissCurve,
                       total_ways: int) -> list[float]:
        """Per-way-count STP contribution of one core (Equation 7)."""
        curve = []
        for ways in range(total_ways + 1):
            misses = miss_curve.misses_at(ways)
            curve.append(model.throughput_contribution(misses))
        return curve


class MCPOPolicy(MCPPolicy):
    """MCP using GDP-O (overlap-aware) private-mode estimates."""

    name = "MCP-O"

    def __init__(self, repartition_interval_cycles: float | None = None,
                 prb_entries: int | None = 32):
        super().__init__(
            repartition_interval_cycles,
            accounting=GDPOAccounting(prb_entries=prb_entries),
            prb_entries=prb_entries,
        )
