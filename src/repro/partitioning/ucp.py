"""UCP: Utility-based Cache Partitioning (Qureshi and Patt).

UCP allocates LLC ways to the cores that derive the most *hits* from them:
the per-core ATD miss curves give the expected hit count for every possible
way count, and the lookahead algorithm hands out ways by marginal hit gain.
UCP is miss-minimising — it has no notion of how much a miss actually costs
each application, which is exactly the gap MCP fills with performance
estimates.
"""

from __future__ import annotations

from repro.partitioning.base import PartitioningPolicy, PolicyContext
from repro.partitioning.lookahead import lookahead_allocate

__all__ = ["UCPPolicy"]


class UCPPolicy(PartitioningPolicy):
    """Miss-minimising way partitioning driven by ATD miss curves."""

    name = "UCP"
    # UCP consults only the ATD miss curves.
    needs_events = False

    def allocate(self, context: PolicyContext) -> dict[int, int] | None:
        cores = context.cores
        if not cores:
            return None
        utilities = {}
        for core in cores:
            curve = context.miss_curves[core]
            utilities[core] = [curve.hits_at(ways) for ways in range(context.total_ways + 1)]
        if all(max(curve) <= 0 for curve in utilities.values()):
            # No ATD samples yet (start of the run): fall back to an even split.
            return self.equal_allocation(cores, context.total_ways)
        return lookahead_allocate(utilities, context.total_ways)
