"""Named factory registries for the scenario engine.

Scenarios describe *which* accounting techniques, partitioning policies,
latency estimators and workload generators to run as plain strings; the
registries in this module map those names to the concrete classes implemented
in :mod:`repro.core`, :mod:`repro.baselines`, :mod:`repro.partitioning`,
:mod:`repro.latency` and :mod:`repro.workloads`.  Keeping the lookup in data
(rather than ``if name == ...`` chains inside the experiment harnesses) means
a new technique or policy becomes runnable from a JSON scenario file the
moment it is registered — no experiment code has to change.

Factory signatures are uniform per registry so a generic runner can
instantiate any entry:

* accounting techniques — ``factory(config, latency_estimator)``
* partitioning policies — ``factory(config, repartition_interval_cycles)``
* latency estimators — ``factory()``
* workload generators — ``factory(n_cores, group, count, seed)`` returning a
  list of :class:`~repro.workloads.mixes.Workload`

Two caveats for factories registered from *outside* the ``repro`` package:

* **Worker processes** — sweep cells execute in pool workers that must also
  see the registration.  On Linux (fork start method, the default) workers
  inherit the parent's registrations; on spawn-start platforms
  (macOS/Windows) put the ``register`` call in an importable module that the
  evaluating code imports, or run with ``jobs=1``.
* **Result cache** — cache digests cover the registry *names* plus a code
  epoch over the ``repro`` sources, not the bodies of external factories.
  When iterating on an externally registered factory under the same name,
  disable the cache (``REPRO_CACHE=0``) or clear it, otherwise stale results
  replay.
"""

from __future__ import annotations

import difflib
from collections.abc import Callable

from repro.baselines import ASMAccounting, ITCAAccounting, PTCAAccounting
from repro.core.gdp import GDPAccounting, GDPOAccounting
from repro.errors import ConfigurationError
from repro.latency.dief import DIEFLatencyEstimator
from repro.partitioning import (
    ASMPartitioningPolicy,
    LRUSharingPolicy,
    MCPOPolicy,
    MCPPolicy,
    UCPPolicy,
)
from repro.workloads.mixes import generate_category_workloads, generate_mixed_workloads

__all__ = [
    "Registry",
    "accounting_techniques",
    "partitioning_policies",
    "latency_estimators",
    "workload_generators",
    "suggest_name",
]


def suggest_name(name: str, candidates) -> str:
    """A `` — did you mean 'X'?`` suffix for unknown-name errors, or ``""``.

    Matching is case-insensitive so the common slip of typing ``gdp-o`` for
    ``GDP-O`` still gets a suggestion.
    """
    candidates = list(candidates)
    by_folded = {candidate.lower(): candidate for candidate in candidates}
    matches = difflib.get_close_matches(str(name).lower(), list(by_folded), n=1)
    if not matches:
        return ""
    return f" — did you mean '{by_folded[matches[0]]}'?"


class Registry:
    """A small name -> factory mapping with informative failure modes."""

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: dict[str, Callable] = {}

    def register(self, name: str, factory: Callable | None = None):
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering an existing name raises
        :class:`~repro.errors.ConfigurationError` — silently shadowing an
        entry would make scenario results depend on import order.
        """
        if factory is None:
            return lambda wrapped: self.register(name, wrapped)
        if name in self._factories:
            raise ConfigurationError(
                f"{self.kind} '{name}' is already registered; unregister it first"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests and experimentation)."""
        if name not in self._factories:
            raise ConfigurationError(f"unknown {self.kind} '{name}'")
        del self._factories[name]

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} '{name}' "
                f"(registered: {', '.join(self.names()) or 'none'})"
                f"{suggest_name(name, self.names())}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Instantiate the entry registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self._factories)})"


accounting_techniques = Registry("accounting technique")
partitioning_policies = Registry("partitioning policy")
latency_estimators = Registry("latency estimator")
workload_generators = Registry("workload generator")


# ----------------------------------------------------------- built-in entries

latency_estimators.register("DIEF", DIEFLatencyEstimator)

accounting_techniques.register("ITCA", lambda config, latency: ITCAAccounting())
accounting_techniques.register(
    "PTCA", lambda config, latency: PTCAAccounting(latency_estimator=latency)
)
accounting_techniques.register(
    "ASM",
    lambda config, latency: ASMAccounting(
        n_cores=config.n_cores, epoch_cycles=config.accounting.asm_epoch_cycles
    ),
)
accounting_techniques.register(
    "GDP",
    lambda config, latency: GDPAccounting(
        prb_entries=config.accounting.prb_entries, latency_estimator=latency
    ),
)
accounting_techniques.register(
    "GDP-O",
    lambda config, latency: GDPOAccounting(
        prb_entries=config.accounting.prb_entries, latency_estimator=latency
    ),
)

partitioning_policies.register(
    "LRU", lambda config, repartition_cycles: LRUSharingPolicy(repartition_cycles)
)
partitioning_policies.register(
    "UCP", lambda config, repartition_cycles: UCPPolicy(repartition_cycles)
)
partitioning_policies.register(
    "ASM",
    lambda config, repartition_cycles: ASMPartitioningPolicy(
        n_cores=config.n_cores,
        repartition_interval_cycles=repartition_cycles,
        epoch_cycles=config.accounting.asm_epoch_cycles,
    ),
)
partitioning_policies.register(
    "MCP",
    lambda config, repartition_cycles: MCPPolicy(
        repartition_cycles, prb_entries=config.accounting.prb_entries
    ),
)
partitioning_policies.register(
    "MCP-O",
    lambda config, repartition_cycles: MCPOPolicy(
        repartition_cycles, prb_entries=config.accounting.prb_entries
    ),
)


def _generate_category(n_cores: int, group: str, count: int, seed: int):
    return generate_category_workloads(n_cores, group, count, seed=seed)


def _generate_mixed(n_cores: int, group: str, count: int, seed: int):
    return generate_mixed_workloads(n_cores, group, count, seed=seed)


def _generate_auto(n_cores: int, group: str, count: int, seed: int):
    """Dispatch on the group name: "H"/"M"/"L" are categories, longer strings
    such as "HMLL" are per-core category mixes (Figure 7f)."""
    if len(group) == 1:
        return _generate_category(n_cores, group, count, seed)
    return _generate_mixed(n_cores, group, count, seed)


workload_generators.register("category", _generate_category)
workload_generators.register("mixed", _generate_mixed)
workload_generators.register("auto", _generate_auto)
