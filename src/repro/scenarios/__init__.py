"""Declarative scenario engine.

A scenario — which estimators or policies, which machine, which workloads,
which sweep axes, which budgets — is described by a plain
:class:`~repro.scenarios.spec.ScenarioSpec` value that round-trips through
JSON, and executed by the generic :func:`~repro.scenarios.runner.run_scenario`
runner on top of the shared process pool and content-addressed result cache.
The paper's figures are thin adapters over this engine (see
:mod:`repro.scenarios.builtin`), and arbitrary user scenarios run from JSON
files via ``python -m repro run``.  Scenarios compose into dependency DAGs —
:class:`~repro.scenarios.composite.CompositeSpec`, executed by the
topological scheduler in :mod:`repro.scenarios.composite` via
``python -m repro run-composite`` or the service's ``POST /composites``.
"""

from repro.scenarios.builtin import (
    SCALES,
    BuiltinScenario,
    builtin_scenarios,
    get_builtin,
    resolve_scale,
)
from repro.scenarios.composite import (
    CompositeNode,
    CompositeResult,
    CompositeSpec,
    ParamRef,
    composite_digest,
    load_composite,
    run_composite,
)
from repro.scenarios.runner import ScenarioResult, expand_cells, run_scenario
from repro.scenarios.spec import (
    AXIS_NAMES,
    SCENARIO_KINDS,
    MachineSpec,
    ScenarioSpec,
    SweepAxis,
    WorkloadMixSpec,
    load_spec,
)

__all__ = [
    "AXIS_NAMES",
    "SCENARIO_KINDS",
    "SCALES",
    "MachineSpec",
    "WorkloadMixSpec",
    "SweepAxis",
    "ScenarioSpec",
    "load_spec",
    "CompositeNode",
    "CompositeResult",
    "CompositeSpec",
    "ParamRef",
    "composite_digest",
    "load_composite",
    "run_composite",
    "ScenarioResult",
    "expand_cells",
    "run_scenario",
    "BuiltinScenario",
    "builtin_scenarios",
    "get_builtin",
    "resolve_scale",
]
