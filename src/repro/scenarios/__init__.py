"""Declarative scenario engine.

A scenario — which estimators or policies, which machine, which workloads,
which sweep axes, which budgets — is described by a plain
:class:`~repro.scenarios.spec.ScenarioSpec` value that round-trips through
JSON, and executed by the generic :func:`~repro.scenarios.runner.run_scenario`
runner on top of the shared process pool and content-addressed result cache.
The paper's figures are thin adapters over this engine (see
:mod:`repro.scenarios.builtin`), and arbitrary user scenarios run from JSON
files via ``python -m repro run``.  Scenarios compose into dependency DAGs —
:class:`~repro.scenarios.composite.CompositeSpec`, executed by the
topological scheduler in :mod:`repro.scenarios.composite` via
``python -m repro run-composite`` or the service's ``POST /composites``.
Question-shaped *queries* — best-of races with early termination, adaptive
axis refinement, confidence-gated workload sampling — are described by
:class:`~repro.scenarios.query.QuerySpec` and answered on demand by
:func:`~repro.scenarios.ondemand.run_query` via ``python -m repro query``
or the service's ``POST /queries``, evaluating only the cells the question
needs.
"""

from repro.scenarios.builtin import (
    SCALES,
    BuiltinScenario,
    builtin_scenarios,
    get_builtin,
    resolve_scale,
)
from repro.scenarios.composite import (
    CompositeNode,
    CompositeResult,
    CompositeSpec,
    ParamRef,
    composite_digest,
    load_composite,
    run_composite,
)
from repro.scenarios.ondemand import (
    InProcessWaveExecutor,
    QueryResult,
    WaveExecutor,
    format_query_payload,
    run_query,
)
from repro.scenarios.query import QUERY_KINDS, QuerySpec, load_query, query_digest
from repro.scenarios.runner import ScenarioResult, expand_cells, run_scenario
from repro.scenarios.stopping import (
    DEFAULT_RULES,
    StoppingRule,
    rule_from_dict,
    stopping_rules,
)
from repro.scenarios.spec import (
    AXIS_NAMES,
    SCENARIO_KINDS,
    MachineSpec,
    ScenarioSpec,
    SweepAxis,
    WorkloadMixSpec,
    load_spec,
)

__all__ = [
    "AXIS_NAMES",
    "SCENARIO_KINDS",
    "SCALES",
    "MachineSpec",
    "WorkloadMixSpec",
    "SweepAxis",
    "ScenarioSpec",
    "load_spec",
    "CompositeNode",
    "CompositeResult",
    "CompositeSpec",
    "ParamRef",
    "composite_digest",
    "load_composite",
    "run_composite",
    "ScenarioResult",
    "expand_cells",
    "run_scenario",
    "BuiltinScenario",
    "builtin_scenarios",
    "get_builtin",
    "resolve_scale",
    "QUERY_KINDS",
    "QuerySpec",
    "load_query",
    "query_digest",
    "DEFAULT_RULES",
    "StoppingRule",
    "rule_from_dict",
    "stopping_rules",
    "InProcessWaveExecutor",
    "QueryResult",
    "WaveExecutor",
    "format_query_payload",
    "run_query",
]
