"""Built-in scenarios: the paper's figures expressed as scenario specs.

Each entry maps a name (``figure3`` ... ``figure7``, ``headline``, plus two
generic sweeps) to the :class:`~repro.scenarios.spec.ScenarioSpec` values it
executes and a runner that aggregates the engine's raw results into the
paper's figure form.  ``SCALES`` — shared with ``run_all`` — sizes the specs
for laptop (``small``) through overnight (``large``) runs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import Figure6Settings, figure6_spec, run_figure6
from repro.experiments.figure7 import (
    PANELS,
    Figure7Settings,
    figure7_panel_spec,
    run_figure7,
)
from repro.experiments.summary import run_headline_summary
from repro.experiments.sweep import SweepSettings, accuracy_sweep_spec, run_accuracy_sweep
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "SCALES",
    "resolve_scale",
    "BuiltinScenario",
    "builtin_scenarios",
    "get_builtin",
]

SCALES = {
    "small": {"workloads": 1, "instructions": 10_000, "interval": 2_500,
              "case_instructions": 16_000, "core_counts": (2, 4)},
    "medium": {"workloads": 2, "instructions": 16_000, "interval": 4_000,
               "case_instructions": 24_000, "core_counts": (2, 4, 8)},
    "large": {"workloads": 5, "instructions": 40_000, "interval": 8_000,
              "case_instructions": 60_000, "core_counts": (2, 4, 8)},
}

def resolve_scale(scale: str) -> dict:
    """The size knobs for one scale name; unknown names raise
    :class:`~repro.errors.ConfigurationError` (not a bare ``ValueError``, so
    CLI and API callers get the package's uniform configuration failure)."""
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale '{scale}' (choose from {', '.join(sorted(SCALES))})"
        ) from None


def _sweep_settings(scale: str) -> SweepSettings:
    knobs = resolve_scale(scale)
    return SweepSettings(
        core_counts=knobs["core_counts"],
        categories=("H", "M", "L"),
        workloads_per_category=knobs["workloads"],
        instructions_per_core=knobs["instructions"],
        interval_instructions=knobs["interval"],
        collect_components=True,
    )


def _figure6_settings(scale: str) -> Figure6Settings:
    knobs = resolve_scale(scale)
    return Figure6Settings(
        core_counts=knobs["core_counts"],
        categories=("H", "M", "L"),
        workloads_per_category=knobs["workloads"],
        instructions_per_core=knobs["case_instructions"],
        interval_instructions=knobs["interval"],
    )


def _figure7_settings(scale: str) -> Figure7Settings:
    knobs = resolve_scale(scale)
    return Figure7Settings(
        categories=("H", "M", "L"),
        workloads_per_category=knobs["workloads"],
        instructions_per_core=knobs["instructions"],
        interval_instructions=knobs["interval"],
    )


@dataclass(frozen=True)
class BuiltinScenario:
    """One named, runnable scenario: its spec(s) plus a result aggregator."""

    name: str
    description: str
    build_specs: Callable[[str], tuple[ScenarioSpec, ...]]
    run: Callable[[str, int | None], object]  # returns a result with .report()


def _accuracy_specs(scale: str) -> tuple[ScenarioSpec, ...]:
    return (accuracy_sweep_spec(_sweep_settings(scale)),)


def _figure6_specs(scale: str) -> tuple[ScenarioSpec, ...]:
    return (figure6_spec(_figure6_settings(scale)),)


def _figure7_specs(scale: str) -> tuple[ScenarioSpec, ...]:
    settings = _figure7_settings(scale)
    return tuple(figure7_panel_spec(panel, settings) for panel in PANELS)


def _headline_sweep_settings(scale: str) -> SweepSettings:
    knobs = resolve_scale(scale)
    return SweepSettings(
        core_counts=tuple(n for n in (4, 8) if n in knobs["core_counts"]) or (4,),
        categories=("H", "M", "L"),
        workloads_per_category=knobs["workloads"],
        instructions_per_core=knobs["instructions"],
        interval_instructions=knobs["interval"],
        techniques=("ASM", "GDP", "GDP-O"),
    )


def _headline_figure6_settings(scale: str) -> Figure6Settings:
    settings = _figure6_settings(scale)
    core_counts = tuple(n for n in (4, 8) if n in settings.core_counts) or (4,)
    return Figure6Settings(
        core_counts=core_counts,
        categories=settings.categories,
        workloads_per_category=settings.workloads_per_category,
        instructions_per_core=settings.instructions_per_core,
        interval_instructions=settings.interval_instructions,
    )


def _headline_specs(scale: str) -> tuple[ScenarioSpec, ...]:
    return (
        accuracy_sweep_spec(_headline_sweep_settings(scale), name="headline-accuracy"),
        figure6_spec(_headline_figure6_settings(scale), name="headline-throughput"),
    )


def _run_figure3(scale: str, jobs: int | None):
    return run_figure3(sweep=run_accuracy_sweep(_sweep_settings(scale), jobs=jobs))


def _run_figure4(scale: str, jobs: int | None):
    return run_figure4(sweep=run_accuracy_sweep(_sweep_settings(scale), jobs=jobs))


def _run_figure5(scale: str, jobs: int | None):
    return run_figure5(sweep=run_accuracy_sweep(_sweep_settings(scale), jobs=jobs))


def _run_figure6(scale: str, jobs: int | None):
    return run_figure6(_figure6_settings(scale), jobs=jobs)


def _run_figure7(scale: str, jobs: int | None):
    return run_figure7(_figure7_settings(scale), jobs=jobs)


def _run_headline(scale: str, jobs: int | None):
    sweep = run_accuracy_sweep(_headline_sweep_settings(scale), jobs=jobs)
    figure6 = run_figure6(_headline_figure6_settings(scale), jobs=jobs)
    return run_headline_summary(accuracy_sweep=sweep, figure6=figure6)


def _run_generic(specs: Callable[[str], tuple[ScenarioSpec, ...]]):
    def run(scale: str, jobs: int | None):
        (spec,) = specs(scale)
        return run_scenario(spec, jobs=jobs)
    return run


BUILTINS: dict[str, BuiltinScenario] = {}


def _add(scenario: BuiltinScenario) -> None:
    BUILTINS[scenario.name] = scenario


_add(BuiltinScenario(
    "figure3", "Average private-mode IPC/stall prediction accuracy per cell",
    _accuracy_specs, _run_figure3))
_add(BuiltinScenario(
    "figure4", "Sorted distributions of the stall-cycle RMS errors",
    _accuracy_specs, _run_figure4))
_add(BuiltinScenario(
    "figure5", "Accuracy of GDP-O's CPL/overlap/latency estimate components",
    _accuracy_specs, _run_figure5))
_add(BuiltinScenario(
    "figure6", "System throughput under LLC partitioning (the MCP case study)",
    _figure6_specs, _run_figure6))
_add(BuiltinScenario(
    "figure7", "Sensitivity of GDP-O's accuracy to architecture knobs",
    _figure7_specs, _run_figure7))
_add(BuiltinScenario(
    "headline", "The paper's Section I/VII headline aggregates",
    _headline_specs, _run_headline))
_add(BuiltinScenario(
    "accuracy-sweep", "Generic accuracy sweep reported as raw engine tables",
    _accuracy_specs, _run_generic(_accuracy_specs)))
_add(BuiltinScenario(
    "partitioning-sweep", "Generic partitioning sweep reported as raw engine tables",
    _figure6_specs, _run_generic(_figure6_specs)))


def builtin_scenarios() -> tuple[BuiltinScenario, ...]:
    """All built-in scenarios, in catalogue order."""
    return tuple(BUILTINS.values())


def get_builtin(name: str) -> BuiltinScenario:
    """Look up a built-in scenario by name."""
    try:
        return BUILTINS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario '{name}' (built-ins: {', '.join(BUILTINS)}; "
            f"or pass a path to a JSON scenario spec)"
        ) from None
