"""Composite scenarios: a DAG of member scenarios with dependency-aware scheduling.

A :class:`CompositeSpec` names a set of member scenarios (each a full
:class:`~repro.scenarios.spec.ScenarioSpec`) connected by ``depends_on``
edges, optionally with *parameter references* that feed an upstream member's
output into a downstream member's spec — e.g. a ``policy_switching`` node
rotating exactly the policies a ``throughput`` node ranked best, estimated
with the technique an ``accuracy`` node found most accurate.  That is the
shape of the GDP paper's own evaluation: the accuracy sweeps feed the
attribution and policy case studies.

Like :class:`~repro.scenarios.spec.ScenarioSpec`, a composite is a frozen
value that round-trips losslessly through ``to_dict``/``from_dict`` (and JSON
files) and validates eagerly: duplicate or unknown node names, cycles,
references to nodes outside ``depends_on``, unknown selectors and
kind-incompatible selectors all raise
:class:`~repro.errors.ConfigurationError` before any simulation starts.
Member specs must be valid *standalone* — a referenced field (``techniques``
or ``policies``) carries its normal default until the reference overwrites it
at schedule time, so there are no placeholder values to invent.

:func:`run_composite` is the in-process topological scheduler: every node
whose dependencies are satisfied runs concurrently (one coordinating thread
per ready node; the sweep cells inside still fan out across the shared
process pool and content-addressed result cache), nodes whose whole-spec
digest hits an :class:`~repro.service.artifacts.ArtifactStore` are
short-circuited without touching the engine, and a member failure fails the
composite fast — no new nodes start, in-flight nodes drain, and the partial
results are reported via :class:`~repro.errors.CompositeExecutionError`.
The scenario service schedules the same plan through its job queue instead
(see :meth:`repro.service.jobs.JobManager.submit_composite`); both paths
assemble the result payload with :func:`assemble_payload` so they are
bit-identical.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable
from dataclasses import dataclass, field, replace
from statistics import mean

from repro.errors import CompositeExecutionError, ConfigurationError
from repro.experiments.common import default_experiment_config
from repro.scenarios.runner import run_scenario, scenario_digest
from repro.scenarios.spec import ScenarioSpec, _as_tuple, _reject_unknown_keys, _require_object

__all__ = [
    "PARAM_SELECTORS",
    "ParamRef",
    "CompositeNode",
    "CompositeSpec",
    "CompositeResult",
    "load_composite",
    "composite_digest",
    "resolve_node_spec",
    "assemble_payload",
    "run_composite",
]


# ------------------------------------------------------------------ selectors

def _column_scores(payload: dict, table_name: str, node: str) -> dict[str, float]:
    """Mean value per column of one summary table of a member payload."""
    tables = payload.get("tables") if isinstance(payload, dict) else None
    table = tables.get(table_name) if isinstance(tables, dict) else None
    if not isinstance(table, dict) or not table:
        raise ConfigurationError(
            f"composite node '{node}' produced no '{table_name}' table to "
            f"select a parameter from"
        )
    scores: dict[str, list[float]] = {}
    for row in table.values():
        for column, value in row.items():
            scores.setdefault(column, []).append(float(value))
    return {column: mean(values) for column, values in scores.items()}


def _ranked_techniques(payload: dict, node: str) -> tuple[str, ...]:
    """Accuracy-node techniques, most accurate (lowest mean IPC RMS) first."""
    scores = _column_scores(payload, "ipc_rms", node)
    return tuple(sorted(scores, key=lambda name: (scores[name], name)))


def _best_technique(payload: dict, node: str) -> tuple[str, ...]:
    return _ranked_techniques(payload, node)[:1]


def _ranked_policies(payload: dict, node: str) -> tuple[str, ...]:
    """Throughput-node policies, best (highest mean STP) first."""
    scores = _column_scores(payload, "average_stp", node)
    return tuple(sorted(scores, key=lambda name: (-scores[name], name)))


def _best_policy(payload: dict, node: str) -> tuple[str, ...]:
    return _ranked_policies(payload, node)[:1]


# name -> (extractor, required upstream kind, spec field the result may feed)
PARAM_SELECTORS: dict[str, tuple[Callable[[dict, str], tuple[str, ...]], str, str]] = {
    "best_technique": (_best_technique, "accuracy", "techniques"),
    "ranked_techniques": (_ranked_techniques, "accuracy", "techniques"),
    "best_policy": (_best_policy, "throughput", "policies"),
    "ranked_policies": (_ranked_policies, "throughput", "policies"),
}


# ------------------------------------------------------------------ the spec

@dataclass(frozen=True)
class ParamRef:
    """One upstream-result reference: ``into`` <- ``select`` (``source``)."""

    into: str
    source: str
    select: str

    def to_dict(self) -> dict:
        return {"into": self.into, "from": self.source, "select": self.select}

    @staticmethod
    def from_dict(data: dict) -> "ParamRef":
        _require_object(data, "parameter reference")
        _reject_unknown_keys(data, ("into", "from", "select"), "parameter reference")
        for key in ("into", "from", "select"):
            if key not in data:
                raise ConfigurationError(
                    f"a parameter reference needs 'into', 'from' and 'select'; "
                    f"missing {key!r}"
                )
        return ParamRef(into=str(data["into"]), source=str(data["from"]),
                        select=str(data["select"]))


@dataclass(frozen=True)
class CompositeNode:
    """One member scenario of a composite, plus its dependency edges."""

    name: str
    spec: ScenarioSpec
    depends_on: tuple[str, ...] = ()
    params: tuple[ParamRef, ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "spec": self.spec.to_dict(),
            "depends_on": list(self.depends_on),
            "params": [ref.to_dict() for ref in self.params],
        }

    @staticmethod
    def from_dict(data: dict) -> "CompositeNode":
        _require_object(data, "composite node")
        _reject_unknown_keys(data, ("name", "spec", "depends_on", "params"),
                             "composite node")
        if "name" not in data or "spec" not in data:
            raise ConfigurationError("each composite node needs 'name' and 'spec'")
        return CompositeNode(
            name=str(data["name"]),
            spec=ScenarioSpec.from_dict(data["spec"]),
            depends_on=_as_tuple(data.get("depends_on", ()), coerce=str),
            params=tuple(ParamRef.from_dict(ref) for ref in data.get("params", ())),
        )


@dataclass(frozen=True)
class CompositeSpec:
    """A complete, declarative description of one composite-scenario DAG."""

    name: str
    nodes: tuple[CompositeNode, ...]
    description: str = ""

    def node(self, name: str) -> CompositeNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigurationError(f"composite '{self.name}' has no node '{name}'")

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on the first invalid field."""
        if not self.name:
            raise ConfigurationError("a composite scenario needs a non-empty name")
        if not isinstance(self.description, str):
            raise ConfigurationError("description must be a string")
        if not self.nodes:
            raise ConfigurationError("a composite scenario needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            duplicate = next(name for name in names if names.count(name) > 1)
            raise ConfigurationError(
                f"composite node name '{duplicate}' appears twice — node names "
                f"address results and must be unique"
            )
        by_name = {node.name: node for node in self.nodes}
        for node in self.nodes:
            if not node.name:
                raise ConfigurationError("every composite node needs a non-empty name")
            node.spec.validate()
            for dependency in node.depends_on:
                if dependency == node.name:
                    raise ConfigurationError(
                        f"composite node '{node.name}' depends on itself"
                    )
                if dependency not in by_name:
                    raise ConfigurationError(
                        f"composite node '{node.name}' depends on unknown node "
                        f"'{dependency}' (known: {', '.join(sorted(by_name))})"
                    )
            if len(set(node.depends_on)) != len(node.depends_on):
                raise ConfigurationError(
                    f"composite node '{node.name}' lists a dependency twice"
                )
            seen_targets = set()
            for ref in node.params:
                if ref.select not in PARAM_SELECTORS:
                    raise ConfigurationError(
                        f"composite node '{node.name}': unknown selector "
                        f"'{ref.select}' (expected one of: "
                        f"{', '.join(sorted(PARAM_SELECTORS))})"
                    )
                _extract, required_kind, allowed_field = PARAM_SELECTORS[ref.select]
                if ref.into != allowed_field:
                    raise ConfigurationError(
                        f"composite node '{node.name}': selector '{ref.select}' "
                        f"produces {allowed_field}, not '{ref.into}'"
                    )
                if ref.source not in node.depends_on:
                    raise ConfigurationError(
                        f"composite node '{node.name}' references '{ref.source}' "
                        f"but does not list it in depends_on — parameter sources "
                        f"must be explicit dependencies"
                    )
                source_kind = by_name[ref.source].spec.kind
                if source_kind != required_kind:
                    raise ConfigurationError(
                        f"composite node '{node.name}': selector '{ref.select}' "
                        f"needs an upstream '{required_kind}' node, but "
                        f"'{ref.source}' is a '{source_kind}' scenario"
                    )
                if ref.into in seen_targets:
                    raise ConfigurationError(
                        f"composite node '{node.name}' assigns '{ref.into}' twice"
                    )
                seen_targets.add(ref.into)
        self.topological_order()

    def topological_order(self) -> list[str]:
        """Node names in a dependency-respecting order (Kahn's algorithm).

        Ready nodes are emitted in declaration order so the result is
        deterministic; a cycle raises :class:`ConfigurationError` naming the
        nodes involved.
        """
        remaining = {node.name: set(node.depends_on) for node in self.nodes}
        declared = [node.name for node in self.nodes]
        order: list[str] = []
        while remaining:
            ready = [name for name in declared
                     if name in remaining and not remaining[name]]
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise ConfigurationError(
                    f"composite '{self.name}' has a dependency cycle involving: {cycle}"
                )
            for name in ready:
                order.append(name)
                del remaining[name]
            for pending in remaining.values():
                pending.difference_update(ready)
        return order

    # ------------------------------------------------------------- round-trip

    def to_dict(self) -> dict:
        """A JSON-serialisable dict that :meth:`from_dict` restores exactly."""
        return {
            "name": self.name,
            "description": self.description,
            "nodes": [node.to_dict() for node in self.nodes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(data: dict) -> "CompositeSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a composite spec must be a JSON object, got {type(data).__name__}"
            )
        _reject_unknown_keys(data, ("name", "description", "nodes"), "composite")
        if "name" not in data or "nodes" not in data:
            raise ConfigurationError("a composite spec needs 'name' and 'nodes'")
        if not isinstance(data["nodes"], (list, tuple)):
            raise ConfigurationError("composite 'nodes' must be a JSON array")
        composite = CompositeSpec(
            name=str(data["name"]),
            description=data.get("description", ""),
            nodes=tuple(CompositeNode.from_dict(node) for node in data["nodes"]),
        )
        composite.validate()
        return composite

    @staticmethod
    def from_json(text: str) -> "CompositeSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"composite spec is not valid JSON: {error}"
            ) from None
        return CompositeSpec.from_dict(data)


def load_composite(path: str) -> CompositeSpec:
    """Load and validate a composite spec from a JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ConfigurationError(f"cannot read composite file {path}: {error}") from None
    return CompositeSpec.from_json(text)


def composite_digest(composite: CompositeSpec) -> str:
    """Content digest addressing the complete result of one composite spec.

    Folds in the same ambient batching knob the per-scenario digest folds in
    (see :func:`repro.scenarios.runner.scenario_digest`): member results
    depend on it, so the composite artifact must too.
    """
    from repro.sim.result_cache import content_digest
    from repro.sim.system import resolved_batch_cycles

    return content_digest(
        "composite-result", composite.to_dict(),
        extra=("batch_cycles", repr(resolved_batch_cycles())),
    )


# ------------------------------------------------------------------ resolution

def resolve_node_spec(node: CompositeNode,
                      upstream: dict[str, dict]) -> ScenarioSpec:
    """The member spec with every parameter reference applied and re-validated.

    ``upstream`` maps node names to finished member payloads
    (``run_scenario(...).to_dict()`` shape).  Selector failures and specs made
    invalid by the injected values raise :class:`ConfigurationError`.
    """
    if not node.params:
        return node.spec
    overrides: dict = {}
    for ref in node.params:
        if ref.source not in upstream:
            raise ConfigurationError(
                f"composite node '{node.name}' resolved before its dependency "
                f"'{ref.source}' finished — scheduler bug"
            )
        extract, _required_kind, _field = PARAM_SELECTORS[ref.select]
        overrides[ref.into] = extract(upstream[ref.source], ref.source)
    spec = replace(node.spec, **overrides)
    spec.validate()
    return spec


def assemble_payload(composite: CompositeSpec,
                     node_payloads: dict[str, dict],
                     resolved_specs: dict[str, ScenarioSpec],
                     node_cached: dict[str, bool]) -> dict:
    """The composite's JSON result payload (shared by CLI and service paths).

    ``nodes`` carries each member's complete result payload, bit-identical to
    running the member's resolved spec directly; ``resolved_specs`` records
    what each member actually ran after parameter injection.
    """
    order = [name for name in composite.topological_order() if name in node_payloads]
    return {
        "composite": composite.to_dict(),
        "nodes": {name: node_payloads[name] for name in order},
        "resolved_specs": {name: resolved_specs[name].to_dict() for name in order},
        "node_cached": {name: bool(node_cached.get(name, False)) for name in order},
    }


# ------------------------------------------------------------------ scheduler

NODE_PENDING = "pending"
NODE_RUNNING = "running"
NODE_DONE = "done"
NODE_FAILED = "failed"
NODE_SKIPPED = "skipped"


@dataclass
class CompositeResult:
    """The (possibly partial) outcome of executing one composite scenario."""

    composite: CompositeSpec
    node_payloads: dict[str, dict] = field(default_factory=dict)
    resolved_specs: dict[str, ScenarioSpec] = field(default_factory=dict)
    node_states: dict[str, str] = field(default_factory=dict)
    node_errors: dict[str, str] = field(default_factory=dict)
    node_cached: dict[str, bool] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.node_errors)

    def to_dict(self) -> dict:
        payload = assemble_payload(self.composite, self.node_payloads,
                                   self.resolved_specs, self.node_cached)
        if self.failed:
            payload["node_states"] = dict(self.node_states)
            payload["node_errors"] = dict(self.node_errors)
        return payload

    def report(self) -> str:
        from repro.experiments.tables import format_cell_table

        lines = [f"Composite '{self.composite.name}' "
                 f"({len(self.composite.nodes)} nodes)"]
        if self.composite.description:
            lines.append(self.composite.description)
        for name in self.composite.topological_order():
            state = self.node_states.get(name, NODE_PENDING)
            suffix = " (cached)" if self.node_cached.get(name) else ""
            lines.append(f"\n== node '{name}': {state}{suffix}")
            if name in self.node_errors:
                lines.append(f"   {self.node_errors[name]}")
                continue
            payload = self.node_payloads.get(name)
            if not payload:
                continue
            for table_name, cells in payload.get("tables", {}).items():
                lines.append(f"{table_name}")
                lines.append(format_cell_table(cells))
        return "\n".join(lines)


def _default_node_runner(spec: ScenarioSpec, jobs, cache, config_factory,
                         progress) -> dict:
    return run_scenario(spec, jobs=jobs, cache=cache,
                        config_factory=config_factory, progress=progress).to_dict()


def run_composite(composite: CompositeSpec, jobs: int | None = None,
                  cache: bool = True,
                  artifacts=None,
                  config_factory=default_experiment_config,
                  observer: Callable[[dict], None] | None = None,
                  node_runner=None) -> CompositeResult:
    """Execute a composite DAG, running every ready node concurrently.

    Each ready node gets a coordinating thread that resolves its parameter
    references against the finished upstream payloads and executes the member
    through the normal scenario runner — sweep cells fan out across the shared
    process pool and the content-addressed result cache exactly as a direct
    ``run_scenario`` call would, so member results are bit-identical to
    standalone runs.  When ``artifacts`` (an
    :class:`~repro.service.artifacts.ArtifactStore`) is given, a node whose
    whole-spec digest is already stored is short-circuited without touching
    the engine.

    On a member failure the composite fails fast: no new nodes start,
    in-flight nodes drain, downstream nodes are marked skipped, and a
    :class:`~repro.errors.CompositeExecutionError` carrying the partial
    :class:`CompositeResult` is raised.

    ``observer`` (optional) receives one dict per node transition —
    ``{"event": "node_start" | "node_cached" | "node_done" | "node_failed" |
    "node_skipped", "node": name, ...}`` — on whichever thread produced it.
    ``node_runner`` is injectable for tests: a callable
    ``(spec, jobs, cache, config_factory, progress) -> dict``.
    """
    composite.validate()
    runner = node_runner if node_runner is not None else _default_node_runner
    result = CompositeResult(composite=composite)
    result.node_states = {node.name: NODE_PENDING for node in composite.nodes}
    by_name = {node.name: node for node in composite.nodes}
    condition = threading.Condition()
    threads: list[threading.Thread] = []

    def notify(event: str, name: str, **extra) -> None:
        if observer is not None:
            observer({"event": event, "node": name, **extra})

    def run_node(name: str) -> None:
        node = by_name[name]
        try:
            with condition:
                spec = resolve_node_spec(node, result.node_payloads)
                result.resolved_specs[name] = spec
            payload = None
            if artifacts is not None:
                digest = scenario_digest(spec)
                payload = artifacts.get(digest)
            if payload is not None:
                cached = True
            else:
                cached = False

                def progress(done: int, total: int) -> None:
                    notify("node_progress", name, done=done, total=total)

                payload = runner(spec, jobs, cache, config_factory, progress)
                if artifacts is not None:
                    artifacts.put(digest, payload)
        except Exception as error:  # noqa: BLE001 — a node must never kill the scheduler
            with condition:
                result.node_states[name] = NODE_FAILED
                result.node_errors[name] = f"{type(error).__name__}: {error}"
                condition.notify_all()
            notify("node_failed", name, error=result.node_errors[name])
            return
        with condition:
            result.node_payloads[name] = payload
            result.node_cached[name] = cached
            result.node_states[name] = NODE_DONE
            condition.notify_all()
        notify("node_cached" if cached else "node_done", name)

    with condition:
        while True:
            if not result.node_errors:
                for node in composite.nodes:
                    if result.node_states[node.name] != NODE_PENDING:
                        continue
                    if all(result.node_states[dep] == NODE_DONE
                           for dep in node.depends_on):
                        result.node_states[node.name] = NODE_RUNNING
                        notify("node_start", node.name)
                        thread = threading.Thread(
                            target=run_node, args=(node.name,),
                            name=f"composite-{composite.name}-{node.name}",
                            daemon=True,
                        )
                        threads.append(thread)
                        thread.start()
            if not any(state == NODE_RUNNING for state in result.node_states.values()):
                if result.node_errors or all(
                    state == NODE_DONE for state in result.node_states.values()
                ):
                    break
                if not result.node_errors:
                    # Pending nodes but nothing running and nothing failed:
                    # unreachable for a validated (acyclic) DAG.
                    raise CompositeExecutionError(
                        f"composite '{composite.name}' stalled with pending nodes",
                        result=result,
                    )
            condition.wait()
    for thread in threads:
        thread.join()
    if result.node_errors:
        for name, state in result.node_states.items():
            if state == NODE_PENDING:
                result.node_states[name] = NODE_SKIPPED
                notify("node_skipped", name)
        failed = ", ".join(sorted(result.node_errors))
        first_error = result.node_errors[sorted(result.node_errors)[0]]
        raise CompositeExecutionError(
            f"composite '{composite.name}' failed at node(s) {failed}: {first_error}",
            result=result,
        )
    return result
