"""The on-demand scheduler: answer a query by evaluating waves of cells.

:func:`run_query` drives a :class:`~repro.scenarios.query.QuerySpec` to an
answer by repeatedly submitting small *waves* of sweep cells — through a
pluggable :class:`WaveExecutor` — and feeding the scores back into the
query's stopping rule.  Three drivers implement the three query kinds:

* ``best_of`` races one single-candidate *arm* spec per candidate, consuming
  the same cell prefix of every arm in lockstep so eliminations compare like
  with like.  With ``prefetch`` enabled the next wave is already in flight
  while the current one is scored, so eliminating a loser genuinely cancels
  running cells (through the executor's cancel path — the lease broker's
  ``CancelToken`` plumbing when executing remotely).  Prefetched outcomes of
  a wave that was never scored are discarded, so the cells *consumed* — and
  therefore the answer — are identical with prefetching on or off.
* ``adaptive_refinement`` evaluates a coarse subset of one axis's positions,
  then walks outward from the best position until the stopping rule calls
  the objective converged.
* ``confidence_sampling`` adds one workload per wave (wave *w* takes the
  cells with workload index *w* inside each core/group/axis block) and
  stops once the ranking is stable.

Every evaluated cell is an ordinary cell of an ordinary spec at its
ordinary :func:`~repro.scenarios.runner.expand_cells` position, executed
through the ordinary supervised path (cache, retries, faults) — so the
:class:`QueryResult`'s record of *exactly which* cells ran lets a full-grid
``run_scenario`` replay pin each one bit-identical.

The default :class:`InProcessWaveExecutor` runs waves on threads over the
shared process pool; the scenario service substitutes a broker-backed
executor (``repro.service.jobs``) that submits each wave as a child job
through the lease broker, scaling queries across the worker fleet.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.experiments.accuracy import summarize_rms
from repro.experiments.case_study import average_throughput
from repro.experiments.common import run_parallel
from repro.experiments.supervisor import CancelToken
from repro.faults import FaultPlan, plan_from_env
from repro.scenarios.query import QuerySpec
from repro.scenarios.runner import (
    EVALUATORS,
    TRACE_KEY_BUILDERS,
    axis_value_label,
    expand_cells,
)

__all__ = [
    "InProcessWaveExecutor",
    "QueryResult",
    "WaveExecutor",
    "format_query_payload",
    "run_query",
]


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def _notify(observer, event: dict) -> None:
    if observer is not None:
        observer(dict(event))


# ---------------------------------------------------------------- executors


class WaveExecutor:
    """Where query waves run.  ``start`` must not block on evaluation.

    ``start(spec, indices, label)`` launches the cells of ``spec`` at the
    given :func:`expand_cells` positions and returns a handle with two
    methods: ``wait()`` blocks until the wave resolves and returns a
    ``{global_index: outcome}`` dict (raising
    :class:`~repro.errors.JobCancelledError` if the wave was cancelled, or
    the evaluation error otherwise), and ``cancel()`` requests cooperative
    cancellation and returns immediately.
    """

    def start(self, spec, indices, label: str):
        raise NotImplementedError


class _InProcessHandle:
    def __init__(self, token: CancelToken):
        self.token = token
        self._done = threading.Event()
        self._result: dict | None = None
        self._error: BaseException | None = None

    def wait(self) -> dict:
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._result

    def cancel(self) -> None:
        self.token.cancel()


class InProcessWaveExecutor(WaveExecutor):
    """Run each wave on a thread through the supervised parallel path.

    Waves of different arms run concurrently (they share the persistent
    process pool), completed cells land in the content-addressed cache as
    they finish, and a cancelled wave unwinds at the next cell boundary —
    exactly the semantics a lease-holding worker has.
    """

    def __init__(self, jobs: int | None = None, cache: bool = True):
        self.jobs = jobs
        self.cache = cache
        self._plans: dict[int, tuple] = {}

    def _plan(self, spec):
        key = id(spec)
        if key not in self._plans:
            evaluator, cost_key = EVALUATORS[spec.kind]
            self._plans[key] = (expand_cells(spec), evaluator, cost_key, spec)
        return self._plans[key]

    def start(self, spec, indices, label: str) -> _InProcessHandle:
        cells, evaluator, cost_key, _ = self._plan(spec)
        indices = list(indices)
        tasks = [cells[index].task for index in indices]
        # Mirror the LocalPool: remap the fault plan to the wave's slice and
        # never let run_parallel fall back to the environment plan with
        # unremapped indices.
        plan = spec.fault_plan if spec.fault_plan is not None else plan_from_env()
        plan = (plan if plan is not None else FaultPlan()).for_cells(indices)
        token = CancelToken()
        handle = _InProcessHandle(token)

        def work() -> None:
            try:
                outcomes = run_parallel(
                    evaluator, tasks, jobs=self.jobs, cost_key=cost_key,
                    cache=self.cache, cancel=token, fault_plan=plan,
                    trace_keys=TRACE_KEY_BUILDERS[spec.kind],
                )
            except BaseException as error:  # noqa: BLE001 — surfaced via wait()
                handle._error = error
            else:
                handle._result = dict(zip(indices, outcomes))
            finally:
                handle._done.set()

        thread = threading.Thread(target=work, daemon=True,
                                  name=f"wave-{label}")
        thread.start()
        return handle


# ------------------------------------------------------------------ scoring


def _arm_cell_score(race: str, candidate: str, outcome) -> float:
    """One cell's score for one best_of candidate, oriented higher-is-better."""
    if race == "policies":
        return float(outcome.stp.get(candidate, 0.0))
    return -summarize_rms([outcome], candidate)


def _objective_name(kind: str) -> tuple[str, bool]:
    """(human name, higher_is_better) of the kind's aggregate objective."""
    if kind == "throughput":
        return "average_stp", True
    return "ipc_rms", False


def _aggregate_objective(spec, results) -> float:
    """A cell set's best objective value, oriented higher-is-better.

    Throughput sweeps optimise the best policy's mean STP; accuracy sweeps
    optimise the best technique's mean IPC RMS (negated so that *higher*
    oriented scores are always better).
    """
    if spec.kind == "throughput":
        return max(average_throughput(results, policy)
                   for policy in spec.policies)
    return -min(summarize_rms(results, technique)
                for technique in spec.techniques)


def _candidate_scores(spec, results) -> dict[str, float]:
    """Raw per-candidate aggregate scores over a cell set."""
    if spec.kind == "throughput":
        return {policy: average_throughput(results, policy)
                for policy in spec.policies}
    return {technique: summarize_rms(results, technique)
            for technique in spec.techniques}


def _ranking(spec, results) -> tuple[str, ...]:
    """Best-first candidate ranking, tie-broken by name.

    Matches the composite ``best_*`` selectors' ``(-score, name)`` /
    ``(score, name)`` orders, so a query and a composite over the same
    cells rank candidates identically.
    """
    scores = _candidate_scores(spec, results)
    if spec.kind == "throughput":
        return tuple(sorted(scores, key=lambda name: (-scores[name], name)))
    return tuple(sorted(scores, key=lambda name: (scores[name], name)))


# ------------------------------------------------------------------- results


@dataclass
class QueryResult:
    """The answer plus an exact record of which cells were evaluated.

    ``evaluated`` maps arm name to ``{"spec": <spec dict>, "cells":
    [global indices]}`` — enough for a replay to run ``run_scenario`` on the
    very same spec and compare the listed cells bit-for-bit.  ``outcomes``
    keeps the raw consumed outcome objects (by arm, by global index) for
    in-process callers; it is deliberately absent from ``to_dict()``.
    """

    query: QuerySpec
    answer: dict
    evaluated: dict[str, dict]
    waves: list[dict]
    cells_evaluated: int
    cells_total: int
    outcomes: dict[str, dict[int, object]] = field(
        default_factory=dict, repr=False, compare=False)

    def to_dict(self) -> dict:
        saved = 0.0
        if self.cells_total:
            saved = 100.0 * (1.0 - self.cells_evaluated / self.cells_total)
        return {
            "query": self.query.to_dict(),
            "kind": self.query.kind,
            "answer": self.answer,
            "evaluated": self.evaluated,
            "waves": self.waves,
            "cells": {
                "evaluated": self.cells_evaluated,
                "total": self.cells_total,
                "saved_percent": round(saved, 2),
            },
        }

    def report(self) -> str:
        return format_query_payload(self.to_dict())


def format_query_payload(payload: dict) -> str:
    """Human-readable summary of a query result payload (dict form)."""
    query = payload.get("query", {})
    answer = payload.get("answer", {})
    cells = payload.get("cells", {})
    kind = payload.get("kind", query.get("kind", "?"))
    lines = [f"Query '{query.get('name', '?')}' ({kind})"]
    scores = answer.get("scores", {})
    if kind == "best_of":
        direction = "higher" if answer.get("higher_is_better") else "lower"
        lines.append(
            f"  winner: {answer.get('winner')} "
            f"({answer.get('objective')}, {direction} is better)"
        )
        if scores:
            ranked = sorted(scores.items(),
                            key=lambda item: (-item[1], item[0])
                            if answer.get("higher_is_better")
                            else (item[1], item[0]))
            lines.append("  scores: " + "  ".join(
                f"{name}={value:.4f}" for name, value in ranked))
        for drop in answer.get("eliminated", []):
            lines.append(
                f"  eliminated {drop['candidate']} after "
                f"{drop['after_cells']} cells"
            )
    elif kind == "adaptive_refinement":
        lines.append(
            f"  best {answer.get('axis')}: {answer.get('label')} "
            f"({answer.get('objective')} = {answer.get('score'):.4f})"
        )
        positions = answer.get("positions", {})
        if positions:
            lines.append("  evaluated: " + "  ".join(
                f"{label}={value:.4f}" for label, value in positions.items()))
    elif kind == "confidence_sampling":
        lines.append("  ranking: " + " > ".join(answer.get("ranking", [])))
        lines.append(
            f"  stable after {answer.get('workloads_used')} of "
            f"{answer.get('workloads_total')} workloads per group"
            if answer.get("stable")
            else "  ranking not stable — all workloads consumed"
        )
    evaluated = cells.get("evaluated")
    total = cells.get("total")
    lines.append(
        f"  cells: {evaluated}/{total} evaluated "
        f"({cells.get('saved_percent', 0.0):.1f}% of the grid skipped)"
    )
    return "\n".join(lines)


# ------------------------------------------------------------------- drivers


def run_query(query: QuerySpec, jobs: int | None = None, cache: bool = True,
              executor: WaveExecutor | None = None, observer=None,
              cancel: CancelToken | None = None) -> QueryResult:
    """Answer ``query`` by evaluating only the cells its question needs.

    ``executor`` defaults to the in-process
    :class:`InProcessWaveExecutor` (``jobs``/``cache`` configure it);
    ``observer``, when given, receives one dict per wave lifecycle event
    (``wave_started`` / ``wave_done`` / ``candidate_eliminated``) — the
    service forwards these onto the query job's SSE stream.  ``cancel``
    stops the query at the next wave boundary with
    :class:`~repro.errors.JobCancelledError`.
    """
    query.validate()
    if executor is None:
        executor = InProcessWaveExecutor(jobs=jobs, cache=cache)
    if cancel is None:
        cancel = CancelToken()
    if query.kind == "best_of":
        return _run_best_of(query, executor, observer, cancel)
    if query.kind == "adaptive_refinement":
        return _run_refinement(query, executor, observer, cancel)
    return _run_sampling(query, executor, observer, cancel)


def _run_best_of(query: QuerySpec, executor, observer,
                 cancel: CancelToken) -> QueryResult:
    race = query.resolved_race()
    rule = query.rule()
    candidates = list(query.candidates())
    arms = {name: query.arm_spec(name) for name in candidates}
    # Expansion does not depend on the candidate tuple, so every arm has the
    # same grid in the same order.
    grid = len(expand_cells(arms[candidates[0]]))
    samples: dict[str, list[float]] = {name: [] for name in candidates}
    outcomes: dict[str, dict[int, object]] = {name: {} for name in candidates}
    survivors = list(candidates)
    eliminated: list[dict] = []
    waves: list[dict] = []
    inflight: dict[str, tuple[list[int], object]] = {}
    current: dict[str, tuple[list[int], object]] = {}
    offset = 0
    wave_no = 0
    try:
        while offset < grid and len(survivors) > 1:
            cancel.raise_if_cancelled()
            count = min(query.wave_cells, grid - offset)
            indices = list(range(offset, offset + count))
            wave_no += 1
            for name in survivors:
                if name not in inflight:
                    inflight[name] = (
                        indices,
                        executor.start(arms[name], indices,
                                       f"{name}#{wave_no}"),
                    )
                _notify(observer, {"event": "wave_started", "wave": wave_no,
                                   "arm": name, "cells": count})
            current = {name: inflight.pop(name) for name in survivors}
            # Prefetch: launch every survivor's next wave before scoring this
            # one, so losers have cells genuinely in flight to cancel.
            if query.prefetch and offset + count < grid:
                ahead = list(range(offset + count,
                                   min(offset + count + query.wave_cells,
                                       grid)))
                for name in survivors:
                    inflight[name] = (
                        ahead,
                        executor.start(arms[name], ahead,
                                       f"{name}#{wave_no + 1}"),
                    )
            for name in survivors:
                wave_indices, handle = current[name]
                got = handle.wait()
                del current[name]  # consumed: nothing left to cancel
                for index in wave_indices:
                    outcomes[name][index] = got[index]
                    samples[name].append(
                        _arm_cell_score(race, name, got[index]))
                _notify(observer, {"event": "wave_done", "wave": wave_no,
                                   "arm": name, "cells": count,
                                   "consumed": len(samples[name])})
            waves.append({"wave": wave_no, "arms": list(survivors),
                          "offset": offset, "cells": count})
            offset += count
            for loser in rule.eliminate(
                    {name: samples[name] for name in survivors}):
                survivors.remove(loser)
                pending = inflight.pop(loser, None)
                if pending is not None:
                    pending[1].cancel()
                eliminated.append({"candidate": loser,
                                   "after_cells": len(samples[loser])})
                _notify(observer, {"event": "candidate_eliminated",
                                   "candidate": loser,
                                   "after_cells": len(samples[loser])})
    finally:
        # The answer is decided (or the query failed/was cancelled):
        # anything still in flight — prefetched waves, and the rest of a
        # wave whose wait was interrupted — was speculative; cancel it.
        # Completed cells stay cached.
        for _, handle in (*inflight.values(), *current.values()):
            handle.cancel()
    means = {name: _mean(samples[name]) for name in survivors}
    winner = min(survivors, key=lambda name: (-means[name], name))
    objective, higher_is_better = _objective_name(query.base.kind)
    raw_scores = {
        name: (_mean(values) if race == "policies" else -_mean(values))
        for name, values in samples.items() if values
    }
    answer = {
        "race": race,
        "winner": winner,
        "decided": len(survivors) == 1,
        "objective": objective,
        "higher_is_better": higher_is_better,
        "scores": raw_scores,
        "eliminated": eliminated,
    }
    evaluated = {
        name: {"spec": arms[name].to_dict(),
               "cells": sorted(outcomes[name])}
        for name in candidates
    }
    return QueryResult(
        query=query, answer=answer, evaluated=evaluated, waves=waves,
        cells_evaluated=sum(len(cells) for cells in outcomes.values()),
        cells_total=grid * len(candidates),
        outcomes=outcomes,
    )


def _run_refinement(query: QuerySpec, executor, observer,
                    cancel: CancelToken) -> QueryResult:
    spec = query.base
    axis = query.resolved_axis()
    axis_position = [a.name for a in spec.axes].index(axis.name)
    cells = expand_cells(spec)
    labels = [axis_value_label(axis, value) for value in axis.values]
    label_to_position = {label: position
                         for position, label in enumerate(labels)}
    positions: dict[int, list[int]] = {}
    for index, cell in enumerate(cells):
        label = cell.key[2].split("/")[axis_position]
        positions.setdefault(label_to_position[label], []).append(index)
    total_values = len(axis.values)
    rule = query.rule()
    consumed: dict[int, object] = {}
    position_scores: dict[int, float] = {}
    waves: list[dict] = []
    wave_no = 0

    def evaluate(wanted: list[int], round_name: str) -> None:
        nonlocal wave_no
        handles = []
        for position in wanted:
            wave_no += 1
            indices = positions[position]
            _notify(observer, {"event": "wave_started", "wave": wave_no,
                               "arm": labels[position], "round": round_name,
                               "cells": len(indices)})
            handles.append((wave_no, position, indices,
                            executor.start(spec, indices,
                                           f"{labels[position]}#{wave_no}")))
        for at, (number, position, indices, handle) in enumerate(handles):
            try:
                got = handle.wait()
            except BaseException:
                # An interrupted round must not strand its sibling waves.
                for _, _, _, pending in handles[at:]:
                    pending.cancel()
                raise
            for index in indices:
                consumed[index] = got[index]
            position_scores[position] = _aggregate_objective(
                spec, [got[index] for index in indices])
            waves.append({"wave": number, "arms": [labels[position]],
                          "round": round_name, "cells": len(indices)})
            _notify(observer, {"event": "wave_done", "wave": number,
                               "arm": labels[position], "round": round_name,
                               "cells": len(indices)})

    cancel.raise_if_cancelled()
    coarse = sorted(set(range(0, total_values, query.coarse_step))
                    | {total_values - 1})
    evaluate(coarse, "coarse")
    previous_best: float | None = None
    while True:
        cancel.raise_if_cancelled()
        best_position = min(position_scores,
                            key=lambda p: (-position_scores[p], p))
        best = position_scores[best_position]
        if rule.converged(previous_best, best):
            break
        neighbours = [p for p in (best_position - 1, best_position + 1)
                      if 0 <= p < total_values and p not in position_scores]
        if not neighbours:
            break
        previous_best = best
        evaluate(neighbours, "refine")
    objective, higher_is_better = _objective_name(spec.kind)
    orient = 1.0 if higher_is_better else -1.0
    answer = {
        "axis": axis.name,
        "value": axis.values[best_position],
        "label": labels[best_position],
        "objective": objective,
        "higher_is_better": higher_is_better,
        "score": orient * position_scores[best_position],
        "positions": {labels[p]: orient * position_scores[p]
                      for p in sorted(position_scores)},
    }
    evaluated = {spec.name: {"spec": spec.to_dict(),
                             "cells": sorted(consumed)}}
    return QueryResult(
        query=query, answer=answer, evaluated=evaluated, waves=waves,
        cells_evaluated=len(consumed), cells_total=len(cells),
        outcomes={spec.name: consumed},
    )


def _run_sampling(query: QuerySpec, executor, observer,
                  cancel: CancelToken) -> QueryResult:
    spec = query.base
    cells = expand_cells(spec)
    per_group = spec.workloads.per_group
    rule = query.rule()
    consumed: dict[int, object] = {}
    results: list = []
    rankings: list[tuple[str, ...]] = []
    waves: list[dict] = []
    used = 0
    for wave_no in range(1, per_group + 1):
        cancel.raise_if_cancelled()
        # Workloads are the innermost expansion loop: within each
        # core/group/axis block of `per_group` consecutive cells, position
        # w-1 is workload w.  The generator draws workloads sequentially
        # from one seeded RNG, so wave w everywhere samples the same
        # workload the full grid has at that position.
        indices = [index for index in range(len(cells))
                   if index % per_group == wave_no - 1]
        _notify(observer, {"event": "wave_started", "wave": wave_no,
                           "arm": spec.name, "cells": len(indices)})
        handle = executor.start(spec, indices, f"sample#{wave_no}")
        got = handle.wait()
        for index in indices:
            consumed[index] = got[index]
            results.append(got[index])
        used = wave_no
        rankings.append(_ranking(spec, results))
        waves.append({"wave": wave_no, "arms": [spec.name],
                      "cells": len(indices),
                      "ranking": list(rankings[-1])})
        _notify(observer, {"event": "wave_done", "wave": wave_no,
                           "arm": spec.name, "cells": len(indices),
                           "ranking": list(rankings[-1])})
        if rule.stable(rankings):
            break
    objective, higher_is_better = _objective_name(spec.kind)
    answer = {
        "ranking": list(rankings[-1]),
        "stable": rule.stable(rankings),
        "objective": objective,
        "higher_is_better": higher_is_better,
        "scores": _candidate_scores(spec, results),
        "workloads_used": used,
        "workloads_total": per_group,
    }
    evaluated = {spec.name: {"spec": spec.to_dict(),
                             "cells": sorted(consumed)}}
    return QueryResult(
        query=query, answer=answer, evaluated=evaluated, waves=waves,
        cells_evaluated=len(consumed), cells_total=len(cells),
        outcomes={spec.name: consumed},
    )
