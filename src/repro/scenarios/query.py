"""Query specs: question-shaped scenarios answered without the full grid.

A :class:`QuerySpec` wraps a base :class:`~repro.scenarios.spec.ScenarioSpec`
with a *question* and a :mod:`~repro.scenarios.stopping` rule; the on-demand
scheduler (:mod:`repro.scenarios.ondemand`) then evaluates only the cells the
question needs:

* ``best_of`` — race the base spec's candidate ``policies`` or
  ``techniques`` head-to-head, one single-candidate arm each, eliminating
  losers wave by wave until one winner stands.
* ``adaptive_refinement`` — evaluate a coarse sub-grid of one sweep axis,
  then refine positions neighbouring the current optimum until the stopping
  rule reports convergence.
* ``confidence_sampling`` — add one workload per wave (the generator draws
  workloads sequentially from one seeded RNG, so ``per_group=k`` is a strict
  prefix of ``per_group=N``) and stop once the candidate ranking is stable.

Like ``ScenarioSpec``/``CompositeSpec``, a query spec is a frozen,
JSON-round-trippable value object: ``to_dict``/``from_dict`` are lossless,
validation rejects malformed input with precise messages, and
:func:`query_digest` addresses the complete query *answer* in the artifact
store the same way ``scenario_digest`` addresses a full sweep result.

Cells evaluated on behalf of a query are ordinary scenario cells of ordinary
(arm) specs — the result records exactly which, so a full-grid replay can
pin every one bit-identical to ``run_scenario`` on the same spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.registry import suggest_name
from repro.scenarios.spec import (
    ScenarioSpec,
    _is_positive_int,
    _reject_unknown_keys,
    _require_object,
)
from repro.scenarios.stopping import DEFAULT_RULES, StoppingRule, rule_from_dict

__all__ = [
    "QUERY_KINDS",
    "QuerySpec",
    "load_query",
    "query_digest",
]

QUERY_KINDS = ("best_of", "adaptive_refinement", "confidence_sampling")

# Which base scenario kind each race is scored on: a policy race compares
# per-policy system throughput, a technique race compares per-technique
# estimation error.
_RACE_BASE_KINDS = {"policies": "throughput", "techniques": "accuracy"}

_QUERY_FIELDS = ("name", "kind", "base", "race", "axis", "coarse_step",
                 "wave_cells", "prefetch", "stopping", "description")


@dataclass(frozen=True)
class QuerySpec:
    """A declarative on-demand query over one base scenario spec."""

    name: str
    kind: str
    base: ScenarioSpec
    race: str | None = None          # best_of: "policies" | "techniques"
    axis: str | None = None          # adaptive_refinement: axis to refine
    coarse_step: int = 2             # adaptive_refinement: coarse stride
    wave_cells: int = 1              # best_of: cells per candidate per wave
    prefetch: bool = False           # best_of: pipeline the next wave
    stopping: StoppingRule | None = None
    description: str = ""

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("query 'name' must be a non-empty string")
        if self.kind not in QUERY_KINDS:
            raise ConfigurationError(
                f"unknown query kind '{self.kind}' "
                f"(expected one of: {', '.join(QUERY_KINDS)})"
                f"{suggest_name(self.kind, QUERY_KINDS)}"
            )
        if not isinstance(self.base, ScenarioSpec):
            raise ConfigurationError(
                "query 'base' must be a ScenarioSpec, "
                f"got {type(self.base).__name__}"
            )
        self.base.validate()
        if not _is_positive_int(self.wave_cells):
            raise ConfigurationError(
                f"query 'wave_cells' must be a positive integer, "
                f"got {self.wave_cells!r}"
            )
        if not isinstance(self.prefetch, bool):
            raise ConfigurationError(
                f"query 'prefetch' must be a boolean, got {self.prefetch!r}"
            )
        if not isinstance(self.description, str):
            raise ConfigurationError("query 'description' must be a string")
        if self.kind == "best_of":
            self._validate_best_of()
        else:
            if self.race is not None:
                raise ConfigurationError(
                    f"query 'race' only applies to best_of queries "
                    f"(kind is '{self.kind}')"
                )
            if self.prefetch:
                raise ConfigurationError(
                    "query 'prefetch' only applies to best_of queries "
                    f"(kind is '{self.kind}')"
                )
        if self.kind == "adaptive_refinement":
            self._validate_refinement()
        elif self.axis is not None:
            raise ConfigurationError(
                f"query 'axis' only applies to adaptive_refinement queries "
                f"(kind is '{self.kind}')"
            )
        if self.kind == "confidence_sampling":
            self._validate_sampling()
        if self.stopping is not None and not isinstance(self.stopping,
                                                        StoppingRule):
            raise ConfigurationError(
                "query 'stopping' must be a StoppingRule (use rule_from_dict "
                f"for plain dicts), got {type(self.stopping).__name__}"
            )
        rule = self.rule()
        rule.validate()
        if self.kind not in rule.KINDS:
            raise ConfigurationError(
                f"stopping rule '{rule.RULE}' applies to "
                f"{', '.join(rule.KINDS)} queries, not '{self.kind}'"
            )

    def _validate_best_of(self) -> None:
        race = self.resolved_race()
        expected = _RACE_BASE_KINDS[race]
        if self.base.kind != expected:
            raise ConfigurationError(
                f"a best_of race over {race} needs a '{expected}' base "
                f"scenario (got kind '{self.base.kind}')"
            )
        candidates = self.candidates()
        if len(candidates) < 2:
            raise ConfigurationError(
                f"a best_of race needs at least two candidate {race}, "
                f"got {list(candidates)!r}"
            )

    def _validate_refinement(self) -> None:
        if self.base.kind not in ("throughput", "accuracy"):
            raise ConfigurationError(
                "adaptive_refinement needs a 'throughput' or 'accuracy' "
                f"base scenario (got kind '{self.base.kind}')"
            )
        if not self.base.axes:
            raise ConfigurationError(
                "adaptive_refinement needs a base scenario with at least "
                "one sweep axis"
            )
        axis = self.resolved_axis()
        if len(axis.values) < 3:
            raise ConfigurationError(
                f"adaptive_refinement axis '{axis.name}' needs at least "
                f"three values to refine, got {len(axis.values)}"
            )
        if not _is_positive_int(self.coarse_step) or self.coarse_step < 2:
            raise ConfigurationError(
                f"query 'coarse_step' must be an integer >= 2, "
                f"got {self.coarse_step!r}"
            )

    def _validate_sampling(self) -> None:
        if self.base.kind not in ("throughput", "accuracy"):
            raise ConfigurationError(
                "confidence_sampling needs a 'throughput' or 'accuracy' "
                f"base scenario (got kind '{self.base.kind}')"
            )
        if self.base.workloads.per_group < 2:
            raise ConfigurationError(
                "confidence_sampling needs workloads.per_group >= 2 in the "
                "base scenario — there is nothing to sample otherwise"
            )

    # ------------------------------------------------------------- resolution

    def rule(self) -> StoppingRule:
        """The explicit stopping rule, or the kind's default."""
        if self.stopping is not None:
            return self.stopping
        return DEFAULT_RULES[self.kind]

    def resolved_race(self) -> str:
        """Which candidate set a best_of query races (derived from the base)."""
        if self.race is not None:
            if self.race not in _RACE_BASE_KINDS:
                raise ConfigurationError(
                    f"unknown race '{self.race}' (expected one of: "
                    f"{', '.join(_RACE_BASE_KINDS)})"
                    f"{suggest_name(self.race, _RACE_BASE_KINDS)}"
                )
            return self.race
        if self.base.kind == "throughput":
            return "policies"
        if self.base.kind == "accuracy":
            return "techniques"
        raise ConfigurationError(
            "cannot derive a race from a "
            f"'{self.base.kind}' base scenario; set 'race' explicitly"
        )

    def candidates(self) -> tuple[str, ...]:
        """The names racing in a best_of query."""
        if self.resolved_race() == "policies":
            return self.base.policies
        return self.base.techniques

    def arm_spec(self, candidate: str) -> ScenarioSpec:
        """The single-candidate scenario spec one best_of arm evaluates.

        Scoring is per-candidate-independent in both races (each policy's
        STP comes from its own shared run; each technique estimates on its
        own accounting pass), so a single-candidate arm's cells score
        identically to the joint sweep's — and ``run_scenario`` on this very
        spec is the full-grid replay the result's cell record points at.
        """
        if self.resolved_race() == "policies":
            return replace(self.base, policies=(candidate,),
                           name=f"{self.base.name}::{candidate}")
        return replace(self.base, techniques=(candidate,),
                       name=f"{self.base.name}::{candidate}")

    def resolved_axis(self):
        """The SweepAxis an adaptive_refinement query refines."""
        if self.axis is None:
            if len(self.base.axes) == 1:
                return self.base.axes[0]
            raise ConfigurationError(
                "the base scenario sweeps "
                f"{len(self.base.axes)} axes; set 'axis' to pick one of: "
                f"{', '.join(axis.name for axis in self.base.axes)}"
            )
        for axis in self.base.axes:
            if axis.name == self.axis:
                return axis
        names = tuple(axis.name for axis in self.base.axes)
        raise ConfigurationError(
            f"axis '{self.axis}' is not swept by the base scenario "
            f"(axes: {', '.join(names) or 'none'})"
            f"{suggest_name(self.axis, names)}"
        )

    # ------------------------------------------------------------- round-trip

    def to_dict(self) -> dict:
        data: dict = {
            "name": self.name,
            "kind": self.kind,
            "base": self.base.to_dict(),
            "wave_cells": self.wave_cells,
            "prefetch": self.prefetch,
        }
        if self.race is not None:
            data["race"] = self.race
        if self.axis is not None:
            data["axis"] = self.axis
        if self.kind == "adaptive_refinement":
            data["coarse_step"] = self.coarse_step
        if self.stopping is not None:
            data["stopping"] = self.stopping.to_dict()
        if self.description:
            data["description"] = self.description
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "QuerySpec":
        _require_object(data, "query")
        _reject_unknown_keys(data, _QUERY_FIELDS, "query")
        if "base" not in data:
            raise ConfigurationError("query is missing the 'base' scenario spec")
        stopping = None
        if data.get("stopping") is not None:
            stopping = rule_from_dict(data["stopping"])
        query = cls(
            name=data.get("name", ""),
            kind=data.get("kind", ""),
            base=ScenarioSpec.from_dict(data["base"]),
            race=data.get("race"),
            axis=data.get("axis"),
            coarse_step=data.get("coarse_step", 2),
            wave_cells=data.get("wave_cells", 1),
            prefetch=data.get("prefetch", False),
            stopping=stopping,
            description=data.get("description", ""),
        )
        query.validate()
        return query

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"query JSON does not parse: {error}") from None
        return cls.from_dict(data)


def load_query(path) -> QuerySpec:
    """Load and validate a query spec from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ConfigurationError(f"cannot read query file {path}: {error}") from None
    return QuerySpec.from_json(text)


def query_digest(query: QuerySpec) -> str:
    """Content digest addressing the complete answer of one query spec.

    Mirrors :func:`~repro.scenarios.runner.scenario_digest`: the ambient
    batch-cycles knob is folded in, and the base spec's fault plan is not —
    faults script the execution path, never the result.
    """
    from repro.sim.result_cache import content_digest
    from repro.sim.system import resolved_batch_cycles

    material = query.to_dict()
    material["base"].pop("fault_plan", None)
    return content_digest(
        "query-result", material,
        extra=("batch_cycles", repr(resolved_batch_cycles())),
    )
