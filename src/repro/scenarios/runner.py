"""Generic scenario runner: spec -> sweep cells -> parallel execution.

The runner expands a :class:`~repro.scenarios.spec.ScenarioSpec` into a flat
list of (workload, config) sweep cells, evaluates them through the shared
persistent process pool, and groups the raw per-workload results by
``(n_cores, group, axis_label)``.  Every cell is a pure function of its
argument tuple, so the content-addressed result cache
(:mod:`repro.sim.result_cache`) serves warm reruns for free, and the figure
adapters built on top stay bit-identical to the pre-engine harnesses (pinned
by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from itertools import product

from repro.config import DDR2_800, DDR4_2666, KILOBYTE, CMPConfig
from repro.errors import ConfigurationError
from repro.experiments.accuracy import evaluate_workload_accuracy, summarize_rms
from repro.experiments.attribution import (
    ATTRIBUTION_COMPONENTS,
    evaluate_workload_attribution,
    summarize_attribution,
)
from repro.experiments.case_study import average_throughput, evaluate_workload_throughput
from repro.experiments.common import default_experiment_config, run_parallel
from repro.experiments.policy_switch import (
    evaluate_workload_policy_switch,
    summarize_estimated_ipc,
    summarize_switches,
)
from repro.experiments.tables import format_cell_table
from repro.registry import workload_generators
from repro.scenarios.spec import ScenarioSpec, SweepAxis

__all__ = [
    "ScenarioCell",
    "ScenarioResult",
    "assemble_result",
    "axis_value_label",
    "expand_cells",
    "run_scenario",
    "scenario_digest",
]


def scenario_digest(spec: ScenarioSpec) -> str:
    """Content digest addressing the complete result of one scenario spec.

    Folds in the same ambient knob the cell cache folds into task digests:
    a different co-simulation batch slack simulates different interleavings,
    so it must address different scenario artifacts too.  The scenario
    service's artifact store keys whole-scenario payloads by this digest.
    """
    from repro.sim.result_cache import content_digest
    from repro.sim.system import resolved_batch_cycles

    material = spec.to_dict()
    # Fault plans script the execution path, never the result: a faulted run
    # must address the same artifact as its fault-free twin (the chaos tests
    # assert bit-identical payloads across the two).
    material.pop("fault_plan", None)
    return content_digest(
        "scenario-result", material,
        extra=("batch_cycles", repr(resolved_batch_cycles())),
    )


@dataclass(frozen=True)
class ScenarioCell:
    """One executable sweep cell: an argument tuple for the kind's evaluator."""

    key: tuple[int, str, str]  # (n_cores, group, axis_label)
    task: tuple


@dataclass
class ScenarioResult:
    """Raw per-workload results of one scenario, grouped by cell key.

    ``cells`` maps ``(n_cores, group, axis_label)`` — ``axis_label`` is ``""``
    for scenarios without sweep axes — to the list of per-workload results
    (:class:`~repro.experiments.accuracy.WorkloadAccuracy` for accuracy
    scenarios, :class:`~repro.experiments.case_study.WorkloadThroughput` for
    throughput scenarios) in workload-generation order.
    """

    spec: ScenarioSpec
    cells: dict[tuple[int, str, str], list] = field(default_factory=dict)

    def results(self, n_cores: int, group: str, axis_label: str = "") -> list:
        return self.cells.get((n_cores, group, axis_label), [])

    def cell_label(self, key: tuple[int, str, str]) -> str:
        n_cores, group, axis_label = key
        label = f"{n_cores}c-{group}"
        return f"{label}@{axis_label}" if axis_label else label

    def tables(self) -> dict[str, dict[str, dict[str, float]]]:
        """Summary tables: {table name: {row label: {column: value}}}.

        Accuracy scenarios report the mean per-benchmark RMS error of the IPC
        and stall-cycle estimates per technique; throughput scenarios report
        the average system throughput per policy.  With sweep axes, columns
        are the axis labels and one table is emitted per metric/technique.
        """
        if self.spec.kind == "throughput":
            return {"average_stp": self._metric_table(
                lambda results, policy: average_throughput(results, policy),
                self.spec.policies,
            )}
        if self.spec.kind == "interference_attribution":
            return {"interference_attribution": self._metric_table(
                lambda results, metric: summarize_attribution(results, metric),
                ATTRIBUTION_COMPONENTS,
            )}
        if self.spec.kind == "policy_switching":
            return {
                "mean_estimated_ipc": self._metric_table(
                    lambda results, technique: summarize_estimated_ipc(results, technique),
                    self.spec.techniques,
                ),
                "policy_switches": self._metric_table(
                    lambda results, _column: summarize_switches(results),
                    ("switches",),
                ),
            }
        tables: dict[str, dict[str, dict[str, float]]] = {}
        for metric in ("ipc", "stall"):
            table = self._metric_table(
                lambda results, technique, _metric=metric: summarize_rms(
                    results, technique, metric=_metric
                ),
                self.spec.techniques,
            )
            tables[f"{metric}_rms"] = table
        return tables

    def _metric_table(self, aggregate: Callable[[list, str], float],
                      columns: tuple[str, ...]) -> dict[str, dict[str, float]]:
        if not self.spec.axes:
            return {
                self.cell_label(key): {
                    column: aggregate(results, column) for column in columns
                }
                for key, results in self.cells.items()
            }
        # Axis sweeps pivot the axis labels into the columns, one row per
        # (cell, column) pair so the table stays two-dimensional.
        table: dict[str, dict[str, float]] = {}
        for (n_cores, group, axis_label), results in self.cells.items():
            for column in columns:
                row = f"{n_cores}c-{group}" if len(columns) == 1 else \
                    f"{n_cores}c-{group}:{column}"
                table.setdefault(row, {})[axis_label] = aggregate(results, column)
        return table

    def report(self) -> str:
        lines = [f"Scenario '{self.spec.name}' ({self.spec.kind})"]
        if self.spec.description:
            lines.append(self.spec.description)
        for table_name, cells in self.tables().items():
            lines.append(f"\n{table_name}")
            lines.append(format_cell_table(cells))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (spec + aggregate tables + any details).

        For the time-series kinds the aggregate tables alone would discard
        the scenario's actual product, so ``details`` carries the per-cell
        raw payloads: the per-benchmark slowdown decomposition for
        ``interference_attribution`` and the sampled policy/IPC traces for
        ``policy_switching``.
        """
        # An injected fault plan never changes what a scenario computes (the
        # contract in :mod:`repro.faults`), so it must not change the
        # serialised payload either: faulted and fault-free runs of the same
        # scenario stay bit-identical and share one artifact-cache entry.
        spec_payload = self.spec.to_dict()
        spec_payload.pop("fault_plan", None)
        payload = {"scenario": spec_payload, "tables": self.tables()}
        details = self.details()
        if details:
            payload["details"] = details
        return payload

    def details(self) -> dict:
        """Per-cell detail payloads (JSON-serialisable; empty for kinds whose
        tables already carry everything)."""
        if self.spec.kind == "interference_attribution":
            return {
                self.cell_label(key): [
                    {
                        "benchmark": benchmark.benchmark,
                        "core": benchmark.core,
                        "shared_cpi": benchmark.shared_cpi,
                        "private_cpi": benchmark.private_cpi,
                        "slowdown": benchmark.slowdown,
                        "total_interference_cycles": benchmark.total_interference_cycles,
                        "cache_interference_cycles": benchmark.cache_interference_cycles,
                        "ring_interference_cycles": benchmark.ring_interference_cycles,
                        "dram_interference_cycles": benchmark.dram_interference_cycles,
                        "interference_misses": benchmark.interference_misses,
                        "sms_loads": benchmark.sms_loads,
                    }
                    for result in results
                    for benchmark in result.benchmarks
                ]
                for key, results in self.cells.items()
            }
        if self.spec.kind == "policy_switching":
            return {
                self.cell_label(key): [
                    {
                        "workload": "+".join(trace.workload.benchmarks),
                        "policy_sequence": list(trace.policy_sequence),
                        "switch_interval_cycles": trace.switch_interval_cycles,
                        "switch_count": trace.switch_count,
                        "samples": [
                            {
                                "time": sample.time,
                                "policy": sample.policy,
                                "switched": sample.switched,
                                "allocation": (
                                    {str(core): ways for core, ways
                                     in sample.allocation.items()}
                                    if sample.allocation is not None else None
                                ),
                                "shared_ipc": {
                                    str(core): ipc for core, ipc
                                    in sample.shared_ipc.items()
                                },
                                "estimated_ipc": {
                                    technique: {str(core): ipc for core, ipc
                                                in per_core.items()}
                                    for technique, per_core
                                    in sample.estimated_ipc.items()
                                },
                            }
                            for sample in trace.samples
                        ],
                    }
                    for trace in results
                ]
                for key, results in self.cells.items()
            }
        return {}


# ------------------------------------------------------------------ expansion


def axis_value_label(axis: SweepAxis, value) -> str:
    """Human-readable label for one axis value (matches the Figure 7 labels)."""
    if axis.name == "llc_size_kb":
        return f"{value}KB"
    return str(value)


def _apply_axis(config: CMPConfig, axis_name: str, value,
                prb_override: int | None) -> tuple[CMPConfig, int | None]:
    """Fold one axis value into the cell's configuration (or PRB override).

    The PRB size is deliberately kept out of the config and passed as the
    evaluator's ``prb_entries`` argument, mirroring how the pre-engine
    Figure 7e harness expressed it: the evaluator applies it via
    ``config.with_prb_entries`` itself, so both forms simulate identically.
    """
    if axis_name == "llc_size_kb":
        return config.with_llc(size_bytes=value * KILOBYTE), prb_override
    if axis_name == "llc_associativity":
        return config.with_llc(associativity=value), prb_override
    if axis_name == "dram_channels":
        return config.with_dram(channels=value), prb_override
    if axis_name == "dram_interface":
        timing = DDR2_800 if value == "DDR2" else DDR4_2666
        return config.with_dram(timing=timing), prb_override
    if axis_name == "prb_entries":
        return config, value
    raise ConfigurationError(f"unknown sweep axis '{axis_name}'")


def _axis_variants(spec: ScenarioSpec, base_config: CMPConfig):
    """Yield (axis_label, config, prb_override) for the spec's axis product."""
    if not spec.axes:
        yield "", base_config, None
        return
    value_lists = [axis.values for axis in spec.axes]
    for combination in product(*value_lists):
        config = base_config
        prb_override: int | None = None
        labels = []
        for axis, value in zip(spec.axes, combination):
            config, prb_override = _apply_axis(config, axis.name, value, prb_override)
            labels.append(axis_value_label(axis, value))
        yield "/".join(labels), config, prb_override


def _accuracy_task(spec: ScenarioSpec, workload, config: CMPConfig,
                   prb_override: int | None) -> tuple:
    task = (
        workload,
        config,
        spec.instructions_per_core,
        spec.interval_instructions,
        spec.workloads.seed,
        spec.techniques,
        spec.collect_components,
    )
    # Only prb_entries sweeps pass the optional eighth argument; all other
    # cells use the accuracy-sweep 7-tuple form (the pre-engine Figure 7
    # harness always passed an explicit trailing None, so its cells hash to
    # new cache digests once — the results are identical either way).
    if prb_override is not None:
        task = (*task, prb_override)
    return task


def _throughput_task(spec: ScenarioSpec, workload, config: CMPConfig,
                     prb_override: int | None) -> tuple:
    # The throughput evaluator has no prb_entries argument; the policies read
    # the PRB size from the configuration, so a prb_entries axis folds into
    # the config here.
    if prb_override is not None:
        config = config.with_prb_entries(prb_override)
    return (
        workload,
        config,
        spec.policies,
        spec.instructions_per_core,
        spec.interval_instructions,
        spec.repartition_interval_cycles,
        spec.workloads.seed,
    )


def _accuracy_cell_cost(args: tuple) -> float:
    """Relative cost of one accuracy cell: cores x instructions dominates."""
    workload, _config, instructions_per_core = args[0], args[1], args[2]
    return float(len(workload.benchmarks) * instructions_per_core)


def _throughput_cell_cost(args: tuple) -> float:
    """Relative cost of one case-study cell: one shared run per policy plus
    one private run per core, all proportional to the instruction count."""
    workload, _config, policies, instructions_per_core = args[0], args[1], args[2], args[3]
    return float(len(workload.benchmarks) * (len(policies) + 1) * instructions_per_core)


def _attribution_task(spec: ScenarioSpec, workload, config: CMPConfig,
                      prb_override: int | None) -> tuple:
    if prb_override is not None:
        config = config.with_prb_entries(prb_override)
    return (
        workload,
        config,
        spec.instructions_per_core,
        spec.interval_instructions,
        spec.workloads.seed,
    )


def _attribution_cell_cost(args: tuple) -> float:
    """One shared run plus one private run per core."""
    workload, _config, instructions_per_core = args[0], args[1], args[2]
    return float(len(workload.benchmarks) * 2 * instructions_per_core)


def _policy_switch_task(spec: ScenarioSpec, workload, config: CMPConfig,
                        prb_override: int | None) -> tuple:
    if prb_override is not None:
        config = config.with_prb_entries(prb_override)
    return (
        workload,
        config,
        spec.policies,
        spec.techniques,
        spec.instructions_per_core,
        spec.interval_instructions,
        spec.repartition_interval_cycles,
        spec.workloads.seed,
        spec.policy_switch_cycles,
    )


def _policy_switch_cell_cost(args: tuple) -> float:
    """A single shared run, proportional to cores times instructions."""
    workload, _config, _policies, _techniques, instructions_per_core = (
        args[0], args[1], args[2], args[3], args[4]
    )
    return float(len(workload.benchmarks) * instructions_per_core)


def _workload_trace_keys(workload, instructions_per_core: int,
                         seed: int) -> list[tuple]:
    """The ``build_trace`` keys one cell's evaluator will request.

    Every evaluator ultimately routes through
    :func:`repro.sim.runner.run_workload`, which builds one trace per core
    with ``seed + core`` — these keys mirror that exactly, so a batched sweep
    can publish precisely the traces its workers would otherwise regenerate.
    """
    return [
        (name, instructions_per_core, seed + core)
        for core, name in enumerate(workload.benchmarks)
    ]


def _accuracy_trace_keys(args: tuple) -> list[tuple]:
    return _workload_trace_keys(args[0], args[2], args[4])


def _throughput_trace_keys(args: tuple) -> list[tuple]:
    return _workload_trace_keys(args[0], args[3], args[6])


def _attribution_trace_keys(args: tuple) -> list[tuple]:
    return _workload_trace_keys(args[0], args[2], args[4])


def _policy_switch_trace_keys(args: tuple) -> list[tuple]:
    return _workload_trace_keys(args[0], args[4], args[7])


EVALUATORS: dict[str, tuple[Callable, Callable[[tuple], float]]] = {
    "accuracy": (evaluate_workload_accuracy, _accuracy_cell_cost),
    "throughput": (evaluate_workload_throughput, _throughput_cell_cost),
    "interference_attribution": (evaluate_workload_attribution, _attribution_cell_cost),
    "policy_switching": (evaluate_workload_policy_switch, _policy_switch_cell_cost),
}

TRACE_KEY_BUILDERS: dict[str, Callable[[tuple], list[tuple]]] = {
    "accuracy": _accuracy_trace_keys,
    "throughput": _throughput_trace_keys,
    "interference_attribution": _attribution_trace_keys,
    "policy_switching": _policy_switch_trace_keys,
}

TASK_BUILDERS: dict[str, Callable] = {
    "accuracy": _accuracy_task,
    "throughput": _throughput_task,
    "interference_attribution": _attribution_task,
    "policy_switching": _policy_switch_task,
}


def expand_cells(spec: ScenarioSpec,
                 config_factory=default_experiment_config) -> list[ScenarioCell]:
    """Expand a validated spec into its flat, ordered list of sweep cells.

    Ordering is core counts, then workload groups, then axis combinations,
    then workloads — the same nesting the hardwired figure harnesses used, so
    serial evaluation visits cells in the familiar order (parallel execution
    returns results in this submission order regardless).
    """
    generator = workload_generators.get(spec.workloads.generator)
    cells: list[ScenarioCell] = []
    for n_cores in spec.machine.core_counts:
        if spec.machine.llc_kilobytes is None:
            base_config = config_factory(n_cores)
        else:
            try:
                base_config = config_factory(n_cores, spec.machine.llc_kilobytes)
            except TypeError as error:
                # A custom single-parameter factory cannot honour an explicit
                # LLC size; surface that as a configuration problem instead
                # of a raw TypeError from deep inside expansion.
                raise ConfigurationError(
                    f"machine.llc_kilobytes requires a config factory accepting "
                    f"(n_cores, llc_kilobytes); {config_factory!r} rejected the "
                    f"call ({error})"
                ) from None
        for group in spec.workloads.groups:
            workloads = generator(
                n_cores, group, spec.workloads.per_group, spec.workloads.seed
            )
            for axis_label, config, prb_override in _axis_variants(spec, base_config):
                for workload in workloads:
                    builder = TASK_BUILDERS[spec.kind]
                    task = builder(spec, workload, config, prb_override)
                    cells.append(ScenarioCell(key=(n_cores, group, axis_label), task=task))
    return cells


def assemble_result(spec: ScenarioSpec, cells: list[ScenarioCell],
                    outcomes: list) -> ScenarioResult:
    """Group per-cell outcomes (in :func:`expand_cells` order) into a result.

    The single place scenario results are assembled: the in-process
    :func:`run_scenario` path and the lease broker — which collects outcomes
    cell-by-cell from a fleet of workers — both call it, so a distributed
    run's payload is bit-identical to a single-node run's by construction.
    """
    result = ScenarioResult(spec=spec)
    for cell, outcome in zip(cells, outcomes):
        result.cells.setdefault(cell.key, []).append(outcome)
    return result


def run_scenario(spec: ScenarioSpec, jobs: int | None = None,
                 config_factory=default_experiment_config,
                 cache: bool = True,
                 progress: Callable[[int, int], None] | None = None,
                 cancel=None) -> ScenarioResult:
    """Execute every cell of a scenario and group the raw results.

    All cells — across groups, core counts and axis values — are flattened
    into one task list and fanned through
    :func:`repro.experiments.common.run_parallel`, so they share the
    persistent process pool, largest-cells-first scheduling, the
    content-addressed result cache and the cell supervisor's retry/timeout
    machinery.  Results are deterministic and independent of the worker
    count.  ``progress`` is forwarded to :func:`run_parallel` and reports
    completed/total sweep cells; ``cancel`` (a
    :class:`~repro.experiments.supervisor.CancelToken`) stops the sweep at
    the next cell boundary with :class:`~repro.errors.JobCancelledError`.

    A ``spec.fault_plan`` wins over any ``REPRO_FAULT_PLAN`` environment
    plan; its cell indices address positions in :func:`expand_cells` order.
    """
    spec.validate()
    evaluator, cost_key = EVALUATORS[spec.kind]
    cells = expand_cells(spec, config_factory=config_factory)
    outcomes = run_parallel(
        evaluator, [cell.task for cell in cells], jobs=jobs, cost_key=cost_key,
        cache=cache, progress=progress, cancel=cancel,
        fault_plan=spec.fault_plan,
        trace_keys=TRACE_KEY_BUILDERS[spec.kind],
    )
    return assemble_result(spec, cells, outcomes)
