"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures everything the generic runner needs to
execute an experiment — the machine, the workload mix, the estimators or
policies (as registry names), the sweep axes and the instruction/interval
budgets — as a frozen value that round-trips losslessly through
``to_dict``/``from_dict`` (and therefore JSON files).  Validation raises
:class:`~repro.errors.ConfigurationError` with the offending field named, so
a typo in a JSON scenario fails before any simulation starts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro import registry

__all__ = [
    "AXIS_NAMES",
    "SCENARIO_KINDS",
    "MachineSpec",
    "WorkloadMixSpec",
    "SweepAxis",
    "ScenarioSpec",
    "load_spec",
]

# ``accuracy`` runs private-mode estimation error evaluation (Figures 3-5 and
# 7); ``throughput`` runs the partitioning case study (Figure 6);
# ``interference_attribution`` decomposes each application's slowdown into
# cache/ring/DRAM interference; ``policy_switching`` records a time series of
# estimated IPC and partition decisions while the policy rotates mid-run.
SCENARIO_KINDS = (
    "accuracy",
    "throughput",
    "interference_attribution",
    "policy_switching",
)

# Sweep axes understood by the runner; each varies one machine knob of
# Section VII-D across the listed values.
AXIS_NAMES = (
    "llc_size_kb",
    "llc_associativity",
    "dram_channels",
    "dram_interface",
    "prb_entries",
)

DRAM_INTERFACE_NAMES = ("DDR2", "DDR4")

def _as_tuple(value, coerce=None) -> tuple:
    if isinstance(value, (list, tuple)):
        items = tuple(value)
    else:
        items = (value,)
    if coerce is not None:
        items = tuple(coerce(item) for item in items)
    return items


def _require_object(data, context: str) -> dict:
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"the {context} section must be a JSON object, got {type(data).__name__}"
        )
    return data


def _reject_unknown_keys(data: dict, known: tuple[str, ...], context: str) -> None:
    unknown = sorted(str(key) for key in set(data) - set(known))
    if unknown:
        raise ConfigurationError(
            f"unknown {context} field(s): {', '.join(unknown)} "
            f"(expected a subset of: {', '.join(known)})"
        )


def _is_positive_int(value) -> bool:
    # bool is a subclass of int: JSON true/false must not pass as 1/0.
    return isinstance(value, int) and not isinstance(value, bool) and value > 0


@dataclass(frozen=True)
class MachineSpec:
    """The CMP(s) a scenario runs on.

    ``llc_kilobytes`` of ``None`` selects the per-core-count experiment
    default (the scaled Table I sizes of
    :data:`repro.experiments.common.EXPERIMENT_LLC_KILOBYTES`).
    """

    core_counts: tuple[int, ...] = (2, 4, 8)
    llc_kilobytes: int | None = None

    def validate(self) -> None:
        if not self.core_counts:
            raise ConfigurationError("machine.core_counts must name at least one CMP")
        for n_cores in self.core_counts:
            if not _is_positive_int(n_cores):
                raise ConfigurationError(
                    f"machine.core_counts entries must be positive integers, got {n_cores!r}"
                )
        if len(set(self.core_counts)) != len(self.core_counts):
            raise ConfigurationError(
                "machine.core_counts lists a core count twice — duplicate cells "
                "would silently double the simulation work"
            )
        if self.llc_kilobytes is not None and not _is_positive_int(self.llc_kilobytes):
            raise ConfigurationError("machine.llc_kilobytes must be a positive integer when set")

    @staticmethod
    def from_dict(data: dict) -> "MachineSpec":
        _require_object(data, "machine")
        _reject_unknown_keys(data, ("core_counts", "llc_kilobytes"), "machine")
        spec = MachineSpec(
            core_counts=_as_tuple(data.get("core_counts", (2, 4, 8))),
            llc_kilobytes=data.get("llc_kilobytes"),
        )
        return spec


@dataclass(frozen=True)
class WorkloadMixSpec:
    """Which multi-programmed workloads to generate.

    ``generator`` names an entry of
    :data:`repro.registry.workload_generators`; ``groups`` are its group
    arguments — H/M/L categories for ``"category"``, per-core mix strings
    such as ``"HMLL"`` for ``"mixed"``, and either for ``"auto"``.
    """

    generator: str = "auto"
    groups: tuple[str, ...] = ("H", "M", "L")
    per_group: int = 2
    seed: int = 0

    def validate(self) -> None:
        # Registry.get raises the uniform unknown-name ConfigurationError
        # (registered list + did-you-mean suggestion).
        registry.workload_generators.get(self.generator)
        if not self.groups:
            raise ConfigurationError("workloads.groups must name at least one group")
        if len(set(self.groups)) != len(self.groups):
            raise ConfigurationError(
                "workloads.groups lists a group twice — duplicate cells would "
                "silently double the simulation work"
            )
        if not _is_positive_int(self.per_group):
            raise ConfigurationError("workloads.per_group must be a positive integer")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError("workloads.seed must be an integer")

    @staticmethod
    def from_dict(data: dict) -> "WorkloadMixSpec":
        _require_object(data, "workloads")
        _reject_unknown_keys(data, ("generator", "groups", "per_group", "seed"), "workloads")
        return WorkloadMixSpec(
            generator=data.get("generator", "auto"),
            groups=_as_tuple(data.get("groups", ("H", "M", "L")), coerce=str),
            per_group=data.get("per_group", 2),
            seed=data.get("seed", 0),
        )


@dataclass(frozen=True)
class SweepAxis:
    """One machine knob swept across several values (Figure 7 style)."""

    name: str
    values: tuple

    def validate(self) -> None:
        if self.name not in AXIS_NAMES:
            raise ConfigurationError(
                f"unknown sweep axis '{self.name}' (expected one of: {', '.join(AXIS_NAMES)})"
            )
        if not self.values:
            raise ConfigurationError(f"sweep axis '{self.name}' needs at least one value")
        if self.name == "dram_interface":
            for value in self.values:
                if value not in DRAM_INTERFACE_NAMES:
                    raise ConfigurationError(
                        f"axis 'dram_interface' values must be one of "
                        f"{'/'.join(DRAM_INTERFACE_NAMES)}, got {value!r}"
                    )
        else:
            for value in self.values:
                if not _is_positive_int(value):
                    raise ConfigurationError(
                        f"axis '{self.name}' values must be positive integers, got {value!r}"
                    )
        # Values are all hashable by now (type checks above ran first).
        if len(set(self.values)) != len(self.values):
            raise ConfigurationError(
                f"sweep axis '{self.name}' lists a value twice — duplicate cells "
                f"would silently double the simulation work"
            )

    @staticmethod
    def from_dict(data: dict) -> "SweepAxis":
        _require_object(data, "axis")
        _reject_unknown_keys(data, ("name", "values"), "axis")
        if "name" not in data or "values" not in data:
            raise ConfigurationError("each sweep axis needs 'name' and 'values'")
        return SweepAxis(name=data["name"], values=_as_tuple(data["values"]))


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative description of one experiment scenario."""

    name: str
    kind: str
    machine: MachineSpec = field(default_factory=MachineSpec)
    workloads: WorkloadMixSpec = field(default_factory=WorkloadMixSpec)
    # Defaults are everything registered *at spec-construction time*, in
    # registration order (= the paper's Figure 3/6 column order).
    techniques: tuple[str, ...] = field(
        default_factory=registry.accounting_techniques.names)
    policies: tuple[str, ...] = field(
        default_factory=registry.partitioning_policies.names)
    axes: tuple[SweepAxis, ...] = ()
    instructions_per_core: int = 24_000
    interval_instructions: int = 6_000
    repartition_interval_cycles: float = 40_000.0
    # Cycle period at which a policy_switching scenario advances to the next
    # policy of the sequence; None derives it from the repartition interval.
    policy_switch_cycles: float | None = None
    collect_components: bool = False
    description: str = ""
    # Deterministic fault injection for chaos testing (:mod:`repro.faults`).
    # Deliberately excluded from :func:`~repro.scenarios.runner.scenario_digest`:
    # faults change the execution path, never the result, so a faulted run
    # must share cache entries and artifacts with its fault-free twin.
    fault_plan: FaultPlan | None = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on the first invalid field."""
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"unknown scenario kind '{self.kind}' "
                f"(expected one of: {', '.join(SCENARIO_KINDS)})"
                f"{registry.suggest_name(self.kind, SCENARIO_KINDS)}"
            )
        self.machine.validate()
        self.workloads.validate()
        self._validate_groups()
        # Both name lists are checked regardless of kind: a typo'd entry in
        # the list the kind ignores would otherwise pass silently.
        # Registry.get raises the uniform unknown-name ConfigurationError
        # (registered list + did-you-mean suggestion).
        for technique in self.techniques:
            registry.accounting_techniques.get(technique)
        for policy in self.policies:
            registry.partitioning_policies.get(policy)
        if self.kind == "accuracy" and not self.techniques:
            raise ConfigurationError("an accuracy scenario needs at least one technique")
        if self.kind == "throughput" and not self.policies:
            raise ConfigurationError("a throughput scenario needs at least one policy")
        if self.kind == "policy_switching":
            if not self.policies:
                raise ConfigurationError(
                    "a policy_switching scenario needs at least one policy to rotate"
                )
            if not self.techniques:
                raise ConfigurationError(
                    "a policy_switching scenario needs at least one technique "
                    "to produce the estimated-IPC time series"
                )
        seen_axes = set()
        for axis in self.axes:
            axis.validate()
            if axis.name in seen_axes:
                raise ConfigurationError(f"sweep axis '{axis.name}' appears twice")
            seen_axes.add(axis.name)
        if not _is_positive_int(self.instructions_per_core):
            raise ConfigurationError("instructions_per_core must be a positive integer")
        if not _is_positive_int(self.interval_instructions):
            raise ConfigurationError("interval_instructions must be a positive integer")
        if (not isinstance(self.repartition_interval_cycles, (int, float))
                or isinstance(self.repartition_interval_cycles, bool)
                or self.repartition_interval_cycles <= 0):
            raise ConfigurationError("repartition_interval_cycles must be a positive number")
        if self.policy_switch_cycles is not None and (
                not isinstance(self.policy_switch_cycles, (int, float))
                or isinstance(self.policy_switch_cycles, bool)
                or self.policy_switch_cycles <= 0):
            raise ConfigurationError(
                "policy_switch_cycles must be a positive number when set"
            )
        if not isinstance(self.collect_components, bool):
            raise ConfigurationError(
                "collect_components must be a JSON boolean (true/false)"
            )
        if not isinstance(self.description, str):
            raise ConfigurationError("description must be a string")
        if self.fault_plan is not None:
            if not isinstance(self.fault_plan, FaultPlan):
                raise ConfigurationError(
                    "fault_plan must be a FaultPlan (build one with "
                    "FaultPlan.from_dict)"
                )
            self.fault_plan.validate()

    def _validate_groups(self) -> None:
        """Check group names against the *built-in* workload generators.

        The built-in generators only understand H/M/L categories and per-core
        mix strings, so a typo'd group must fail here with a configuration
        error rather than deep inside workload generation.  User-registered
        generators define their own group vocabulary and are not constrained.
        """
        generator = self.workloads.generator
        if generator not in ("category", "mixed", "auto"):
            return
        categories = {"H", "M", "L"}
        for group in self.workloads.groups:
            is_category = generator == "category" or (generator == "auto" and len(group) == 1)
            if is_category:
                if group not in categories:
                    raise ConfigurationError(
                        f"unknown workload category '{group}' (expected H, M or L)"
                    )
                continue
            if not set(group) <= categories:
                raise ConfigurationError(
                    f"workload mix '{group}' may only contain the letters H, M and L"
                )
            for n_cores in self.machine.core_counts:
                if len(group) != n_cores:
                    raise ConfigurationError(
                        f"workload mix '{group}' names {len(group)} cores per "
                        f"workload but machine.core_counts includes {n_cores}"
                    )

    # ------------------------------------------------------------- dict round-trip

    def to_dict(self) -> dict:
        """A JSON-serialisable dict that :meth:`from_dict` restores exactly."""
        payload = {
            "name": self.name,
            "kind": self.kind,
            "machine": {
                "core_counts": list(self.machine.core_counts),
                "llc_kilobytes": self.machine.llc_kilobytes,
            },
            "workloads": {
                "generator": self.workloads.generator,
                "groups": list(self.workloads.groups),
                "per_group": self.workloads.per_group,
                "seed": self.workloads.seed,
            },
            "techniques": list(self.techniques),
            "policies": list(self.policies),
            "axes": [
                {"name": axis.name, "values": list(axis.values)} for axis in self.axes
            ],
            "instructions_per_core": self.instructions_per_core,
            "interval_instructions": self.interval_instructions,
            "repartition_interval_cycles": self.repartition_interval_cycles,
            "policy_switch_cycles": self.policy_switch_cycles,
            "collect_components": self.collect_components,
            "description": self.description,
        }
        # Omitted when unset so pre-existing specs round-trip byte-identically.
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.to_dict()
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        """Build and validate a spec from a plain dict (e.g. a parsed JSON file)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"a scenario spec must be a JSON object, got {type(data).__name__}"
            )
        known = tuple(spec_field.name for spec_field in fields(ScenarioSpec))
        _reject_unknown_keys(data, known, "scenario")
        if "name" not in data or "kind" not in data:
            raise ConfigurationError("a scenario spec needs 'name' and 'kind'")
        spec = ScenarioSpec(name=data["name"], kind=data["kind"])
        overrides: dict = {}
        if "machine" in data:
            overrides["machine"] = MachineSpec.from_dict(data["machine"])
        if "workloads" in data:
            overrides["workloads"] = WorkloadMixSpec.from_dict(data["workloads"])
        if "techniques" in data:
            overrides["techniques"] = _as_tuple(data["techniques"], coerce=str)
        if "policies" in data:
            overrides["policies"] = _as_tuple(data["policies"], coerce=str)
        if "axes" in data:
            overrides["axes"] = tuple(SweepAxis.from_dict(axis) for axis in data["axes"])
        if data.get("fault_plan") is not None:
            overrides["fault_plan"] = FaultPlan.from_dict(data["fault_plan"])
        for scalar in ("instructions_per_core", "interval_instructions",
                       "repartition_interval_cycles", "policy_switch_cycles",
                       "collect_components", "description"):
            if scalar in data:
                overrides[scalar] = data[scalar]
        if overrides:
            spec = replace(spec, **overrides)
        spec.validate()
        return spec

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"scenario spec is not valid JSON: {error}") from None
        return ScenarioSpec.from_dict(data)


def load_spec(path: str) -> ScenarioSpec:
    """Load and validate a scenario spec from a JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ConfigurationError(f"cannot read scenario file {path}: {error}") from None
    return ScenarioSpec.from_json(text)
