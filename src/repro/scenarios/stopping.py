"""Stopping rules deciding when an on-demand query has seen enough cells.

A :class:`~repro.scenarios.query.QuerySpec` answers a question ("which
policy wins?", "where does the accuracy frontier settle?", "is the ranking
stable?") without materialising its base scenario's full sweep grid.  The
*stopping rule* is the pluggable piece that turns partial evidence into a
termination decision:

* ``margin`` — eliminate a ``best_of`` candidate once it trails the leader
  by more than a fixed score margin (with a minimum sample count before any
  elimination fires).
* ``confidence`` — eliminate a candidate once the paired per-cell score
  differences against the leader clear a z-score threshold.
* ``tolerance`` — stop an ``adaptive_refinement`` query once another round
  of refinement improves the best objective by less than a tolerance.
* ``stable_ranking`` — stop ``confidence_sampling`` once the candidate
  ranking has not changed for a number of consecutive waves.

Rules live in a :class:`~repro.registry.Registry` (same did-you-mean
failure modes as techniques/policies), round-trip through JSON dicts via
``rule.to_dict()`` / :func:`rule_from_dict`, and declare which query kinds
they apply to so validation can reject e.g. ``tolerance`` on a ``best_of``
query up front.

All decisions are pure functions of the samples handed in — rules hold no
mutable state, so a query replayed from cached cells reaches the identical
decision at the identical point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.registry import Registry, suggest_name
from repro.scenarios.spec import _reject_unknown_keys, _require_object

__all__ = [
    "ConfidenceRule",
    "DEFAULT_RULES",
    "MarginRule",
    "StableRankingRule",
    "StoppingRule",
    "ToleranceRule",
    "rule_from_dict",
    "stopping_rules",
]

stopping_rules = Registry("stopping rule")


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def _as_float(value, field: str, rule: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"stopping rule '{rule}' field '{field}' must be a number, "
            f"got {value!r}"
        )
    return float(value)


def _as_positive_int(value, field: str, rule: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigurationError(
            f"stopping rule '{rule}' field '{field}' must be a positive "
            f"integer, got {value!r}"
        )
    return int(value)


def _leader(scores: dict[str, float]) -> str:
    """The best-scoring name under the canonical (-score, name) order.

    Scores are *oriented* — higher is always better by the time a rule sees
    them (accuracy RMS arrives negated) — and ties break alphabetically,
    matching the composite ``best_*`` selectors so a query and a composite
    over the same cells name the same winner.
    """
    return min(scores, key=lambda name: (-scores[name], name))


class StoppingRule:
    """Interface shared by all stopping rules (subclasses are frozen)."""

    RULE = ""
    KINDS: tuple[str, ...] = ()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range parameters."""

    def to_dict(self) -> dict:
        raise NotImplementedError

    # Each rule implements only the decision methods its query kinds call:
    # ``eliminate`` for best_of, ``converged`` for adaptive_refinement,
    # ``stable`` for confidence_sampling.

    def eliminate(self, samples: dict[str, list[float]]) -> tuple[str, ...]:
        raise NotImplementedError  # pragma: no cover - kind-gated

    def converged(self, previous_best: float | None, best: float) -> bool:
        raise NotImplementedError  # pragma: no cover - kind-gated

    def stable(self, rankings: list[tuple[str, ...]]) -> bool:
        raise NotImplementedError  # pragma: no cover - kind-gated


@dataclass(frozen=True)
class MarginRule(StoppingRule):
    """Drop candidates trailing the leader's mean score by more than ``margin``.

    ``min_cells`` guards against deciding on a single noisy cell: no
    elimination fires until every surviving candidate has that many scored
    cells.  ``margin`` is in the score's own units (STP for throughput
    races, IPC RMS for accuracy races).
    """

    margin: float = 0.0
    min_cells: int = 2

    RULE = "margin"
    KINDS = ("best_of",)

    def validate(self) -> None:
        if not isinstance(self.margin, (int, float)) or isinstance(self.margin, bool):
            raise ConfigurationError(
                f"stopping rule 'margin' field 'margin' must be a number, "
                f"got {self.margin!r}"
            )
        if self.margin < 0:
            raise ConfigurationError(
                f"stopping rule 'margin' requires margin >= 0, got {self.margin}"
            )
        _as_positive_int(self.min_cells, "min_cells", "margin")

    def to_dict(self) -> dict:
        return {"rule": self.RULE, "margin": self.margin,
                "min_cells": self.min_cells}

    @classmethod
    def from_dict(cls, data: dict) -> "MarginRule":
        _reject_unknown_keys(data, ("rule", "margin", "min_cells"),
                             "stopping rule 'margin'")
        rule = cls(
            margin=_as_float(data.get("margin", 0.0), "margin", "margin"),
            min_cells=_as_positive_int(data.get("min_cells", 2),
                                       "min_cells", "margin"),
        )
        rule.validate()
        return rule

    def eliminate(self, samples: dict[str, list[float]]) -> tuple[str, ...]:
        if any(len(values) < self.min_cells for values in samples.values()):
            return ()
        scores = {name: _mean(values) for name, values in samples.items()}
        lead = scores[_leader(scores)]
        return tuple(
            name for name in samples if lead - scores[name] > self.margin
        )


@dataclass(frozen=True)
class ConfidenceRule(StoppingRule):
    """Drop candidates whose paired deficit against the leader clears ``z``.

    For each candidate the rule forms per-cell paired differences
    ``leader_score - candidate_score`` (cells are evaluated in lockstep, so
    the pairing is exact) and eliminates the candidate once the mean deficit
    exceeds ``z`` standard errors.  A zero-variance deficit eliminates on
    sign alone — the candidate loses every cell by the same amount.
    """

    z: float = 1.96
    min_cells: int = 2

    RULE = "confidence"
    KINDS = ("best_of",)

    def validate(self) -> None:
        if (not isinstance(self.z, (int, float)) or isinstance(self.z, bool)
                or self.z <= 0):
            raise ConfigurationError(
                f"stopping rule 'confidence' requires z > 0, got {self.z!r}"
            )
        if self.min_cells < 2:
            raise ConfigurationError(
                "stopping rule 'confidence' requires min_cells >= 2 "
                f"(a standard error needs at least two samples), got {self.min_cells}"
            )

    def to_dict(self) -> dict:
        return {"rule": self.RULE, "z": self.z, "min_cells": self.min_cells}

    @classmethod
    def from_dict(cls, data: dict) -> "ConfidenceRule":
        _reject_unknown_keys(data, ("rule", "z", "min_cells"),
                             "stopping rule 'confidence'")
        rule = cls(
            z=_as_float(data.get("z", 1.96), "z", "confidence"),
            min_cells=_as_positive_int(data.get("min_cells", 2),
                                       "min_cells", "confidence"),
        )
        rule.validate()
        return rule

    def eliminate(self, samples: dict[str, list[float]]) -> tuple[str, ...]:
        if any(len(values) < self.min_cells for values in samples.values()):
            return ()
        scores = {name: _mean(values) for name, values in samples.items()}
        leader = _leader(scores)
        losers = []
        for name, values in samples.items():
            if name == leader:
                continue
            deficits = [lead - own
                        for lead, own in zip(samples[leader], values)]
            mean = _mean(deficits)
            if mean <= 0:
                continue
            variance = (sum((d - mean) ** 2 for d in deficits)
                        / (len(deficits) - 1))
            stderr = math.sqrt(variance / len(deficits))
            if stderr == 0.0 or mean > self.z * stderr:
                losers.append(name)
        return tuple(losers)


@dataclass(frozen=True)
class ToleranceRule(StoppingRule):
    """Stop refining once a round improves the best objective < ``tolerance``.

    The comparison is on the *oriented* objective (higher is better), so
    ``tolerance`` is an absolute improvement in score units — STP for
    throughput sweeps, IPC RMS for accuracy sweeps.
    """

    tolerance: float = 0.01

    RULE = "tolerance"
    KINDS = ("adaptive_refinement",)

    def validate(self) -> None:
        if (not isinstance(self.tolerance, (int, float))
                or isinstance(self.tolerance, bool) or self.tolerance < 0):
            raise ConfigurationError(
                f"stopping rule 'tolerance' requires tolerance >= 0, "
                f"got {self.tolerance!r}"
            )

    def to_dict(self) -> dict:
        return {"rule": self.RULE, "tolerance": self.tolerance}

    @classmethod
    def from_dict(cls, data: dict) -> "ToleranceRule":
        _reject_unknown_keys(data, ("rule", "tolerance"),
                             "stopping rule 'tolerance'")
        rule = cls(tolerance=_as_float(data.get("tolerance", 0.01),
                                       "tolerance", "tolerance"))
        rule.validate()
        return rule

    def converged(self, previous_best: float | None, best: float) -> bool:
        if previous_best is None:
            return False
        return best - previous_best <= self.tolerance


@dataclass(frozen=True)
class StableRankingRule(StoppingRule):
    """Stop sampling once the ranking survives ``rounds`` extra waves.

    After wave *k* the driver appends the full-candidate ranking over all
    cells consumed so far; the rule fires when the last ``rounds + 1``
    rankings are identical — i.e. ``rounds`` additional workloads changed
    nothing.
    """

    rounds: int = 2

    RULE = "stable_ranking"
    KINDS = ("confidence_sampling",)

    def validate(self) -> None:
        _as_positive_int(self.rounds, "rounds", "stable_ranking")

    def to_dict(self) -> dict:
        return {"rule": self.RULE, "rounds": self.rounds}

    @classmethod
    def from_dict(cls, data: dict) -> "StableRankingRule":
        _reject_unknown_keys(data, ("rule", "rounds"),
                             "stopping rule 'stable_ranking'")
        rule = cls(rounds=_as_positive_int(data.get("rounds", 2),
                                           "rounds", "stable_ranking"))
        rule.validate()
        return rule

    def stable(self, rankings: list[tuple[str, ...]]) -> bool:
        if len(rankings) <= self.rounds:
            return False
        window = rankings[-(self.rounds + 1):]
        return all(ranking == window[0] for ranking in window)


stopping_rules.register("margin", MarginRule.from_dict)
stopping_rules.register("confidence", ConfidenceRule.from_dict)
stopping_rules.register("tolerance", ToleranceRule.from_dict)
stopping_rules.register("stable_ranking", StableRankingRule.from_dict)

# The rule a query kind falls back to when its spec names none.
DEFAULT_RULES: dict[str, StoppingRule] = {
    "best_of": MarginRule(),
    "adaptive_refinement": ToleranceRule(),
    "confidence_sampling": StableRankingRule(),
}


def rule_from_dict(data: dict) -> StoppingRule:
    """Reconstruct a stopping rule from its ``to_dict`` payload."""
    _require_object(data, "stopping rule")
    name = data.get("rule")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            "stopping rule dict must carry a non-empty string 'rule' field; "
            f"got {name!r}"
        )
    if name not in stopping_rules:
        raise ConfigurationError(
            f"unknown stopping rule '{name}' "
            f"(registered: {', '.join(stopping_rules.names())})"
            f"{suggest_name(name, stopping_rules.names())}"
        )
    return stopping_rules.create(name, data)
