"""Scenario service: a long-lived, multi-client job server over the engine.

The batch CLI runs one spec and exits; this package keeps the engine
resident — shared process pool warm, caches populated — and serves scenario
requests over HTTP (``python -m repro serve``):

* :mod:`repro.service.jobs` — priority queue, per-job state machine and the
  lease broker handing sweep cells to whoever will run them,
* :mod:`repro.service.workers` — the lease holders: the in-process
  :class:`~repro.service.workers.local.LocalPool` (the single-node default)
  and the :class:`~repro.service.workers.remote.RemoteWorker` behind
  ``python -m repro worker``,
* :mod:`repro.service.artifacts` — LRU-bounded store of whole-scenario
  result payloads over a pluggable :mod:`repro.backends` backend (the
  scenario-level cache above the cell-level one),
* :mod:`repro.service.http` — the stdlib ``ThreadingHTTPServer`` API,
  including the lease and artifact routes remote workers speak,
* :mod:`repro.service.client` — the urllib client used by tests and tools,
* :mod:`repro.service.journal` — the crash-safe job journal behind
  ``serve``'s restart recovery and graceful SIGTERM drain.
"""

from repro.service.artifacts import ArtifactStore
from repro.service.client import ServiceClient
from repro.service.http import ScenarioServer, create_server, serve
from repro.service.jobs import (
    Job,
    JobManager,
    JobState,
    Lease,
    LeaseGrant,
    scenario_digest,
)
from repro.service.journal import JobJournal, journal_path_from_env
from repro.service.workers import LocalPool

__all__ = [
    "ArtifactStore",
    "ServiceClient",
    "ScenarioServer",
    "create_server",
    "serve",
    "Job",
    "JobJournal",
    "JobManager",
    "JobState",
    "Lease",
    "LeaseGrant",
    "LocalPool",
    "journal_path_from_env",
    "scenario_digest",
]
