"""Disk-backed artifact store for whole-scenario results.

The scenario service caches at two levels: individual sweep cells hit the
content-addressed result cache (:mod:`repro.sim.result_cache`), and complete
scenario results — the JSON payload a client downloads, including the figure
tables — are persisted here under a whole-spec digest.  A repeated submission
of an identical spec is then served without touching the engine at all.

Artifacts are JSON files named ``<digest>.json`` under one directory
(``REPRO_ARTIFACT_DIR``, default ``.repro_artifacts``), written atomically
(temp file + ``os.replace``).  The store is LRU-bounded by total size:
``REPRO_ARTIFACT_MAX_MB`` (default 256) caps the directory, and reads touch
the file's mtime so eviction drops the least recently *used* artifact, not
merely the oldest.  Corrupted or unreadable artifacts are treated as misses
and deleted best-effort — the scenario is simply recomputed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_ARTIFACT_DIR",
    "DEFAULT_MAX_MEGABYTES",
    "ArtifactStats",
    "ArtifactStore",
    "artifact_dir_from_env",
    "artifact_limit_from_env",
]

DEFAULT_ARTIFACT_DIR = ".repro_artifacts"
DEFAULT_MAX_MEGABYTES = 256


def artifact_dir_from_env() -> Path:
    """The artifact directory selected by ``REPRO_ARTIFACT_DIR``."""
    directory = Path(os.environ.get("REPRO_ARTIFACT_DIR") or DEFAULT_ARTIFACT_DIR)
    directory = directory.expanduser()
    return directory if directory.is_absolute() else Path.cwd() / directory


def artifact_limit_from_env() -> int:
    """The store's size bound in bytes (``REPRO_ARTIFACT_MAX_MB``)."""
    env = os.environ.get("REPRO_ARTIFACT_MAX_MB")
    if env is None or env.strip() == "":
        return DEFAULT_MAX_MEGABYTES * 1024 * 1024
    try:
        megabytes = int(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_ARTIFACT_MAX_MB must be a positive integer, got {env!r}"
        ) from None
    if megabytes <= 0:
        raise ConfigurationError(
            f"REPRO_ARTIFACT_MAX_MB must be a positive integer, got {env!r}"
        )
    return megabytes * 1024 * 1024


@dataclass
class ArtifactStats:
    """Hit/miss/eviction counters of one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores,
                "evictions": self.evictions, "errors": self.errors}


class ArtifactStore:
    """An LRU-bounded directory of JSON artifacts addressed by digest."""

    def __init__(self, directory: str | os.PathLike | None = None,
                 max_bytes: int | None = None):
        self.directory = Path(directory) if directory is not None else artifact_dir_from_env()
        self.max_bytes = max_bytes if max_bytes is not None else artifact_limit_from_env()
        if self.max_bytes <= 0:
            raise ConfigurationError("the artifact store needs a positive size bound")
        self.stats = ArtifactStats()

    def entry_path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        """The stored payload for ``digest``, or None on a miss."""
        path = self.entry_path(digest)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            # Torn write survivor or hand-edited file: recompute.
            self.stats.errors += 1
            self._discard(path)
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict):
            self.stats.errors += 1
            self._discard(path)
            self.stats.misses += 1
            return None
        self._touch(path)
        self.stats.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> bool:
        """Persist ``payload`` under ``digest`` (atomic, best-effort)."""
        path = self.entry_path(digest)
        try:
            text = json.dumps(payload, indent=2, default=str)
            self.directory.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except Exception:
            # A full disk must degrade to "no artifact", never fail the job.
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        self._evict(keep=path)
        return True

    def entries(self) -> list[Path]:
        """All artifact files, least recently used first."""
        if not self.directory.is_dir():
            return []
        paths = []
        for path in self.directory.glob("*.json"):
            try:
                paths.append((path.stat().st_mtime, path))
            except OSError:
                continue
        return [path for _mtime, path in sorted(paths, key=lambda item: item[0])]

    def total_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _evict(self, keep: Path) -> None:
        """Drop least-recently-used artifacts until the store fits the bound.

        The just-written artifact is never evicted, even when it alone
        exceeds the bound — a cache that silently discarded the result it was
        asked to keep would turn every oversized scenario into a permanent
        recompute.
        """
        budget = self.max_bytes
        entries = []
        for path in self.entries():
            try:
                entries.append((path, path.stat().st_size))
            except OSError:
                continue
        total = sum(size for _path, size in entries)
        for path, size in entries:
            if total <= budget:
                break
            if path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1

    def _touch(self, path: Path) -> None:
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
