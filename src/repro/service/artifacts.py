"""Artifact store for whole-scenario results, over a pluggable backend.

The scenario service caches at two levels: individual sweep cells hit the
content-addressed result cache (:mod:`repro.sim.result_cache`), and complete
scenario results — the JSON payload a client downloads, including the figure
tables — are persisted here under a whole-spec digest.  A repeated submission
of an identical spec is then served without touching the engine at all.

Where the bytes live is delegated to an :class:`~repro.backends.ArtifactBackend`
selected by ``REPRO_ARTIFACT_BACKEND``: the default ``directory`` backend
keeps the historical layout — JSON files named ``<digest>.json`` under one
directory (``REPRO_ARTIFACT_DIR``, default ``.repro_artifacts``), written
atomically — ``sharded`` fans entries out by digest prefix, and ``http``
proxies a remote broker's store.  The store is LRU-bounded by total size on
the listable (local) backends: ``REPRO_ARTIFACT_MAX_MB`` (default 256) caps
the directory, and reads touch the file's mtime so eviction drops the least
recently *used* artifact, not merely the oldest.  Corrupted or unreadable
artifacts are treated as misses and deleted best-effort — the scenario is
simply recomputed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.backends import ArtifactBackend, backend_from_env
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_ARTIFACT_DIR",
    "DEFAULT_MAX_MEGABYTES",
    "ArtifactStats",
    "ArtifactStore",
    "artifact_dir_from_env",
    "artifact_limit_from_env",
]

DEFAULT_ARTIFACT_DIR = ".repro_artifacts"
DEFAULT_MAX_MEGABYTES = 256


def artifact_dir_from_env() -> Path:
    """The artifact directory selected by ``REPRO_ARTIFACT_DIR``."""
    directory = Path(os.environ.get("REPRO_ARTIFACT_DIR") or DEFAULT_ARTIFACT_DIR)
    directory = directory.expanduser()
    return directory if directory.is_absolute() else Path.cwd() / directory


def artifact_limit_from_env() -> int:
    """The store's size bound in bytes (``REPRO_ARTIFACT_MAX_MB``)."""
    env = os.environ.get("REPRO_ARTIFACT_MAX_MB")
    if env is None or env.strip() == "":
        return DEFAULT_MAX_MEGABYTES * 1024 * 1024
    try:
        megabytes = int(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_ARTIFACT_MAX_MB must be a positive integer, got {env!r}"
        ) from None
    if megabytes <= 0:
        raise ConfigurationError(
            f"REPRO_ARTIFACT_MAX_MB must be a positive integer, got {env!r}"
        )
    return megabytes * 1024 * 1024


@dataclass
class ArtifactStats:
    """Hit/miss/eviction counters of one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores,
                "evictions": self.evictions, "errors": self.errors}


class ArtifactStore:
    """An LRU-bounded store of JSON artifacts addressed by digest."""

    def __init__(self, directory: str | os.PathLike | None = None,
                 max_bytes: int | None = None,
                 backend: ArtifactBackend | None = None):
        self.directory = Path(directory) if directory is not None else artifact_dir_from_env()
        self.max_bytes = max_bytes if max_bytes is not None else artifact_limit_from_env()
        if self.max_bytes <= 0:
            raise ConfigurationError("the artifact store needs a positive size bound")
        self.backend = backend if backend is not None else backend_from_env(
            self.directory, ".json", "scenarios"
        )
        self.stats = ArtifactStats()

    def entry_path(self, digest: str) -> Path:
        return self.backend.path_for(digest)

    def get(self, digest: str) -> dict | None:
        """The stored payload for ``digest``, or None on a miss."""
        errors_before = self.backend.read_errors
        data = self.backend.get(digest)
        if data is None:
            if self.backend.read_errors > errors_before:
                # Unreadable entry (not merely absent): count the corruption.
                self.stats.errors += 1
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            payload = None
        if not isinstance(payload, dict):
            # Torn write survivor or hand-edited file: recompute.
            self.stats.errors += 1
            self.backend.delete(digest)
            self.stats.misses += 1
            return None
        self.backend.touch(digest)
        self.stats.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> bool:
        """Persist ``payload`` under ``digest`` (atomic, best-effort)."""
        try:
            data = json.dumps(payload, indent=2, default=str).encode("utf-8")
        except Exception:
            self.stats.errors += 1
            return False
        if not self.backend.put(digest, data):
            # A full disk (or unreachable remote) must degrade to "no
            # artifact", never fail the job.
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        self._evict(keep=digest)
        return True

    def entries(self) -> list[Path]:
        """All local artifact files, least recently used first."""
        return self.backend.entry_paths()

    def total_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _evict(self, keep: str) -> None:
        """Drop least-recently-used artifacts until the store fits the bound.

        The just-written artifact is never evicted, even when it alone
        exceeds the bound — a cache that silently discarded the result it was
        asked to keep would turn every oversized scenario into a permanent
        recompute.  Remote (non-listable) backends skip eviction entirely:
        the broker owns its own store's bound.
        """
        if not self.backend.listable:
            return
        keep_path = self.backend.path_for(keep)
        budget = self.max_bytes
        entries = []
        for path in self.entries():
            try:
                entries.append((path, path.stat().st_size))
            except OSError:
                continue
        total = sum(size for _path, size in entries)
        for path, size in entries:
            if total <= budget:
                break
            if path == keep_path:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1

    def _touch(self, path: Path) -> None:
        # Kept for backwards compatibility with callers that touch by path.
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass
