"""Minimal urllib-based client for the scenario service.

Used by the tests, the CI smoke job and the benchmark probe; also a
convenient programmatic entry point::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8642")
    job = client.submit(spec)                 # ScenarioSpec or plain dict
    status = client.wait(job["id"], timeout=600)
    result = client.result(job["id"])

Transport failures surface as :class:`~repro.errors.ServiceError` carrying
the server's JSON error message when one was returned.

Robustness: idempotent GETs retry transient connection failures (a server
mid-restart, a dropped socket) a few times with capped exponential backoff;
:meth:`ServiceClient.wait` polls with a growing, jittered interval; and
:meth:`ServiceClient.iter_events` reconnects a cut SSE stream once, resuming
from the last received ``id:`` via ``Last-Event-ID``.  All jitter is
deterministic (hash-derived), keeping client behaviour reproducible.
"""

from __future__ import annotations

import base64
import hashlib
import http.client
import json
import pickle
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError
from repro.scenarios.composite import CompositeSpec
from repro.scenarios.query import QuerySpec
from repro.scenarios.spec import ScenarioSpec
from repro.service.jobs import JobState

__all__ = ["ServiceClient"]

# Transient connection failures on idempotent GETs are retried this many
# times before surfacing; POST/DELETE are never retried (not idempotent).
GET_RETRIES = 3
_RETRY_BACKOFF_SECONDS = 0.1
_RETRY_BACKOFF_CAP_SECONDS = 1.0

_WAIT_POLL_GROWTH = 1.5
_WAIT_POLL_CAP_SECONDS = 2.0


def _jitter_fraction(key: str, attempt: int) -> float:
    """A deterministic pseudo-random fraction in [0, 1) — no PRNG state."""
    digest = hashlib.sha256(f"repro-client:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _retry_backoff_seconds(attempt: int, key: str) -> float:
    base = min(_RETRY_BACKOFF_SECONDS * (2 ** attempt),
               _RETRY_BACKOFF_CAP_SECONDS)
    return base * (1.0 + 0.25 * _jitter_fraction(key, attempt))


class ServiceClient:
    """A tiny JSON-over-HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ transport

    def _open(self, method: str, path: str, request: urllib.request.Request,
              timeout: float | None = None):
        """Open a request, translating transport failures to ServiceError."""
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout)
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:
                detail = ""
            message = f"{method} {path} failed with HTTP {error.code}"
            if detail:
                message = f"{message}: {detail}"
            failure = ServiceError(message)
            # The numeric status lets callers branch on authoritative
            # responses — a worker treats 410 (lease lost) very differently
            # from a 400 or a 500.
            failure.status = error.code
            raise failure from None
        except urllib.error.URLError as error:
            # The server never answered: the failure is transient from the
            # client's point of view (mid-restart, dropped socket), unlike an
            # HTTP error response, which is authoritative.
            failure = ServiceError(
                f"cannot reach scenario service at {self.base_url}{path}: "
                f"{error.reason}"
            )
            failure.transient = True
            raise failure from None

    def _request(self, method: str, path: str, payload: dict | None = None,
                 timeout: float | None = None) -> dict | None:
        url = f"{self.base_url}{path}"
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempts = GET_RETRIES + 1 if method == "GET" else 1
        for attempt in range(attempts):
            request = urllib.request.Request(url, data=body, headers=headers,
                                             method=method)
            try:
                with self._open(method, path, request,
                                timeout=timeout) as response:
                    if getattr(response, "status", 200) == 204:
                        return None  # e.g. a lease long-poll finding no work
                    return json.loads(response.read().decode("utf-8"))
            except ServiceError as error:
                if (attempt + 1 >= attempts
                        or not getattr(error, "transient", False)):
                    raise
                time.sleep(_retry_backoff_seconds(attempt, path))
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ endpoints

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    # ------------------------------------------------------------------ leases

    def acquire_lease(self, worker: str, max_cells: int | None = None,
                      wait: float = 0.0) -> dict | None:
        """Long-poll ``POST /leases`` for a chunk of work; None when idle.

        The socket timeout stretches to cover the server-side long-poll plus
        the normal margin, so a patient wait is not misread as a dead broker.
        """
        payload: dict = {"worker": worker, "wait": wait}
        if max_cells is not None:
            payload["max_cells"] = max_cells
        return self._request("POST", "/leases", payload,
                             timeout=self.timeout + max(0.0, wait))

    def lease_heartbeat(self, lease_id: str, done: int | None = None) -> dict:
        """Refresh a lease; the reply's ``cancel`` flag must be honoured.

        Raises :class:`ServiceError` with ``status == 410`` when the broker
        no longer honours the lease (expired, job finished elsewhere).
        """
        payload = {} if done is None else {"done": done}
        return self._request("POST", f"/leases/{lease_id}/heartbeat", payload)

    def lease_result(self, lease_id: str, cells: dict | None = None,
                     error: str | None = None,
                     cancelled: bool = False) -> dict:
        """Post a lease's outcome: per-cell results, an error, or a cancel.

        ``cells`` maps cell index to the evaluator's outcome object; each is
        pickled and base64-wrapped for the JSON body (the service is a
        trusted-cluster tool — the broker unpickles what its own workers
        post, exactly as the process pool always has).
        """
        payload: dict = {"cancelled": cancelled}
        if error is not None:
            payload["error"] = error
        if cells is not None:
            payload["cells"] = {
                str(index): base64.b64encode(pickle.dumps(value)).decode("ascii")
                for index, value in cells.items()
            }
        return self._request("POST", f"/leases/{lease_id}/result", payload)

    # ------------------------------------------------------------------ jobs

    def submit(self, spec: ScenarioSpec | dict, priority: int = 0) -> dict:
        """Submit a spec; returns the job summary (``{"id": ..., ...}``)."""
        data = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        return self._request("POST", "/scenarios", {"spec": data, "priority": priority})

    def submit_composite(self, composite: CompositeSpec | dict,
                         priority: int = 0) -> dict:
        """Submit a composite DAG; returns the parent-job summary.

        The summary's ``children`` maps node names to member job ids as they
        fan out, and ``nodes`` tracks per-node states.
        """
        data = composite.to_dict() if isinstance(composite, CompositeSpec) else composite
        return self._request("POST", "/composites", {"spec": data, "priority": priority})

    def submit_query(self, query: QuerySpec | dict, priority: int = 0) -> dict:
        """Submit an on-demand query; returns the parent-job summary.

        The job's ``/events`` stream carries ``wave_started`` /
        ``wave_done`` / ``candidate_eliminated`` events while the broker
        evaluates only the cells the question needs; the finished job's
        result is the :meth:`~repro.scenarios.ondemand.QueryResult.to_dict`
        payload.
        """
        data = query.to_dict() if isinstance(query, QuerySpec) else query
        return self._request("POST", "/queries", {"spec": data, "priority": priority})

    def iter_events(self, job_id: str, timeout: float | None = None):
        """Yield a job's Server-Sent Events as dicts until the terminal event.

        Connects to ``GET /scenarios/{id}/events`` and parses the stream;
        each yielded dict carries at least ``{"event": ...}``
        (``queued``/``running``/``progress``/``heartbeat``/``node_*``/
        terminal states).  Returns after a terminal event.  ``timeout``
        bounds each socket read; the server heartbeats every ~10 seconds, so
        keep it above that (the 30 s default is).

        A stream cut mid-job — EOF without a terminal event, a read timing
        out, a reset connection — is reconnected *once*, resuming just past
        the last received ``id:`` via the ``Last-Event-ID`` header so no
        event is replayed or lost.  A second cut raises
        :class:`ServiceError` like every other transport failure.
        """
        path = f"/scenarios/{job_id}/events"
        last_id: int | None = None
        reconnected = False
        while True:
            headers = {"Accept": "text/event-stream"}
            if last_id is not None:
                headers["Last-Event-ID"] = str(last_id)
            request = urllib.request.Request(
                f"{self.base_url}{path}", headers=headers, method="GET"
            )
            response = self._open("GET", path, request, timeout=timeout)
            failure: ServiceError | None = None
            with response:
                data_lines: list[str] = []
                while True:
                    try:
                        raw_line = response.readline()
                    except (TimeoutError, OSError,
                            http.client.HTTPException) as error:
                        failure = ServiceError(
                            f"event stream for job '{job_id}' interrupted: "
                            f"{error}"
                        )
                        break
                    if not raw_line:
                        # The stream always ends with a terminal event;
                        # reaching EOF without one means the server (or
                        # connection) died mid-job, which must not read as
                        # normal completion.
                        failure = ServiceError(
                            f"event stream for job '{job_id}' ended without "
                            f"a terminal event"
                        )
                        break
                    line = raw_line.decode("utf-8").rstrip("\r\n")
                    if line.startswith(":"):
                        continue  # SSE comment
                    if line.startswith("id:"):
                        try:
                            last_id = int(line[3:].strip())
                        except ValueError:
                            pass
                        continue
                    if line.startswith("data:"):
                        data_lines.append(line[5:].lstrip())
                        continue
                    if line:
                        continue  # event: framing — the data carries the type
                    if not data_lines:
                        continue
                    try:
                        event = json.loads("\n".join(data_lines))
                    except json.JSONDecodeError:
                        event = {"event": "message",
                                 "data": "\n".join(data_lines)}
                    data_lines = []
                    yield event
                    if event.get("event") in JobState.TERMINAL:
                        return
            if reconnected:
                raise failure
            reconnected = True
            time.sleep(_retry_backoff_seconds(0, path))

    def list_jobs(self) -> list[dict]:
        return self._request("GET", "/scenarios")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/scenarios/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job's result payload (raises while still pending)."""
        return self._request("GET", f"/scenarios/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/scenarios/{job_id}")

    def wait(self, job_id: str, timeout: float = 600.0,
             poll_seconds: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state; returns its status.

        The poll interval starts at ``poll_seconds`` and grows 1.5x per poll
        (capped at 2 s) with deterministic jitter, so short jobs answer fast
        while long sweeps aren't hammered — and a fleet of waiters never
        beats the server in lockstep.
        """
        deadline = time.monotonic() + timeout
        interval = max(poll_seconds, 1e-3)
        poll = 0
        while True:
            status = self.status(job_id)
            if status["state"] in JobState.TERMINAL:
                return status
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    f"job '{job_id}' still {status['state']} after {timeout:.0f}s"
                )
            pause = interval * (1.0 + 0.25 * _jitter_fraction(job_id, poll))
            time.sleep(min(pause, max(0.0, deadline - now)))
            interval = min(interval * _WAIT_POLL_GROWTH, _WAIT_POLL_CAP_SECONDS)
            poll += 1
