"""HTTP API of the scenario service (stdlib-only).

A :class:`ScenarioServer` is a ``ThreadingHTTPServer`` bound to a
:class:`~repro.service.jobs.JobManager`; each request thread only touches the
manager's thread-safe API.  The manager is a *lease broker*: work is executed
by whoever holds a lease — the in-process
:class:`~repro.service.workers.local.LocalPool` threads (``local_workers``,
default 1: the single-node configuration) and any number of remote
``python -m repro worker`` processes leasing cells over the routes below.

Routes
------
=======  =========================  =========================================
POST     /scenarios                 submit a ScenarioSpec JSON (optionally
                                    wrapped as ``{"spec": ..., "priority": N}``)
POST     /composites                submit a CompositeSpec JSON (same optional
                                    ``{"spec": ..., "priority": N}`` wrapper);
                                    member jobs fan out as dependencies finish
POST     /queries                   submit a QuerySpec JSON (same wrapper);
                                    an on-demand query evaluated wave by wave
                                    through the lease broker — wave lifecycle
                                    events stream on the job's ``/events``
GET      /scenarios                 list all jobs (most recent last)
GET      /scenarios/{id}            job status + per-cell progress (+ children
                                    and per-node states for composites)
GET      /scenarios/{id}/result     the result payload (202 while pending)
GET      /scenarios/{id}/events     Server-Sent Events stream of the job's
                                    progress (per-cell and, for composites,
                                    per-node events; heartbeats while idle;
                                    closes after the terminal event).  Events
                                    carry ``id:`` lines; a reconnecting client
                                    sends ``Last-Event-ID`` to resume where
                                    its cut stream left off
DELETE   /scenarios/{id}            cancel a job: 200 when it went terminal
                                    immediately (queued), 202 while a running
                                    job drains cooperatively (``cancelling``),
                                    409 only for finished jobs; composite
                                    cancellation propagates to descendants
POST     /leases                    lease a chunk of sweep cells
                                    (``{"worker": ..., "max_cells": N,
                                    "wait": S}``); long-polls up to ``wait``
                                    seconds; 200 with the grant (spec JSON +
                                    cell indices + TTL) or 204 when idle
POST     /leases/{id}/heartbeat     refresh a lease within its TTL, relay
                                    ``{"done": N}`` progress; the reply's
                                    ``cancel`` flag is the cancellation
                                    channel; 410 once the lease is lost
POST     /leases/{id}/result        post the lease's outcome: per-cell
                                    pickled results (base64 in JSON), an
                                    error, or a cancellation; 410 when lost
GET/PUT  /artifacts/{ns}/{key}      the broker's content-addressed stores as
                                    raw bytes (``ns`` is ``cells`` or
                                    ``scenarios``): the ``http`` artifact
                                    backend of remote workers reads and
                                    writes these so the fleet shares one
                                    cache
GET      /healthz                   liveness probe
GET      /stats                     queue depth, cache hit rates, utilisation,
                                    per-worker lease/cell counters, lease
                                    totals, supervisor retries, journal
=======  =========================  =========================================

Malformed bodies and invalid specs answer 400 with the configuration error
message; unknown jobs 404; invalid state transitions 409.  Everything is
JSON, including errors (``{"error": ...}``) — except the ``/events`` stream,
which is ``text/event-stream`` with JSON ``data:`` payloads.

The CLI entry point (:func:`serve`) additionally journals submissions to a
crash-safe log (``REPRO_JOB_JOURNAL``), replays unfinished jobs at startup,
and drains gracefully on SIGTERM: no new jobs, the running job gets
``REPRO_DRAIN_SECONDS`` to finish (default 30) before being parked for the
next life, and the journal is flushed and compacted.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.backends import ShardedDirectoryBackend
from repro.errors import (
    ConfigurationError,
    JobConflictError,
    LeaseLostError,
    ServiceError,
)
from repro.scenarios.composite import CompositeSpec
from repro.scenarios.query import QuerySpec
from repro.scenarios.spec import ScenarioSpec
from repro.service.artifacts import ArtifactStore
from repro.service.jobs import JobManager, JobState
from repro.service.journal import JobJournal, journal_path_from_env

__all__ = [
    "DEFAULT_PORT",
    "ScenarioServer",
    "create_server",
    "drain_seconds_from_env",
    "serve",
    "service_port_from_env",
]

DEFAULT_PORT = 8642

# Submissions larger than this are rejected outright: a spec is a few KB of
# JSON, so anything bigger is a client bug (or not a spec at all).
MAX_BODY_BYTES = 1 << 20

# Lease results and artifact uploads carry pickled sweep outcomes, which run
# far bigger than a spec — but still bounded, so one confused client cannot
# buffer the broker into the ground.
MAX_RESULT_BODY_BYTES = 128 << 20

# A lease long-poll is held at most this long per request; patient workers
# simply re-poll, which keeps request threads from pinning indefinitely.
MAX_LEASE_WAIT_SECONDS = 30.0

# Idle gap after which the /events stream emits a heartbeat event so clients
# (and intermediaries) can tell a quiet job from a dead connection.
EVENT_HEARTBEAT_SECONDS = 10.0

# Artifact keys are hex digests: anything else (dots, slashes, drive
# letters) is rejected before it can name a path.
_ARTIFACT_KEY = re.compile(r"^[0-9a-f]{8,128}$")
_ARTIFACT_NAMESPACES = ("cells", "scenarios")


def service_port_from_env() -> int:
    """The port selected by ``REPRO_SERVICE_PORT`` (default 8642)."""
    env = os.environ.get("REPRO_SERVICE_PORT")
    if env is None or env.strip() == "":
        return DEFAULT_PORT
    try:
        port = int(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SERVICE_PORT must be an integer port, got {env!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(
            f"REPRO_SERVICE_PORT must be between 0 and 65535, got {env!r}"
        )
    return port


class ScenarioServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns the job manager it serves."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], manager: JobManager,
                 verbose: bool = False):
        super().__init__(address, ScenarioRequestHandler)
        self.manager = manager
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


class ScenarioRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-scenario-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ plumbing

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self, limit: int = MAX_BODY_BYTES) -> bytes | None:
        length = self.headers.get("Content-Length")
        try:
            length = int(length or 0)
        except ValueError:
            # The body was not consumed, so a keep-alive connection would
            # desync: close it instead of answering the next request with
            # the middle of this one's stale payload.
            self.close_connection = True
            self._send_error_json(400, "invalid Content-Length header")
            return None
        if length <= 0:
            self._send_error_json(400, "a request body is required")
            return None
        if length > limit:
            self.close_connection = True
            self._send_error_json(413, "request body too large for this route")
            return None
        return self.rfile.read(length)

    def _job_id_from_path(self, parts: list[str]) -> str:
        return parts[1]

    # ------------------------------------------------------------------ routes

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send_json(200, {"status": "ok"})
            elif parts == ["stats"]:
                self._send_json(200, self.manager.stats())
            elif parts == ["scenarios"]:
                self._send_json(
                    200, {"jobs": [job.summary() for job in self.manager.jobs()]}
                )
            elif len(parts) == 2 and parts[0] == "scenarios":
                job = self.manager.get(self._job_id_from_path(parts))
                self._send_json(200, job.summary())
            elif len(parts) == 3 and parts[0] == "scenarios" and parts[2] == "result":
                self._send_result(self._job_id_from_path(parts))
            elif len(parts) == 3 and parts[0] == "scenarios" and parts[2] == "events":
                self._send_events(self._job_id_from_path(parts))
            elif len(parts) == 3 and parts[0] == "artifacts":
                self._get_artifact(parts[1], parts[2])
            else:
                self._send_error_json(404, f"no such route: GET {self.path}")
        except ServiceError as error:
            self._send_error_json(404, str(error))

    def _send_result(self, job_id: str) -> None:
        job = self.manager.get(job_id)
        if job.state == JobState.DONE:
            self._send_json(200, job.result)
        elif job.state == JobState.FAILED:
            payload = {"error": job.error or "scenario failed"}
            if job.result is not None:
                # A failed composite keeps whatever members finished.
                payload["partial_result"] = job.result
            self._send_json(500, payload)
        elif job.state == JobState.CANCELLED:
            self._send_error_json(409, f"job '{job_id}' was cancelled")
        else:
            # Still queued or running: tell the client to poll again.
            self._send_json(202, job.summary())

    def _send_events(self, job_id: str) -> None:
        """Stream a job's event log as Server-Sent Events until it finishes.

        The response is unframed (no Content-Length), so the connection is
        marked close; heartbeat events keep intermediaries from timing the
        stream out while a long sweep is quiet.  A disconnecting client
        simply ends the generator — the job is unaffected.  Every buffered
        event carries an ``id:`` line (its absolute log index); a client
        reconnecting with ``Last-Event-ID`` resumes just past it instead of
        replaying the whole history.
        """
        self.manager.get(job_id)  # 404 before committing to a stream
        start_index = 0
        last_id = self.headers.get("Last-Event-ID")
        if last_id is not None:
            try:
                start_index = int(last_id) + 1
            except ValueError:
                start_index = 0
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        try:
            for event in self.manager.iter_events(
                job_id, heartbeat_seconds=EVENT_HEARTBEAT_SECONDS,
                start_index=start_index,
            ):
                name = event.get("event", "message")
                data = json.dumps(event, default=str)
                frame = f"event: {name}\n"
                if "seq" in event:  # synthetic heartbeats carry no id
                    frame += f"id: {event['seq']}\n"
                frame += f"data: {data}\n\n"
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, ServiceError):
            return

    # ----------------------------------------------------------------- artifacts

    def _artifact_route(self, namespace: str, key: str):
        """Validate an ``/artifacts`` path; returns its backend or None.

        Error responses are already sent when this returns None.  Keys must
        be lowercase hex digests — nothing that could name a path — and only
        locally-backed namespaces are served: a broker whose own store is
        remote must not proxy-chain (worst case, to itself).
        """
        if namespace not in _ARTIFACT_NAMESPACES:
            self._send_error_json(
                404,
                f"no such artifact namespace: {namespace!r} "
                f"(expected one of: {', '.join(_ARTIFACT_NAMESPACES)})",
            )
            return None
        if not _ARTIFACT_KEY.fullmatch(key):
            self._send_error_json(400, "artifact keys are lowercase hex digests")
            return None
        if namespace == "scenarios":
            backend = self.manager.artifacts.backend
        else:
            from repro.sim.result_cache import get_result_cache

            cache = get_result_cache()
            backend = (None if not cache.enabled or cache.backend is not None
                       else ShardedDirectoryBackend(cache.directory,
                                                    suffix=".pkl"))
        if backend is None or not backend.listable:
            self._send_error_json(
                503, f"artifact namespace '{namespace}' has no local store "
                     f"on this broker"
            )
            return None
        return backend

    def _get_artifact(self, namespace: str, key: str) -> None:
        backend = self._artifact_route(namespace, key)
        if backend is None:
            return
        data = backend.get(key)
        if data is None:
            self._send_error_json(404, f"no artifact '{key}' in '{namespace}'")
            return
        backend.touch(key)  # keep remote reads visible to LRU eviction
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_PUT(self) -> None:  # noqa: N802 — stdlib naming
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if len(parts) != 3 or parts[0] != "artifacts":
            self._send_error_json(404, f"no such route: PUT {self.path}")
            return
        backend = self._artifact_route(parts[1], parts[2])
        if backend is None:
            return
        data = self._read_body(limit=MAX_RESULT_BODY_BYTES)
        if data is None:
            return
        if backend.put(parts[2], data):
            self._send_json(200, {"stored": True})
        else:
            self._send_error_json(503, "artifact store rejected the write")

    # -------------------------------------------------------------------- leases

    def _read_json_dict(self, limit: int = MAX_BODY_BYTES) -> dict | None:
        """Parse a POST body that must be a JSON object (None on error)."""
        body = self._read_body(limit=limit)
        if body is None:
            return None
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_json(400, f"request body is not valid JSON: {error}")
            return None
        if not isinstance(data, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return data

    def _acquire_lease(self) -> None:
        """``POST /leases``: long-poll for a cell grant; 204 when idle."""
        data = self._read_json_dict()
        if data is None:
            return
        worker = data.get("worker")
        if not isinstance(worker, str) or not worker.strip():
            self._send_error_json(
                400, "lease requests need a non-empty 'worker' name")
            return
        wait = data.get("wait", 0.0)
        if (isinstance(wait, bool) or not isinstance(wait, (int, float))
                or wait < 0):
            self._send_error_json(
                400, "'wait' must be a non-negative number of seconds")
            return
        max_cells = data.get("max_cells")
        try:
            grant = self.manager.acquire_lease(
                worker=worker.strip(), max_cells=max_cells,
                wait=min(float(wait), MAX_LEASE_WAIT_SECONDS), remote=True,
            )
        except ConfigurationError as error:
            self._send_error_json(400, str(error))
            return
        except ServiceError as error:
            self._send_error_json(503, str(error))
            return
        if grant is None:
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self._send_json(200, {
            "lease": grant.lease_id,
            "job": grant.job_id,
            "kind": grant.kind,
            "spec": grant.spec.to_dict(),
            "cells": list(grant.cells or []),
            "total_cells": grant.total_cells,
            "ttl": grant.ttl,
        })

    def _lease_heartbeat(self, lease_id: str) -> None:
        data = self._read_json_dict()
        if data is None:
            return
        done = data.get("done")
        total = data.get("total")
        for name, value in (("done", done), ("total", total)):
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, int)
                                      or value < 0):
                self._send_error_json(
                    400, f"'{name}' must be a non-negative integer")
                return
        try:
            reply = self.manager.heartbeat_lease(lease_id, done=done,
                                                 total=total)
        except LeaseLostError as error:
            self._send_error_json(410, str(error))
            return
        except ServiceError as error:
            self._send_error_json(404, str(error))
            return
        self._send_json(200, reply)

    def _lease_result(self, lease_id: str) -> None:
        """``POST /leases/{id}/result``: per-cell outcomes, error or cancel.

        Cell outcomes arrive pickled and base64-wrapped inside the JSON body;
        the broker unpickles what its own workers post — the same trust
        boundary as the process pool's pipes.
        """
        data = self._read_json_dict(limit=MAX_RESULT_BODY_BYTES)
        if data is None:
            return
        error_text = data.get("error")
        if error_text is not None and not isinstance(error_text, str):
            self._send_error_json(400, "'error' must be a string")
            return
        outcomes = None
        cells = data.get("cells")
        if cells is not None:
            if not isinstance(cells, dict):
                self._send_error_json(
                    400, "'cells' must map cell indices to encoded outcomes")
                return
            try:
                outcomes = {
                    int(index): pickle.loads(base64.b64decode(blob))
                    for index, blob in cells.items()
                }
            except Exception as error:  # noqa: BLE001 — any decode failure is a 400
                self._send_error_json(
                    400, f"could not decode cell outcomes: "
                         f"{type(error).__name__}: {error}")
                return
        try:
            job = self.manager.complete_lease(
                lease_id, outcomes=outcomes, error=error_text,
                cancelled=bool(data.get("cancelled", False)),
            )
        except LeaseLostError as error:
            self._send_error_json(410, str(error))
            return
        except ServiceError as error:
            self._send_error_json(404, str(error))
            return
        payload = ({"state": "unknown"} if job is None
                   else {"job": job.id, "state": job.state})
        self._send_json(200, payload)

    # --------------------------------------------------------------- submissions

    def _read_json_submission(self):
        """Parse a POST body into ``(payload_dict, priority)`` (None on error).

        Accepts either the bare spec object or the ``{"spec": ...,
        "priority": N}`` wrapper; error responses are already sent when this
        returns None.
        """
        body = self._read_body()
        if body is None:
            return None
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_json(400, f"request body is not valid JSON: {error}")
            return None
        priority = 0
        if isinstance(data, dict) and "spec" in data:
            priority = data.get("priority", 0)
            data = data["spec"]
        if not isinstance(priority, int) or isinstance(priority, bool):
            self._send_error_json(400, "priority must be an integer")
            return None
        return data, priority

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["leases"]:
            self._acquire_lease()
            return
        if len(parts) == 3 and parts[0] == "leases":
            if parts[2] == "heartbeat":
                self._lease_heartbeat(parts[1])
                return
            if parts[2] == "result":
                self._lease_result(parts[1])
                return
        if parts == ["scenarios"]:
            parse, submit = ScenarioSpec.from_dict, self.manager.submit
        elif parts == ["composites"]:
            parse, submit = CompositeSpec.from_dict, self.manager.submit_composite
        elif parts == ["queries"]:
            parse, submit = QuerySpec.from_dict, self.manager.submit_query
        else:
            self._send_error_json(404, f"no such route: POST {self.path}")
            return
        submission = self._read_json_submission()
        if submission is None:
            return
        data, priority = submission
        try:
            job = submit(parse(data), priority=priority)
        except ConfigurationError as error:
            self._send_error_json(400, str(error))
            return
        except ServiceError as error:
            self._send_error_json(503, str(error))
            return
        self._send_json(201, job.summary())

    def do_DELETE(self) -> None:  # noqa: N802 — stdlib naming
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if len(parts) != 2 or parts[0] != "scenarios":
            self._send_error_json(404, f"no such route: DELETE {self.path}")
            return
        try:
            job = self.manager.cancel(self._job_id_from_path(parts))
        except JobConflictError as error:
            self._send_error_json(409, str(error))
            return
        except ServiceError as error:
            self._send_error_json(404, str(error))
            return
        # 200 when the cancel completed synchronously (queued job, or a
        # composite with nothing in flight); 202 while a running job drains
        # cooperatively towards 'cancelled'.
        self._send_json(200 if job.finished else 202, job.summary())


def create_server(port: int = 0, host: str = "127.0.0.1",
                  manager: JobManager | None = None,
                  sweep_jobs: int | None = None,
                  artifacts: ArtifactStore | None = None,
                  local_workers: int = 1,
                  verbose: bool = False) -> ScenarioServer:
    """Build a scenario server (``port=0`` binds an ephemeral port).

    ``local_workers`` sizes the in-process pool (0 = broker-only: jobs wait
    for remote workers to attach).  The caller drives the serving loop
    (``serve_forever`` — typically on a background thread in tests) and owns
    shutdown: ``server.shutdown(); server.manager.shutdown()``.
    """
    if manager is None:
        manager = JobManager(sweep_jobs=sweep_jobs, artifacts=artifacts,
                             local_workers=local_workers)
    return ScenarioServer((host, port), manager, verbose=verbose)


def drain_seconds_from_env() -> float:
    """The SIGTERM grace period selected by ``REPRO_DRAIN_SECONDS`` (default 30)."""
    env = os.environ.get("REPRO_DRAIN_SECONDS")
    if env is None or env.strip() == "":
        return 30.0
    try:
        seconds = float(env)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_DRAIN_SECONDS must be a number of seconds, got {env!r}"
        ) from None
    if seconds < 0:
        raise ConfigurationError(
            f"REPRO_DRAIN_SECONDS must be non-negative, got {env!r}"
        )
    return seconds


def serve(port: int | None = None, host: str = "127.0.0.1",
          sweep_jobs: int | None = None, local_workers: int = 1,
          verbose: bool = True) -> int:
    """Run the scenario service until interrupted (the CLI entry point).

    Durable by default: submissions are journaled under the artifact
    directory (``REPRO_JOB_JOURNAL``), unfinished jobs from a previous —
    possibly SIGKILLed — life are replayed before the socket opens, and
    SIGTERM triggers a graceful drain (stop accepting, give the running job
    ``REPRO_DRAIN_SECONDS``, park the rest for the next life).

    ``local_workers=0`` runs a pure broker: every cell is executed by remote
    ``python -m repro worker`` processes leasing over HTTP.
    """
    from repro.experiments.common import shutdown_executor

    if port is None:
        port = service_port_from_env()
    drain_grace = drain_seconds_from_env()
    journal_path = journal_path_from_env()
    journal = JobJournal(journal_path) if journal_path is not None else None
    manager = JobManager(sweep_jobs=sweep_jobs, journal=journal,
                         local_workers=local_workers)
    server = create_server(port=port, host=host, manager=manager,
                           verbose=verbose)
    replayed = manager.replay_journal()
    if replayed:
        print(f"replayed {len(replayed)} unfinished job(s) from "
              f"{journal.path}")
    artifacts = server.manager.artifacts
    print(f"scenario service listening on http://{host}:{server.port}")
    print(f"local workers: {local_workers}"
          + (" (broker-only: attach remote workers)" if local_workers == 0
             else ""))
    print(f"artifact store: {artifacts.directory} "
          f"(bound {artifacts.max_bytes // (1024 * 1024)} MB)")
    if journal is not None:
        print(f"job journal: {journal.path}")

    draining = threading.Event()

    def _on_sigterm(signum, frame):  # noqa: ARG001 — signal signature
        draining.set()
        # serve_forever must be stopped from another thread: shutdown()
        # blocks until the serving loop exits, so calling it from a signal
        # handler interrupting that very loop would deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    installed_sigterm = False
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _on_sigterm)
        installed_sigterm = True
    try:
        server.serve_forever()
        if draining.is_set():
            print("SIGTERM: draining (no new jobs, finishing the running one)")
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if installed_sigterm:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
        server.server_close()
        if draining.is_set():
            manager.drain(timeout=drain_grace)
        else:
            server.shutdown()
            manager.shutdown()
        shutdown_executor()
    return 0
