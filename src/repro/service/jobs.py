"""Job manager: the scenario service's queue, lease broker and state machine.

Submitted specs become :class:`Job` records that move through a small state
machine::

    queued -> running -> done | failed
    queued -> cancelled
    running -> cancelling -> cancelled | done | failed

Jobs wait in a priority queue (higher ``priority`` first, FIFO within a
priority).  Execution is pull-based: *workers* — the in-process
:class:`~repro.service.workers.local.LocalPool` threads and any number of
remote ``python -m repro worker`` processes — call :meth:`JobManager.
acquire_lease` to check work out.  In the default cell-granular mode the
broker expands the job's spec into its deterministic
:func:`~repro.scenarios.runner.expand_cells` order once, answers what it can
from the content-addressed result cache, and hands out *leases* over chunks
of the remaining cell indices.  A lease carries a deadline: the worker must
heartbeat (:meth:`JobManager.heartbeat_lease`) within ``REPRO_LEASE_TTL``
seconds or the lease expires and its unanswered cells requeue for the next
worker — a dead worker is harmless.  Completed outcomes flow back through
:meth:`JobManager.complete_lease` (first write per cell wins, so a zombie
worker can never corrupt a result) and the broker assembles the final
payload with the same :func:`~repro.scenarios.runner.assemble_result` the
in-process runner uses — a distributed run is bit-identical to a
single-node run by construction.

Cancelling a queued job is immediate; cancelling a *running* job is
cooperative: the job enters ``cancelling``, its
:class:`~repro.experiments.supervisor.CancelToken` is set (local workers
share the object; remote workers learn of it through the heartbeat reply)
and in-flight leases drain at the next cell boundary.

Results are cached at the scenario level: a whole-spec digest addresses the
complete result payload in the :class:`~repro.service.artifacts.
ArtifactStore`, so submitting an identical spec again completes instantly
without touching the engine.  Composite scenarios
(:mod:`repro.scenarios.composite`) extend the manager with DAG-aware
dispatch exactly as before: member jobs ride the normal priority queue (and
therefore the lease machinery), parent cancellation propagates, a member
failure fails the composite fast, and the assembled payload is cached under
a whole-composite digest.

On-demand queries (:mod:`repro.scenarios.query`) run through the same
broker: :meth:`JobManager.submit_query` drives the query on a background
thread, and each *wave* of cells the query needs becomes a child job
restricted to exactly those cell indices — waves ride the normal priority
queue and lease machinery, so a query scales across the worker fleet like
any sweep, and eliminating a losing candidate cancels its in-flight wave
through the ordinary cooperative-cancellation path.  The complete answer is
cached in the artifact store under :func:`~repro.scenarios.query.
query_digest`.

Every job also carries an append-only *event log* — queued/running/progress/
lease/terminal transitions, plus per-node events on composite parents and
wave events on query parents — consumed by the HTTP layer's SSE endpoint
through :meth:`JobManager.iter_events`.

Timekeeping discipline: every *deadline, age or interval* (lease TTLs,
heartbeat staleness, busy/uptime accounting) is computed from
``time.monotonic()``, which a wall-clock step (NTP, DST, operator ``date``)
cannot move; ``time.time()`` appears only in display fields reported
verbatim to clients (``submitted_at``, event timestamps, ``last_seen``).

With an injected test ``runner`` the manager degrades to *whole-job* leases:
the spec is never expanded and a single (local) lease covers the entire job,
driven through the injected callable exactly as the old dispatcher thread
did.
"""

from __future__ import annotations

import heapq
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.errors import (
    CacheKeyError,
    ConfigurationError,
    JobCancelledError,
    JobConflictError,
    LeaseLostError,
    ServiceError,
)
from repro.experiments.supervisor import CancelToken, supervisor_stats
from repro.scenarios.composite import (
    NODE_DONE,
    NODE_FAILED,
    NODE_PENDING,
    NODE_RUNNING,
    NODE_SKIPPED,
    CompositeSpec,
    assemble_payload,
    composite_digest,
    resolve_node_spec,
)
from repro.scenarios.ondemand import WaveExecutor, run_query
from repro.scenarios.query import QuerySpec, query_digest
from repro.scenarios.runner import (
    EVALUATORS,
    ScenarioCell,
    assemble_result,
    expand_cells,
    run_scenario,
    scenario_digest,
)
from repro.scenarios.spec import ScenarioSpec
from repro.service.artifacts import ArtifactStore
from repro.service.journal import JobJournal
from repro.service.workers.config import lease_ttl_from_env
from repro.sim.result_cache import (
    get_result_cache,
    is_cacheable_function,
    task_digest,
)

__all__ = ["JobState", "Job", "JobManager", "Lease", "LeaseGrant",
           "scenario_digest"]

# A job's event log is bounded; once full, the oldest events are dropped and
# late subscribers simply start further into the stream.  Terminal events are
# appended last, so they are never the ones dropped.
EVENT_BUFFER_LIMIT = 4096


class JobState:
    """The per-job state machine's states."""

    QUEUED = "queued"
    RUNNING = "running"
    CANCELLING = "cancelling"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted scenario (or composite) and everything the API reports.

    Plain jobs carry a ``spec``; composite parents carry a ``composite`` and
    track their member jobs through ``children`` (node name -> child job id)
    and ``node_states``.  Children point back via ``parent_id``/``node``.
    Query parents carry a ``query`` and spawn *wave* children — spec jobs
    whose ``required`` restricts them to a subset of the grid's cell indices.
    """

    id: str
    digest: str
    priority: int
    spec: ScenarioSpec | None = None
    composite: CompositeSpec | None = None
    query: QuerySpec | None = None
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    cells_done: int = 0
    cells_total: int | None = None
    cached: bool = False
    error: str | None = None
    result: dict | None = None
    parent_id: str | None = None
    node: str | None = None
    children: dict[str, str] = field(default_factory=dict)
    node_states: dict[str, str] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    events_base: int = 0
    # Cooperative-cancellation token; assigned when the job starts running
    # and shared by every lease of the job.
    cancel: CancelToken | None = field(default=None, repr=False)
    # Monotonic companion to ``started_at``: interval math (busy-seconds,
    # utilisation) must survive wall-clock steps.
    started_monotonic: float | None = field(default=None, repr=False)
    # Wave child: the subset of grid cell indices this job must answer
    # (None = the whole grid, the normal case).
    required: list[int] | None = None
    # Wave child: raw `{cell_index: outcome}` objects held for the query
    # driver (cleared once the driver collects them; never serialised).
    raw: dict | None = field(default=None, repr=False)
    # A parked job was interrupted by a graceful drain: its terminal record
    # is withheld from the journal so a restarted server replays it.
    parked: bool = False
    # Ids of the job's unresolved leases.
    leases: set[str] = field(default_factory=set, repr=False)
    # True while a completion thread assembles the result outside the lock;
    # guards against a concurrent cancel/expiry finalising the job twice.
    finalizing: bool = False
    # FIFO tiebreaker for the open-cells heap (assigned at plan adoption).
    sequence: int = 0

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def name(self) -> str:
        if self.composite is not None:
            return self.composite.name
        if self.query is not None:
            return self.query.name
        return self.spec.name

    @property
    def kind(self) -> str:
        if self.composite is not None:
            return "composite"
        if self.query is not None:
            return "query"
        return self.spec.kind

    def events_after(self, index: int) -> tuple[list[dict], int]:
        """Buffered events with absolute index >= ``index``, plus the next index."""
        start = max(0, index - self.events_base)
        return self.events[start:], self.events_base + len(self.events)

    def summary(self) -> dict:
        """The JSON status payload (everything but the result body)."""
        payload = {
            "id": self.id,
            "name": self.name,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "cached": self.cached,
            "progress": {"done": self.cells_done, "total": self.cells_total},
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if self.composite is not None:
            payload["children"] = dict(self.children)
            payload["nodes"] = dict(self.node_states)
        if self.query is not None:
            payload["children"] = dict(self.children)
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
            payload["node"] = self.node
        return payload


@dataclass
class Lease:
    """One worker's claim on a chunk of a job's sweep cells.

    ``cells`` is the list of cell indices (positions in the job's
    :func:`expand_cells` order) the worker must evaluate; ``None`` means a
    whole-job lease (injected-runner mode).  ``deadline`` is a monotonic
    timestamp refreshed by every heartbeat; the reaper expires remote leases
    past it.  Local leases never expire — an in-process worker cannot vanish
    without the whole broker vanishing with it.
    """

    id: str
    job_id: str
    worker: str
    cells: list[int] | None
    granted_at: float
    deadline: float
    local: bool
    done: int = 0
    resolved: bool = False


@dataclass
class LeaseGrant:
    """Everything a worker needs to execute a lease.

    The HTTP layer serialises the JSON-safe subset (spec dict, cell indices,
    ttl) for remote workers; the in-process pool additionally receives the
    live ``token``, the expanded ``tasks`` and — for whole-job leases — the
    injected ``runner``.
    """

    lease_id: str
    job_id: str
    kind: str  # "cells" | "job"
    spec: ScenarioSpec
    cells: list[int] | None
    tasks: list | None
    total_cells: int | None
    ttl: float
    token: CancelToken | None
    runner: object | None = None


@dataclass
class _JobPlan:
    """Broker-side expansion of one cell-mode job (guarded by the manager lock).

    ``pending`` holds the not-yet-leased cell indices, ``outcomes`` the
    answered ones (first write wins).  ``digests`` aligns with ``cells`` when
    the cell cache applies, so remotely-computed outcomes can be persisted
    into the broker's cache as they arrive.  ``required`` restricts a query
    *wave* to a subset of the grid: only those indices are leased, the job
    completes when they are all answered, and no whole-sweep payload is
    assembled (the query driver consumes the raw outcomes instead).
    """

    cells: list[ScenarioCell]
    pending: list[int]
    outcomes: dict[int, object]
    digests: list[str] | None
    use_cache: bool
    required: list[int] | None = None

    @property
    def goal(self) -> int:
        """How many cells this job must answer to finish."""
        return len(self.cells) if self.required is None else len(self.required)

    @property
    def complete(self) -> bool:
        if self.required is None:
            return len(self.outcomes) == len(self.cells)
        return all(index in self.outcomes for index in self.required)


def _default_runner(spec: ScenarioSpec, jobs: int | None, progress, cancel) -> dict:
    """Execute a spec through the scenario engine; returns the result payload."""
    return run_scenario(spec, jobs=jobs, progress=progress, cancel=cancel).to_dict()


class JobManager:
    """Priority queue + lease broker + scenario-level result cache.

    ``sweep_jobs`` is forwarded to the engine as the process-pool worker
    count; ``artifacts=None`` builds the environment-configured store;
    ``scenario_cache=False`` disables the scenario-level (artifact) cache
    while leaving cell-level caching to ``REPRO_CACHE`` as usual.  ``runner``
    is injectable for tests: a callable ``(spec, jobs, progress, cancel) ->
    dict`` that should raise :class:`JobCancelledError` when the cancel token
    fires — injecting one switches the manager to whole-job leases executed
    by the local pool only.  ``journal`` is an optional :class:`JobJournal`:
    parentless submissions are recorded durably and :meth:`replay_journal`
    resubmits whatever a killed server never finished.

    ``local_workers`` sizes the in-process worker pool (default 1, matching
    the historical single-dispatcher semantics; 0 runs a broker that only
    remote workers drain).  ``lease_ttl`` overrides ``REPRO_LEASE_TTL``;
    both are validated eagerly so a typo fails at startup.

    Terminal job records (and their in-memory result payloads) are bounded:
    once more than ``max_finished_jobs`` *parentless* jobs have finished, the
    oldest are dropped — their ids answer 404 afterwards, as a long-lived
    server must not grow without bound.  A finished composite *child* is kept
    as long as its parent record lives (clients navigate parent -> children)
    and is evicted together with the parent.  Whole-scenario payloads stay
    available through the (disk-backed, LRU-bounded) artifact store
    regardless: resubmitting the same spec is a cache hit.
    """

    def __init__(self, sweep_jobs: int | None = None,
                 artifacts: ArtifactStore | None = None,
                 scenario_cache: bool = True,
                 runner=None,
                 max_finished_jobs: int = 256,
                 journal: JobJournal | None = None,
                 local_workers: int = 1,
                 lease_ttl: float | str | None = None):
        if (not isinstance(local_workers, int) or isinstance(local_workers, bool)
                or local_workers < 0):
            raise ConfigurationError(
                f"local_workers must be a non-negative integer, "
                f"got {local_workers!r}"
            )
        self.sweep_jobs = sweep_jobs
        self.artifacts = artifacts if artifacts is not None else ArtifactStore()
        self.scenario_cache = scenario_cache
        self.max_finished_jobs = max(1, max_finished_jobs)
        self.journal = journal
        self.lease_ttl = lease_ttl_from_env(lease_ttl)
        self.scenario_hits = 0
        self.scenario_misses = 0
        self.started_at = time.time()
        # Uptime/utilisation intervals are measured on the monotonic clock;
        # ``started_at`` above is the wall-clock display value only.
        self._started_monotonic = time.monotonic()
        self.busy_seconds = 0.0
        self._runner = runner
        # With an injected runner the broker cannot expand specs into cells
        # (the runner may not even read the spec); it hands out whole-job
        # leases to the local pool instead.
        self._cell_mode = runner is None
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queue: list[tuple[int, int, str]] = []
        self._sequence = 0
        self._stop = False
        self._draining = False
        # Lease-broker state, all guarded by the manager lock.
        self._leases: dict[str, Lease] = {}
        self._plans: dict[str, _JobPlan] = {}
        self._workers: dict[str, dict] = {}
        self._open_cells: list[tuple[int, int, str]] = []
        self._lease_stats = {"granted_total": 0, "expired_total": 0,
                             "requeued_cells_total": 0}
        self._reaper = threading.Thread(
            target=self._reap_loop, name="lease-reaper", daemon=True
        )
        self._reaper.start()
        self._pool = None
        if local_workers > 0:
            # Imported lazily: the workers package is layered on top of this
            # module (LocalPool drives the manager through its public lease
            # API), so a module-level import would be circular in spirit even
            # though LocalPool only duck-types the manager.
            from repro.service.workers.local import LocalPool

            self._pool = LocalPool(self, count=local_workers,
                                   sweep_jobs=sweep_jobs)
            self._pool.start()

    # ------------------------------------------------------------------ events

    def _emit_locked(self, job: Job, event: str, **payload) -> None:
        """Append one event to a job's log (lock held) and wake subscribers.

        ``seq`` is the event's absolute position in the job's log (stable
        across buffer overflow), so SSE clients can resume a cut stream with
        ``Last-Event-ID`` without replaying what they already saw.
        """
        record = {"event": event, "job": job.id,
                  "seq": job.events_base + len(job.events),
                  "time": time.time(), **payload}
        job.events.append(record)
        overflow = len(job.events) - EVENT_BUFFER_LIMIT
        if overflow > 0:
            del job.events[:overflow]
            job.events_base += overflow
        self._condition.notify_all()

    def _emit_terminal_locked(self, job: Job) -> None:
        self._emit_locked(job, job.state, cached=job.cached, error=job.error)
        # Parked jobs keep their submit record live so a restart replays them.
        if (self.journal is not None and job.parent_id is None
                and not job.parked):
            self.journal.record_terminal(job.id, job.state)

    def _emit_progress_locked(self, job: Job) -> None:
        """Emit a progress event (and mirror it onto a composite parent)."""
        self._emit_locked(job, "progress", done=job.cells_done,
                          total=job.cells_total)
        if job.parent_id is not None:
            parent = self._jobs.get(job.parent_id)
            # A parent that went terminal (cancelled / failed fast) while
            # this member drains must not receive events after its terminal
            # event.
            if parent is not None and not parent.finished:
                self._emit_locked(parent, "node_progress", node=job.node,
                                  done=job.cells_done, total=job.cells_total)

    def iter_events(self, job_id: str, heartbeat_seconds: float = 10.0,
                    start_index: int = 0):
        """Yield a job's events as they happen; a generator that ends after
        the terminal event.

        Events already buffered are replayed first, so subscribing after
        completion yields the full (bounded) history immediately.
        ``start_index`` skips events whose absolute index (the ``seq`` field)
        is below it — the server side of SSE ``Last-Event-ID`` resumption.
        When no event arrives within ``heartbeat_seconds`` a synthetic
        ``{"event": "heartbeat"}`` is yielded so SSE consumers can detect a
        dead connection.  An unknown (or already pruned) job id raises
        :class:`ServiceError` up front; the job record is then *held* for the
        stream's lifetime, so a subscriber always receives the terminal event
        even if retention prunes the job mid-stream (pruning happens after
        the terminal emission, in the same locked transition).
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job '{job_id}'")
        index = max(0, start_index)
        while True:
            with self._condition:
                events, index = job.events_after(index)
                if not events and not job.finished and not self._stop:
                    self._condition.wait(timeout=heartbeat_seconds)
                    events, index = job.events_after(index)
                finished = job.finished
                stopping = self._stop
            yield from events
            if events and events[-1]["event"] in JobState.TERMINAL:
                return
            if not events:
                if finished or stopping:
                    # Terminal event already replayed to this subscriber (or
                    # the manager is shutting down): end the stream.
                    return
                yield {"event": "heartbeat", "job": job_id, "time": time.time()}

    # ------------------------------------------------------------------ client API

    def submit(self, spec: ScenarioSpec, priority: int = 0,
               job_id: str | None = None) -> Job:
        """Validate and enqueue a spec; returns the (possibly finished) job.

        An identical spec whose result is already in the artifact store
        completes instantly: the job is born ``done`` with ``cached=True``.
        ``job_id`` preserves a replayed job's original id so clients polling
        across a server restart keep working.
        """
        spec.validate()
        self._reject_if_unavailable()
        digest = scenario_digest(spec)
        # The artifact read is disk I/O — do it before taking the lock that
        # the workers, status queries and SSE emitters all share.
        cached = self.artifacts.get(digest) if self.scenario_cache else None
        if self.journal is not None and cached is None:
            # Journal *before* enqueueing: a crash in between replays an
            # accepted-but-lost job, never loses an acknowledged one.
            job_id = job_id or uuid.uuid4().hex[:12]
            self.journal.record_submit(job_id, "scenario", spec.to_dict(),
                                       priority)
        with self._condition:
            if self._stop:
                raise ServiceError("the job manager is shut down")
            return self._submit_spec_locked(spec, digest, priority,
                                            cached=cached, job_id=job_id)

    def _reject_if_unavailable(self) -> None:
        if self._stop:
            raise ServiceError("the job manager is shut down")
        if self._draining:
            raise ServiceError("the job manager is draining")

    def _submit_spec_locked(self, spec: ScenarioSpec, digest: str, priority: int,
                            cached: dict | None,
                            parent: Job | None = None,
                            node: str | None = None,
                            job_id: str | None = None) -> Job:
        """Create and enqueue one spec job (lock held).

        ``cached`` is the pre-fetched artifact payload (or None); a cached
        job is born done.  Parent bookkeeping for an instantly-done child is
        the *caller's* job — :meth:`_launch_ready_nodes_locked` drives its
        worklist with it — so this method never re-enters composite code.
        """
        job = Job(
            id=job_id or uuid.uuid4().hex[:12],
            spec=spec,
            digest=digest,
            priority=priority,
            submitted_at=time.time(),
            parent_id=parent.id if parent is not None else None,
            node=node,
        )
        self._jobs[job.id] = job
        if parent is not None:
            parent.children[node] = job.id
            parent.node_states[node] = NODE_RUNNING
            self._emit_locked(parent, "node_start", node=node, child=job.id)
        if cached is not None:
            self.scenario_hits += 1
            job.result = cached
            job.cached = True
            job.state = JobState.DONE
            job.finished_at = job.submitted_at
            self._emit_terminal_locked(job)
            self._prune_finished_locked()
            self._condition.notify_all()
        else:
            self.scenario_misses += 1
            self._sequence += 1
            heapq.heappush(self._queue, (-priority, self._sequence, job.id))
            self._emit_locked(job, JobState.QUEUED)
            self._condition.notify_all()
        return job

    def submit_composite(self, composite: CompositeSpec, priority: int = 0,
                         job_id: str | None = None) -> Job:
        """Validate a composite DAG and fan out its ready member jobs.

        The returned parent job coordinates the DAG: members are submitted as
        child jobs the moment their dependencies finish (parameter references
        resolved against the upstream results), and the parent completes when
        every node has.  An identical composite whose assembled payload is
        already in the artifact store completes instantly with
        ``cached=True``, without touching any member.  Only the *parent* is
        journaled: replaying it re-fans-out the members, and those already
        completed are answered by the artifact store.
        """
        composite.validate()
        self._reject_if_unavailable()
        digest = composite_digest(composite)
        cached = self.artifacts.get(digest) if self.scenario_cache else None
        if self.journal is not None and cached is None:
            job_id = job_id or uuid.uuid4().hex[:12]
            self.journal.record_submit(job_id, "composite", composite.to_dict(),
                                       priority)
        with self._condition:
            if self._stop:
                raise ServiceError("the job manager is shut down")
            parent = Job(
                id=job_id or uuid.uuid4().hex[:12],
                composite=composite,
                digest=digest,
                priority=priority,
                submitted_at=time.time(),
                cells_total=len(composite.nodes),
                node_states={node.name: NODE_PENDING for node in composite.nodes},
            )
            self._jobs[parent.id] = parent
            if cached is not None:
                self.scenario_hits += 1
                parent.result = cached
                parent.cached = True
                parent.state = JobState.DONE
                parent.cells_done = len(composite.nodes)
                parent.finished_at = parent.submitted_at
                parent.node_states = {
                    node.name: NODE_DONE for node in composite.nodes
                }
                self._emit_terminal_locked(parent)
                self._prune_finished_locked()
                self._condition.notify_all()
                return parent
            self.scenario_misses += 1
            parent.state = JobState.RUNNING
            parent.started_at = parent.submitted_at
            self._emit_locked(parent, JobState.RUNNING)
            self._launch_ready_nodes_locked(parent)
            return parent

    # ------------------------------------------------------------------ queries

    def submit_query(self, query: QuerySpec, priority: int = 0,
                     job_id: str | None = None) -> Job:
        """Answer an on-demand query through broker-executed waves.

        The returned parent job coordinates the query: a background driver
        thread runs :func:`~repro.scenarios.ondemand.run_query` with a
        broker-backed wave executor, so every wave of cells becomes a child
        job riding the normal priority queue and lease machinery (and
        therefore the whole worker fleet).  Wave lifecycle events
        (``wave_started`` / ``wave_done`` / ``candidate_eliminated``) are
        mirrored onto the parent's SSE stream.  An identical query whose
        answer is already in the artifact store (keyed on
        :func:`~repro.scenarios.query.query_digest`) completes instantly
        with ``cached=True`` — no wave runs.
        """
        query.validate()
        self._reject_if_unavailable()
        if not self._cell_mode:
            raise ServiceError(
                "queries need the cell-granular broker; a manager with an "
                "injected runner only grants whole-job leases"
            )
        digest = query_digest(query)
        cached = self.artifacts.get(digest) if self.scenario_cache else None
        if self.journal is not None and cached is None:
            job_id = job_id or uuid.uuid4().hex[:12]
            self.journal.record_submit(job_id, "query", query.to_dict(),
                                       priority)
        with self._condition:
            if self._stop:
                raise ServiceError("the job manager is shut down")
            parent = Job(
                id=job_id or uuid.uuid4().hex[:12],
                query=query,
                digest=digest,
                priority=priority,
                submitted_at=time.time(),
            )
            self._jobs[parent.id] = parent
            if cached is not None:
                self.scenario_hits += 1
                parent.result = cached
                parent.cached = True
                parent.state = JobState.DONE
                parent.finished_at = parent.submitted_at
                cells = cached.get("cells", {})
                parent.cells_done = cells.get("evaluated", 0)
                parent.cells_total = cells.get("total")
                self._emit_terminal_locked(parent)
                self._prune_finished_locked()
                self._condition.notify_all()
                return parent
            self.scenario_misses += 1
            parent.state = JobState.RUNNING
            parent.started_at = time.time()
            parent.cancel = CancelToken()
            self._emit_locked(parent, JobState.RUNNING)
        driver = threading.Thread(target=self._drive_query, args=(parent,),
                                  name=f"query-{parent.id}", daemon=True)
        driver.start()
        return parent

    def _drive_query(self, parent: Job) -> None:
        """Run one query to its answer on a dedicated driver thread.

        The driver never holds a lease or evaluates a cell itself — it only
        submits wave children and blocks on their handles, so however many
        queries run concurrently, the cell work still flows through the one
        priority queue.
        """

        def observer(event: dict) -> None:
            payload = dict(event)
            name = payload.pop("event", "wave")
            # Reserved event-record keys; the driver's payloads never carry
            # them, but guard against a future collision corrupting the log.
            for key in ("job", "seq", "time"):
                payload.pop(key, None)
            with self._condition:
                if not parent.finished:
                    self._emit_locked(parent, name, **payload)

        try:
            result = run_query(parent.query,
                               executor=_BrokerWaveExecutor(self, parent),
                               observer=observer, cancel=parent.cancel)
        except JobCancelledError:
            with self._condition:
                if not parent.finished:
                    self._finalize_query_locked(parent, JobState.CANCELLED)
            return
        except Exception as error:  # noqa: BLE001 — any driver failure must fail the job
            with self._condition:
                if not parent.finished:
                    self._finalize_query_locked(
                        parent, JobState.FAILED,
                        f"{type(error).__name__}: {error}")
            return
        payload = result.to_dict()
        if self.scenario_cache:
            self.artifacts.put(parent.digest, payload)
        with self._condition:
            if parent.finished:
                return
            parent.result = payload
            parent.cells_done = result.cells_evaluated
            parent.cells_total = result.cells_total
            self._finalize_query_locked(parent, JobState.DONE)

    def _finalize_query_locked(self, parent: Job, state: str,
                               error: str | None = None) -> None:
        """Take a query parent to a terminal state (lock held).

        Like :meth:`_finalize_locked` minus the lease/plan/busy bookkeeping
        a parent never owns — its wave children each settled their own.
        """
        parent.state = state
        if error is not None:
            parent.error = error
        parent.finished_at = time.time()
        if parent.cancel is not None and state in (JobState.FAILED,
                                                   JobState.CANCELLED):
            parent.cancel.cancel()
        self._emit_terminal_locked(parent)
        self._prune_finished_locked()
        self._condition.notify_all()

    def _submit_wave_locked(self, parent: Job, spec: ScenarioSpec,
                            indices: list[int], label: str) -> Job:
        """Enqueue one wave of a query as a cell-restricted child job.

        Waves skip the journal (the journaled parent re-derives them on
        replay) and the scenario-level artifact cache (a wave is a partial
        evaluation, not a whole-sweep result — its completed *cells* land in
        the cell cache as usual, which is what makes a warm replay free).
        """
        child = Job(
            id=uuid.uuid4().hex[:12],
            spec=spec,
            digest="",
            priority=parent.priority,
            submitted_at=time.time(),
            parent_id=parent.id,
            node=label,
            required=list(indices),
        )
        self._jobs[child.id] = child
        parent.children[label] = child.id
        self._sequence += 1
        heapq.heappush(self._queue, (-child.priority, self._sequence, child.id))
        self._emit_locked(child, JobState.QUEUED)
        self._emit_locked(parent, "wave_submitted", node=label, child=child.id,
                          cells=len(child.required))
        self._condition.notify_all()
        return child

    def replay_journal(self) -> list[Job]:
        """Resubmit every journaled job the previous server life never
        finished, preserving the original job ids.

        Called once at ``serve`` startup.  The journal is compacted first so
        the dead life's terminal records don't accumulate.  A record that no
        longer parses (the spec schema moved underneath it) is skipped — the
        journal is a recovery aid, not a suicide pact.
        """
        if self.journal is None:
            return []
        pending = self.journal.pending()
        self.journal.compact()
        replayed: list[Job] = []
        for record in pending:
            try:
                priority = int(record.get("priority", 0))
                if record.get("kind") == "composite":
                    composite = CompositeSpec.from_dict(record["spec"])
                    job = self.submit_composite(composite, priority=priority,
                                                job_id=record["job"])
                elif record.get("kind") == "query":
                    query = QuerySpec.from_dict(record["spec"])
                    job = self.submit_query(query, priority=priority,
                                            job_id=record["job"])
                else:
                    spec = ScenarioSpec.from_dict(record["spec"])
                    job = self.submit(spec, priority=priority,
                                      job_id=record["job"])
            except Exception:  # noqa: BLE001 — one bad record must not kill recovery
                # Retire the record: a spec that no longer parses would
                # otherwise be re-attempted (and re-skipped) on every restart.
                if record.get("job"):
                    self.journal.record_terminal(record["job"], JobState.FAILED)
                continue
            replayed.append(job)
        return replayed

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job '{job_id}'")
        return job

    def jobs(self) -> list[Job]:
        """All known jobs, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job reaches a terminal state (or the timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job '{job_id}'")
            while not job.finished:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._condition.wait(timeout=remaining)
        return job

    # ------------------------------------------------------------------ leases

    def acquire_lease(self, worker: str, max_cells: int | None = None,
                      wait: float = 0.0, remote: bool = True) -> LeaseGrant | None:
        """Check out up to ``max_cells`` sweep cells (or a whole job) to run.

        The worker's pull loop: open cells of already-running jobs are
        granted first (so a started job finishes before a new one starts),
        then the head of the priority queue is promoted to ``running`` and
        planned.  Blocks up to ``wait`` seconds for work to appear before
        returning None — the long-poll the HTTP ``POST /leases`` endpoint
        exposes.  ``max_cells=None`` takes everything pending (the local
        pool's default, preserving single-node scheduling exactly);
        ``remote=False`` marks the lease as in-process, exempt from TTL
        expiry and eligible for whole-job (injected-runner) grants.
        """
        if max_cells is not None and (not isinstance(max_cells, int)
                                      or isinstance(max_cells, bool)
                                      or max_cells <= 0):
            raise ConfigurationError(
                f"max_cells must be a positive integer, got {max_cells!r}"
            )
        deadline = time.monotonic() + max(0.0, wait)
        while True:
            with self._condition:
                if self._stop:
                    return None
                self._register_worker_locked(worker, remote)
                action = self._next_action_locked(worker, max_cells, remote)
                if action is None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._condition.wait(timeout=min(remaining, 0.25))
                    continue
                kind, payload = action
                if kind == "grant":
                    return payload
            # kind == "plan": expand the spec and pre-answer cached cells
            # outside the lock (disk I/O), then loop back for a grant.
            self._plan_and_adopt(payload)

    def _register_worker_locked(self, worker: str, remote: bool) -> dict:
        info = self._workers.get(worker)
        if info is None:
            info = {"remote": remote, "leases_held": 0, "leases_total": 0,
                    "leases_lost": 0, "cells_done": 0, "cells_failed": 0,
                    "last_seen": time.time(),
                    "last_seen_monotonic": time.monotonic()}
            self._workers[worker] = info
        else:
            self._touch_worker_locked(info)
            info["remote"] = remote
        return info

    @staticmethod
    def _touch_worker_locked(info: dict) -> None:
        """Refresh a worker's liveness stamps: monotonic for staleness math,
        wall-clock for the human-facing ``last_seen`` field."""
        info["last_seen"] = time.time()
        info["last_seen_monotonic"] = time.monotonic()

    def _next_action_locked(self, worker: str, max_cells: int | None,
                            remote: bool):
        """One scheduling decision: a lease grant, a job to plan, or None.

        Open cells first — a running job's remaining cells outrank starting
        the next queued job, matching the historical one-job-at-a-time
        dispatcher when a single worker drains the queue.  A draining
        manager grants open cells (finish what started) but never pops the
        queue.
        """
        while self._open_cells:
            _neg_priority, _sequence, job_id = self._open_cells[0]
            job = self._jobs.get(job_id)
            plan = self._plans.get(job_id)
            if (job is None or job.state != JobState.RUNNING or job.parked
                    or plan is None or not plan.pending):
                heapq.heappop(self._open_cells)
                continue
            chunk = list(plan.pending if max_cells is None
                         else plan.pending[:max_cells])
            plan.pending = plan.pending[len(chunk):]
            if not plan.pending:
                heapq.heappop(self._open_cells)
            lease = self._grant_lease_locked(job, chunk, worker, remote)
            return ("grant", LeaseGrant(
                lease_id=lease.id,
                job_id=job.id,
                kind="cells",
                spec=job.spec,
                cells=chunk,
                tasks=[plan.cells[index].task for index in chunk],
                total_cells=len(plan.cells),
                ttl=self.lease_ttl,
                token=job.cancel,
            ))
        if self._draining:
            return None
        while self._queue:
            _neg_priority, _sequence, job_id = self._queue[0]
            job = self._jobs.get(job_id)
            if job is None or job.state != JobState.QUEUED:
                heapq.heappop(self._queue)
                continue  # cancelled (or pruned with its parent) while waiting
            if not self._cell_mode and remote:
                # Injected runners are process-local callables; only the
                # in-process pool can execute them.
                return None
            heapq.heappop(self._queue)
            job.state = JobState.RUNNING
            job.started_at = time.time()
            job.started_monotonic = time.monotonic()
            job.cancel = CancelToken()
            self._emit_locked(job, JobState.RUNNING)
            if self._cell_mode:
                return ("plan", job)
            lease = self._grant_lease_locked(job, None, worker, remote)
            return ("grant", LeaseGrant(
                lease_id=lease.id,
                job_id=job.id,
                kind="job",
                spec=job.spec,
                cells=None,
                tasks=None,
                total_cells=None,
                ttl=self.lease_ttl,
                token=job.cancel,
                runner=self._runner,
            ))
        return None

    def _grant_lease_locked(self, job: Job, cells: list[int] | None,
                            worker: str, remote: bool) -> Lease:
        lease = Lease(
            id=uuid.uuid4().hex[:12],
            job_id=job.id,
            worker=worker,
            cells=cells,
            granted_at=time.time(),
            deadline=time.monotonic() + self.lease_ttl,
            local=not remote,
        )
        self._leases[lease.id] = lease
        job.leases.add(lease.id)
        info = self._register_worker_locked(worker, remote)
        info["leases_held"] += 1
        info["leases_total"] += 1
        self._lease_stats["granted_total"] += 1
        self._emit_locked(job, "lease_granted", lease=lease.id, worker=worker,
                          cells=len(cells) if cells is not None else None)
        return lease

    def _resolve_lease_locked(self, lease: Lease) -> None:
        lease.resolved = True
        self._leases.pop(lease.id, None)
        job = self._jobs.get(lease.job_id)
        if job is not None:
            job.leases.discard(lease.id)
        info = self._workers.get(lease.worker)
        if info is not None:
            info["leases_held"] = max(0, info["leases_held"] - 1)

    # ---------------------------------------------------------------- planning

    def _plan_and_adopt(self, job: Job) -> None:
        """Expand a freshly-promoted job into cells and adopt the plan.

        Runs on the acquiring worker's thread with the lock *released* for
        the expensive parts: cell expansion and the cache precheck are pure
        CPU/disk work.  A job whose every cell is already cached completes
        here without any lease ever existing.
        """
        try:
            plan = self._plan_job(job.spec, required=job.required)
        except Exception as error:  # noqa: BLE001 — a bad spec must fail the job, not the worker
            with self._condition:
                if not job.finished:
                    self._finalize_locked(job, JobState.FAILED,
                                          f"{type(error).__name__}: {error}")
            return
        with self._condition:
            if job.finished:
                return
            if job.state == JobState.CANCELLING:
                self._finalize_locked(job, JobState.CANCELLED)
                return
            self._plans[job.id] = plan
            job.cells_total = plan.goal
            job.cells_done = len(plan.outcomes)
            self._emit_progress_locked(job)
            if plan.pending:
                self._sequence += 1
                job.sequence = self._sequence
                heapq.heappush(self._open_cells,
                               (-job.priority, job.sequence, job.id))
                self._condition.notify_all()
                return
            if plan.required is not None:
                # A fully-cached wave finishes here, no lease ever granted.
                self._finish_wave_locked(job, plan)
                return
            job.finalizing = True
            spec, cells = job.spec, plan.cells
            ordered = [plan.outcomes[index] for index in range(len(cells))]
        self._assemble_and_finish(job, spec, cells, ordered)

    def _plan_job(self, spec: ScenarioSpec,
                  required: list[int] | None = None) -> _JobPlan:
        """Expand the spec and answer whatever the cell cache already holds.

        Mirrors :func:`repro.experiments.common.run_parallel`'s cache
        precheck exactly (same digesting, same ambient batch-cycles extra),
        so the broker and a single-node run agree cell for cell on what is
        cached.  ``required`` restricts a query wave to a subset of the
        grid's indices: the cells list (and digest alignment) still covers
        the whole grid — indices stay global — but only the required cells
        are cache-probed and queued.
        """
        evaluator, _cost_key = EVALUATORS[spec.kind]
        cells = expand_cells(spec)
        if required is not None:
            bad = [index for index in required
                   if not 0 <= index < len(cells)]
            if bad:
                raise ConfigurationError(
                    f"wave cell indices {bad!r} are outside the spec's "
                    f"{len(cells)}-cell grid"
                )
        wanted = list(range(len(cells))) if required is None else list(required)
        outcomes: dict[int, object] = {}
        digests: list[str] | None = None
        cache = get_result_cache()
        use_cache = cache.enabled and is_cacheable_function(evaluator)
        if use_cache:
            from repro.sim.system import resolved_batch_cycles

            extra = ("batch_cycles", repr(resolved_batch_cycles()))
            try:
                digests = [task_digest(evaluator, cell.task, extra=extra)
                           for cell in cells]
            except CacheKeyError:
                use_cache = False
                digests = None
            else:
                for index in wanted:
                    hit, value = cache.get(digests[index])
                    if hit:
                        outcomes[index] = value
        pending = [index for index in wanted if index not in outcomes]
        return _JobPlan(cells=cells, pending=pending, outcomes=outcomes,
                        digests=digests, use_cache=use_cache,
                        required=None if required is None else list(required))

    def _assemble_and_finish(self, job: Job, spec: ScenarioSpec,
                             cells: list[ScenarioCell], ordered: list) -> None:
        """Assemble the final payload outside the lock and finalise ``done``.

        The caller must have set ``job.finalizing`` under the lock; nothing
        else finalises a job while that flag is up.
        """
        try:
            payload = assemble_result(spec, cells, ordered).to_dict()
        except Exception as error:  # noqa: BLE001 — assembly failure must fail the job
            with self._condition:
                self._finalize_locked(job, JobState.FAILED,
                                      f"{type(error).__name__}: {error}")
            return
        if self.scenario_cache:
            self.artifacts.put(job.digest, payload)
        with self._condition:
            job.result = payload
            self._finalize_locked(job, JobState.DONE)

    def _finish_wave_locked(self, job: Job, plan: _JobPlan) -> None:
        """Finish a query wave child ``done`` (lock held): stash the raw
        outcomes for the driver, no sweep assembly, no artifact write."""
        job.raw = {index: plan.outcomes[index] for index in plan.required}
        job.result = {"cells": sorted(plan.required)}
        job.cells_done = len(plan.required)
        self._finalize_locked(job, JobState.DONE)

    # -------------------------------------------------------------- heartbeats

    def heartbeat_lease(self, lease_id: str, done: int | None = None,
                        total: int | None = None) -> dict:
        """Refresh a lease's deadline and report progress; returns directives.

        ``done`` counts the lease's completed cells (whole-job leases pass
        ``done``/``total`` over the entire job instead).  The reply carries
        the job's state and a ``cancel`` flag the worker must honour — how a
        remote worker, which cannot share the broker's
        :class:`CancelToken` object, learns of cooperative cancellation.
        Heartbeating a lease the broker no longer honours (expired, job
        finished elsewhere) raises :class:`LeaseLostError` — HTTP 410 — and
        the worker abandons the work.
        """
        with self._condition:
            lease = self._leases.get(lease_id)
            if lease is None or lease.resolved:
                raise LeaseLostError(f"lease '{lease_id}' is no longer held")
            lease.deadline = time.monotonic() + self.lease_ttl
            info = self._workers.get(lease.worker)
            if info is not None:
                self._touch_worker_locked(info)
            job = self._jobs.get(lease.job_id)
            if job is None or job.finished:
                # The job went terminal while the lease was in flight (e.g.
                # another lease's error failed it); stop working.
                self._resolve_lease_locked(lease)
                state = job.state if job is not None else "unknown"
                return {"state": state, "cancel": True}
            if lease.cells is None:
                if done is not None and total is not None:
                    job.cells_done = int(done)
                    job.cells_total = int(total)
                    self._emit_progress_locked(job)
            elif done is not None:
                clamped = max(0, min(int(done), len(lease.cells)))
                if clamped != lease.done:
                    lease.done = clamped
                    self._refresh_cell_progress_locked(job)
            cancel = job.state == JobState.CANCELLING or job.parked
            return {"state": job.state, "cancel": cancel}

    def _refresh_cell_progress_locked(self, job: Job) -> None:
        """Recompute a cell-mode job's progress from outcomes + live leases."""
        plan = self._plans.get(job.id)
        if plan is None:
            return
        done = len(plan.outcomes)
        for lease_id in job.leases:
            lease = self._leases.get(lease_id)
            if lease is not None and lease.cells is not None:
                done += lease.done
        done = min(done, plan.goal)
        if done == job.cells_done:
            return
        job.cells_done = done
        self._emit_progress_locked(job)

    # -------------------------------------------------------------- completion

    def complete_lease(self, lease_id: str, outcomes=None,
                       error: str | None = None,
                       cancelled: bool = False) -> Job | None:
        """Resolve a lease with its results, an error, or a cancellation.

        Cell leases pass ``outcomes`` as ``{cell_index: outcome}``; a
        whole-job lease passes the runner's complete result payload.  The
        first write per cell wins — a zombie worker whose lease expired and
        requeued can still post, but can never overwrite what another worker
        already answered (and an expired lease raises
        :class:`LeaseLostError` here anyway).  A worker that *cancelled*
        (its own shutdown, or honouring the broker's cancel directive)
        requeues its unanswered cells unless the job itself is being
        cancelled.  When the last cell lands, the broker persists remotely
        computed outcomes into the cell cache, assembles the payload and
        finishes the job ``done``.
        """
        to_persist: list[tuple[str, object]] = []
        finish: tuple | None = None
        with self._condition:
            lease = self._leases.get(lease_id)
            if lease is None or lease.resolved:
                raise LeaseLostError(f"lease '{lease_id}' is no longer held")
            self._resolve_lease_locked(lease)
            info = self._workers.get(lease.worker)
            if info is not None:
                self._touch_worker_locked(info)
            job = self._jobs.get(lease.job_id)
            if job is None or job.finished:
                return job  # late completion of a job decided elsewhere
            if error is not None:
                if info is not None:
                    info["cells_failed"] += (len(lease.cells)
                                             if lease.cells is not None else 1)
                self._finalize_locked(job, JobState.FAILED, error)
                return job
            if lease.cells is None:
                # Whole-job lease (injected runner).
                if cancelled:
                    self._finalize_locked(job, JobState.CANCELLED)
                    return job
                if info is not None:
                    info["cells_done"] += job.cells_done
                job.finalizing = True
                finish = ("payload", outcomes)
            elif cancelled:
                plan = self._plans.get(job.id)
                if job.state == JobState.CANCELLING or job.parked:
                    if not job.leases and not job.finalizing:
                        self._finalize_locked(job, JobState.CANCELLED)
                    return job
                # The worker gave the lease back (its own shutdown, a lost
                # broker connection): requeue so another worker picks it up.
                if plan is not None:
                    missing = [index for index in lease.cells
                               if index not in plan.outcomes]
                    if missing:
                        self._requeue_cells_locked(job, plan, missing)
                return job
            else:
                plan = self._plans.get(job.id)
                if plan is None:
                    return job
                fresh: dict[int, object] = {}
                for key, value in (outcomes or {}).items():
                    index = int(key)
                    if index in plan.outcomes or index not in lease.cells:
                        continue
                    fresh[index] = value
                plan.outcomes.update(fresh)
                if info is not None:
                    info["cells_done"] += len(fresh)
                missing = [index for index in lease.cells
                           if index not in plan.outcomes]
                if missing and job.state == JobState.RUNNING and not job.parked:
                    self._requeue_cells_locked(job, plan, missing)
                self._refresh_cell_progress_locked(job)
                if (plan.use_cache and plan.digests is not None
                        and not lease.local):
                    # Local leases already persisted cell-by-cell inside
                    # run_parallel; remote outcomes are persisted here so the
                    # broker's cache answers future runs (and other workers
                    # via the HTTP artifact backend).
                    to_persist = [(plan.digests[index], value)
                                  for index, value in fresh.items()]
                if plan.complete:
                    if plan.required is not None:
                        # Query wave: no whole-sweep assembly — the driver
                        # consumes the raw outcomes through the wave handle.
                        self._finish_wave_locked(job, plan)
                    else:
                        job.finalizing = True
                        ordered = [plan.outcomes[index]
                                   for index in range(len(plan.cells))]
                        finish = ("cells", job.spec, plan.cells, ordered)
                elif (job.state == JobState.CANCELLING or job.parked) \
                        and not job.leases:
                    self._finalize_locked(job, JobState.CANCELLED)
                    return job
                else:
                    self._condition.notify_all()
        if to_persist:
            cache = get_result_cache()
            for digest, value in to_persist:
                cache.put(digest, value)
        if finish is None:
            return job
        if finish[0] == "payload":
            payload = finish[1]
            if self.scenario_cache and isinstance(payload, dict):
                self.artifacts.put(job.digest, payload)
            with self._condition:
                job.result = payload
                self._finalize_locked(job, JobState.DONE)
            return job
        _kind, spec, cells, ordered = finish
        self._assemble_and_finish(job, spec, cells, ordered)
        return job

    def _requeue_cells_locked(self, job: Job, plan: _JobPlan,
                              indices: list[int]) -> None:
        plan.pending.extend(indices)
        self._lease_stats["requeued_cells_total"] += len(indices)
        if job.sequence == 0:
            self._sequence += 1
            job.sequence = self._sequence
        heapq.heappush(self._open_cells, (-job.priority, job.sequence, job.id))
        self._condition.notify_all()

    def _finalize_locked(self, job: Job, state: str,
                         error: str | None = None) -> None:
        """Take a spec job to a terminal state (lock held): revoke leases,
        drop the plan, emit the terminal event, advance any parent."""
        job.state = state
        if error is not None:
            job.error = error
        job.finished_at = time.time()
        if job.started_monotonic is not None:
            self.busy_seconds += time.monotonic() - job.started_monotonic
        job.finalizing = False
        for lease_id in list(job.leases):
            lease = self._leases.get(lease_id)
            if lease is not None:
                self._resolve_lease_locked(lease)
        if job.cancel is not None and state in (JobState.FAILED,
                                                JobState.CANCELLED):
            # Sibling leases of a failed/cancelled job must stop working;
            # their eventual posts answer 410 and are discarded.
            job.cancel.cancel()
        self._plans.pop(job.id, None)
        self._emit_terminal_locked(job)
        if job.parent_id is not None:
            self._on_child_terminal_locked(job)
        self._prune_finished_locked()
        self._condition.notify_all()

    # ------------------------------------------------------------------ expiry

    def _reap_loop(self) -> None:
        interval = max(0.05, min(self.lease_ttl / 4.0, 5.0))
        with self._condition:
            while not self._stop:
                self._condition.wait(timeout=interval)
                if self._stop:
                    return
                now = time.monotonic()
                expired = [lease for lease in self._leases.values()
                           if not lease.local and now > lease.deadline]
                for lease in expired:
                    self._expire_lease_locked(lease)

    def _expire_lease_locked(self, lease: Lease) -> None:
        """A remote worker missed its heartbeat: revoke and requeue."""
        self._resolve_lease_locked(lease)
        self._lease_stats["expired_total"] += 1
        info = self._workers.get(lease.worker)
        if info is not None:
            info["leases_lost"] += 1
        job = self._jobs.get(lease.job_id)
        if job is None or job.finished:
            return
        self._emit_locked(job, "lease_expired", lease=lease.id,
                          worker=lease.worker)
        plan = self._plans.get(job.id)
        if lease.cells is not None and plan is not None:
            if job.state == JobState.RUNNING and not job.parked:
                missing = [index for index in lease.cells
                           if index not in plan.outcomes]
                if missing:
                    self._requeue_cells_locked(job, plan, missing)
        if ((job.state == JobState.CANCELLING or job.parked)
                and not job.leases and not job.finalizing):
            self._finalize_locked(job, JobState.CANCELLED)

    # ------------------------------------------------------------ cancellation

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued jobs immediately, running jobs cooperatively.

        The check-and-transition happens under the same lock the lease
        broker uses to move a job to ``running``, so the two can never
        half-cancel a job between them.  A queued job goes straight to
        ``cancelled``.  A *running* job enters ``cancelling``: its cancel
        token is set (remote workers learn through the heartbeat reply) and
        every lease drains at the next cell boundary — a lease that
        completes before noticing still lands its outcomes; a job whose
        every cell completed anyway still finishes ``done`` (the work was
        already paid for).  Cancelling again while ``cancelling`` is
        idempotent; only a finished job raises :class:`JobConflictError`
        (HTTP 409).  Cancelling a composite parent propagates to its
        descendants: queued children are cancelled, unlaunched nodes are
        skipped, and running children get their tokens set — the parent
        stays ``cancelling`` until the last one drains.
        """
        with self._condition:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job '{job_id}'")
            if job.composite is not None:
                if job.finished:
                    raise JobConflictError(
                        f"job '{job_id}' is {job.state}; a finished composite "
                        f"cannot be cancelled"
                    )
                if job.state != JobState.CANCELLING:
                    self._cancel_composite_locked(job)
                return job
            if job.query is not None:
                # Setting the token is enough: the driver thread notices at
                # the next wave boundary (or mid-wait through its polling
                # wave handles), cancels the in-flight wave children and
                # finalises the parent ``cancelled``.
                if job.finished:
                    raise JobConflictError(
                        f"job '{job_id}' is {job.state}; a finished query "
                        f"cannot be cancelled"
                    )
                if job.state != JobState.CANCELLING:
                    job.state = JobState.CANCELLING
                    if job.cancel is not None:
                        job.cancel.cancel()
                    self._emit_locked(job, JobState.CANCELLING)
                    self._condition.notify_all()
                return job
            if job.state == JobState.CANCELLING:
                return job  # idempotent: already being cancelled
            if job.state == JobState.RUNNING:
                job.state = JobState.CANCELLING
                if job.cancel is not None:
                    job.cancel.cancel()
                self._emit_locked(job, JobState.CANCELLING)
                self._maybe_finish_cancel_locked(job)
                self._condition.notify_all()
                return job
            if job.state != JobState.QUEUED:
                raise JobConflictError(
                    f"job '{job_id}' is {job.state}; a finished job "
                    f"cannot be cancelled"
                )
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            # The queue entry stays; the broker skips cancelled jobs.
            self._emit_terminal_locked(job)
            if job.parent_id is not None:
                self._on_child_terminal_locked(job)
            self._prune_finished_locked()
            self._condition.notify_all()
        return job

    def _maybe_finish_cancel_locked(self, job: Job) -> None:
        """Finalise a cancelling cell-mode job with nothing in flight.

        No leases and no finalisation thread means nobody will ever report
        back — the pending cells would wait forever.  A job still being
        planned (no plan adopted yet) is finalised by the planner's re-check
        instead.
        """
        if (job.spec is not None and not job.leases and not job.finalizing
                and job.id in self._plans):
            self._finalize_locked(job, JobState.CANCELLED)

    def _cancel_composite_locked(self, parent: Job) -> None:
        """Cancel a composite parent and propagate to its descendants.

        Queued children are cancelled and unlaunched nodes skipped outright;
        running children are switched to ``cancelling`` with their tokens
        set.  The parent goes terminal immediately when nothing is in
        flight, otherwise it enters ``cancelling`` *first* (so each child's
        terminal transition sees a cancelling parent and mirrors correctly)
        and waits for the last member to drain
        (:meth:`_on_child_terminal_locked` finalises it).
        """
        self._skip_descendants_locked(parent)
        active = [
            child for child_id in parent.children.values()
            if (child := self._jobs.get(child_id)) is not None
            and child.state in (JobState.RUNNING, JobState.CANCELLING)
        ]
        if not active:
            parent.state = JobState.CANCELLED
            parent.finished_at = time.time()
            self._emit_terminal_locked(parent)
            self._prune_finished_locked()
            self._condition.notify_all()
            return
        parent.state = JobState.CANCELLING
        self._emit_locked(parent, JobState.CANCELLING)
        for child in active:
            if child.state != JobState.RUNNING:
                continue
            child.state = JobState.CANCELLING
            if child.cancel is not None:
                child.cancel.cancel()
            self._emit_locked(child, JobState.CANCELLING)
            self._maybe_finish_cancel_locked(child)
        self._condition.notify_all()

    def _skip_descendants_locked(self, parent: Job) -> None:
        """Cancel queued children and mark unlaunched nodes skipped (lock held).

        Shared by composite cancellation and fail-fast: running members are
        left to drain (their outcome is mirrored into the node table when
        they finish), queued members are cancelled, never-launched nodes are
        skipped.
        """
        now = time.time()
        for node, child_id in parent.children.items():
            child = self._jobs.get(child_id)
            if child is None or child.state != JobState.QUEUED:
                continue
            child.state = JobState.CANCELLED
            child.finished_at = now
            parent.node_states[node] = NODE_SKIPPED
            self._emit_terminal_locked(child)
            self._emit_locked(parent, "node_skipped", node=node)
        for node, state in parent.node_states.items():
            if state == NODE_PENDING:
                parent.node_states[node] = NODE_SKIPPED
                self._emit_locked(parent, "node_skipped", node=node)

    # ------------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Queue depth, per-state counts, cache hit rates, worker fleet."""
        now_monotonic = time.monotonic()
        with self._lock:
            by_state: dict[str, int] = {}
            composites = 0
            queries = 0
            running_ids: list[str] = []
            busy = self.busy_seconds
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
                if job.composite is not None:
                    composites += 1
                    continue
                if job.query is not None:
                    # A query parent occupies no worker itself — its wave
                    # children carry the busy time.
                    queries += 1
                    continue
                if job.state in (JobState.RUNNING, JobState.CANCELLING):
                    running_ids.append(job.id)
                    if job.started_monotonic is not None:
                        busy += now_monotonic - job.started_monotonic
            queue_depth = by_state.get(JobState.QUEUED, 0)
            total = len(self._jobs)
            workers = {
                name: {
                    "remote": info["remote"],
                    "leases_held": info["leases_held"],
                    "leases_total": info["leases_total"],
                    "leases_lost": info["leases_lost"],
                    "cells_done": info["cells_done"],
                    "cells_failed": info["cells_failed"],
                    "last_seen": info["last_seen"],
                    "heartbeat_age_seconds": max(
                        0.0, now_monotonic - info["last_seen_monotonic"]),
                }
                for name, info in self._workers.items()
            }
            leases = {"active": len(self._leases), **self._lease_stats}
        uptime = max(now_monotonic - self._started_monotonic, 1e-9)
        cell_cache = get_result_cache()
        return {
            "uptime_seconds": uptime,
            "queue_depth": queue_depth,
            "running": running_ids,
            "jobs_total": total,
            "jobs_by_state": by_state,
            "composites_total": composites,
            "queries_total": queries,
            "scenario_cache": {
                "hits": self.scenario_hits,
                "misses": self.scenario_misses,
                **self.artifacts.stats.as_dict(),
            },
            "cell_cache": {
                "enabled": cell_cache.enabled,
                **cell_cache.stats.as_dict(),
            },
            "worker_utilisation": min(1.0, busy / uptime),
            "busy_seconds": busy,
            "workers": workers,
            "leases": leases,
            "supervisor": supervisor_stats().as_dict(),
            "journal": self.journal.stats() if self.journal is not None else None,
        }

    # ---------------------------------------------------------------- lifecycle

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop granting leases; queued jobs stay queued (service is ending)."""
        with self._condition:
            self._stop = True
            self._condition.notify_all()
        if self._pool is not None:
            self._pool.stop(timeout=timeout)
        self._reaper.join(timeout=timeout)

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful SIGTERM path: stop accepting, finish or park, flush.

        New submissions are rejected and the queue stops being popped —
        leases over *already running* jobs keep being granted so started
        work can finish.  Running jobs get up to ``timeout`` seconds to
        complete normally; past that they are *parked* — cancel tokens fire,
        every completed cell already persisted in the result cache, and
        their journal submit records stay live so the next server life
        replays them and the cache answers the cells they finished.  Queued
        jobs simply stay in the journal.  Ends with a journal compaction.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._condition:
            self._draining = True
            self._condition.notify_all()
        self._await_idle(deadline)
        with self._condition:
            for job in list(self._jobs.values()):
                if job.finished or job.started_at is None:
                    continue
                if job.state not in (JobState.RUNNING, JobState.CANCELLING):
                    continue
                job.parked = True
                if job.parent_id is not None:
                    parent = self._jobs.get(job.parent_id)
                    if parent is not None:
                        parent.parked = True
                if job.cancel is not None:
                    job.cancel.cancel()
        # Give parked leases one cell boundary to unwind before stopping.
        self._await_idle(time.monotonic() + 5.0)
        self.shutdown()
        if self.journal is not None:
            self.journal.compact()

    def _await_idle(self, deadline: float) -> None:
        """Wait until no spec job is executing (or the deadline passes)."""
        with self._condition:
            while True:
                busy = any(
                    job.spec is not None and not job.finished
                    and job.state in (JobState.RUNNING, JobState.CANCELLING)
                    and (job.leases or job.finalizing
                         or job.started_at is not None)
                    for job in self._jobs.values()
                )
                if not busy:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                self._condition.wait(timeout=min(remaining, 0.25))

    # ------------------------------------------------------------------ composites

    def _launch_ready_nodes_locked(self, parent: Job) -> None:
        """Submit every pending node whose dependencies are done (lock held).

        Parameter references resolve against the finished children's result
        payloads.  A resolution failure (bad selector output, spec made
        invalid by the injected values) fails the composite like a member
        failure would.  A ready child may complete instantly (artifact-store
        hit), unblocking its dependents in turn — the worklist loop rescans
        until a pass launches nothing, iteratively rather than recursively,
        so an arbitrarily deep all-cached chain cannot exhaust the stack.
        Finishes the parent when the last node completes.
        """
        progressed = True
        while progressed and not parent.finished:
            progressed = False
            upstream: dict[str, dict] = {}
            for node_name, child_id in parent.children.items():
                child = self._jobs.get(child_id)
                if child is not None and child.state == JobState.DONE:
                    upstream[node_name] = child.result
            for node in parent.composite.nodes:
                if parent.node_states.get(node.name) != NODE_PENDING:
                    continue
                if not all(parent.node_states.get(dep) == NODE_DONE
                           for dep in node.depends_on):
                    continue
                try:
                    spec = resolve_node_spec(node, upstream)
                    digest = scenario_digest(spec)
                except Exception as error:  # noqa: BLE001 — resolution must fail the composite, not the caller
                    reason = f"{type(error).__name__}: {error}"
                    parent.node_states[node.name] = NODE_FAILED
                    self._emit_locked(parent, "node_failed", node=node.name,
                                      error=reason)
                    self._fail_composite_locked(
                        parent,
                        f"node '{node.name}' failed to resolve: {reason}",
                        failed_node=node.name, reason=reason,
                    )
                    return
                # Member artifacts are small summary payloads; reading one
                # under the lock is bounded by the node count per pass.
                cached = (self.artifacts.get(digest)
                          if self.scenario_cache else None)
                child = self._submit_spec_locked(spec, digest, parent.priority,
                                                 cached, parent=parent,
                                                 node=node.name)
                if child.state == JobState.DONE:
                    parent.node_states[node.name] = NODE_DONE
                    parent.cells_done += 1
                    self._emit_locked(parent, "node_cached", node=node.name,
                                      child=child.id)
                    progressed = True  # dependents may have become ready
        if not parent.finished and all(
            state == NODE_DONE for state in parent.node_states.values()
        ):
            self._finish_composite_locked(parent)

    def _on_child_terminal_locked(self, child: Job) -> None:
        """Advance (or fail) the parent composite after a child finishes."""
        parent = self._jobs.get(child.parent_id or "")
        if parent is None:
            return
        if parent.query is not None:
            # Query waves are consumed through their handles by the driver
            # thread; the parent's node table and DAG logic don't apply.
            return
        node = child.node
        if parent.finished:
            # The parent reached a terminal state (cancellation, fail-fast)
            # while this member drained: mirror the member's real outcome in
            # the node table so the two never contradict, but emit nothing —
            # the parent's terminal event must stay last in its log.
            parent.node_states[node] = {
                JobState.DONE: NODE_DONE,
                JobState.FAILED: NODE_FAILED,
            }.get(child.state, NODE_SKIPPED)
            return
        if parent.state == JobState.CANCELLING:
            # A cancelled parent drains its in-flight members: mirror each
            # outcome, never launch dependents, and go terminal when the
            # last one lands.
            parent.node_states[node] = {
                JobState.DONE: NODE_DONE,
                JobState.FAILED: NODE_FAILED,
            }.get(child.state, NODE_SKIPPED)
            if child.state == JobState.DONE:
                parent.cells_done += 1
                self._emit_locked(parent, "node_done", node=node, child=child.id)
            active = any(
                (sibling := self._jobs.get(child_id)) is not None
                and not sibling.finished
                for child_id in parent.children.values()
            )
            if not active:
                parent.state = JobState.CANCELLED
                parent.finished_at = time.time()
                self._emit_terminal_locked(parent)
                self._prune_finished_locked()
                self._condition.notify_all()
            return
        if child.state == JobState.DONE:
            parent.node_states[node] = NODE_DONE
            parent.cells_done += 1
            self._emit_locked(parent, "node_cached" if child.cached else "node_done",
                              node=node, child=child.id)
            self._launch_ready_nodes_locked(parent)
            return
        parent.node_states[node] = NODE_FAILED
        reason = child.error or f"member job was {child.state}"
        self._emit_locked(parent, "node_failed", node=node, child=child.id,
                          error=reason)
        self._fail_composite_locked(parent, f"node '{node}' failed: {reason}",
                                    failed_node=node, reason=reason)

    def _partial_payload_locked(self, parent: Job) -> dict:
        """The assembled payload of whatever members finished (lock held)."""
        payloads: dict[str, dict] = {}
        resolved: dict[str, ScenarioSpec] = {}
        cached: dict[str, bool] = {}
        for node, child_id in parent.children.items():
            child = self._jobs.get(child_id)
            if child is None or child.state != JobState.DONE:
                continue
            payloads[node] = child.result
            resolved[node] = child.spec
            cached[node] = child.cached
        return assemble_payload(parent.composite, payloads, resolved, cached)

    def _finish_composite_locked(self, parent: Job) -> None:
        parent.result = self._partial_payload_locked(parent)
        if self.scenario_cache:
            # One bounded write at composite completion; member payloads were
            # each persisted outside the lock when their jobs executed.
            self.artifacts.put(parent.digest, parent.result)
        parent.state = JobState.DONE
        parent.finished_at = time.time()
        self._emit_terminal_locked(parent)
        self._prune_finished_locked()
        self._condition.notify_all()

    def _fail_composite_locked(self, parent: Job, message: str,
                               failed_node: str, reason: str) -> None:
        """Fail fast: cancel queued descendants, keep the partial results.

        The partial payload mirrors :meth:`CompositeResult.to_dict`'s failure
        shape — ``node_states`` plus per-node ``node_errors`` — so service
        and CLI clients see the same structure.
        """
        self._skip_descendants_locked(parent)
        partial = self._partial_payload_locked(parent)
        partial["node_states"] = dict(parent.node_states)
        partial["node_errors"] = {failed_node: reason}
        parent.result = partial
        parent.state = JobState.FAILED
        parent.error = message
        parent.finished_at = time.time()
        self._emit_terminal_locked(parent)
        self._prune_finished_locked()
        self._condition.notify_all()

    # ------------------------------------------------------------------ retention

    def _prune_finished_locked(self) -> None:
        """Drop the oldest *parentless* terminal job records beyond the bound.

        Called with the lock held.  ``self._jobs`` preserves submission
        order, so the oldest finished jobs go first; queued and running jobs
        are never touched.  A composite child with a live parent record does
        not count against the bound and is never evicted on its own — clients
        reach children through the parent summary, so evicting a child while
        its parent is still queryable would 404 a referenced id.  Evicting a
        parent evicts its (terminal) children with it.
        """
        finished = [
            job_id for job_id, job in self._jobs.items()
            if job.finished and (job.parent_id is None
                                 or job.parent_id not in self._jobs)
        ]
        excess = len(finished) - self.max_finished_jobs
        for job_id in finished[:excess] if excess > 0 else ():
            job = self._jobs.pop(job_id)
            for child_id in job.children.values():
                child = self._jobs.get(child_id)
                if child is not None and child.finished:
                    del self._jobs[child_id]


# ------------------------------------------------------------- query waves


class _BrokerWaveExecutor(WaveExecutor):
    """Run query waves as cell-restricted child jobs of one query parent.

    The on-demand drivers in :mod:`repro.scenarios.ondemand` call ``start``
    once per wave; each call enqueues a child job whose ``required`` names
    exactly the wave's cell indices, so the lease broker fans the wave
    across whatever workers — local threads or the remote fleet — pull it.
    """

    def __init__(self, manager: JobManager, parent: Job):
        self._manager = manager
        self._parent = parent

    def start(self, spec: ScenarioSpec, indices, label: str) -> "_BrokerWaveHandle":
        manager = self._manager
        with manager._condition:
            if manager._stop:
                raise ServiceError("the job manager is shut down")
            child = manager._submit_wave_locked(self._parent, spec,
                                               list(indices), label)
        return _BrokerWaveHandle(manager, child, self._parent.cancel)


class _BrokerWaveHandle:
    """One in-flight wave: wait for (or cancel) its child job.

    ``wait`` deliberately polls the manager's condition instead of using
    :meth:`JobManager.wait`: the driver must also unblock when the *query's*
    cancel token fires or the manager stops — neither of which is a child
    state transition.
    """

    def __init__(self, manager: JobManager, child: Job,
                 token: CancelToken | None):
        self._manager = manager
        self._child = child
        self._token = token

    def wait(self) -> dict:
        manager, child = self._manager, self._child
        while True:
            with manager._condition:
                if child.finished:
                    break
                interrupted = manager._stop or (
                    self._token is not None and self._token.cancelled)
                if not interrupted:
                    manager._condition.wait(timeout=0.25)
                    continue
            # Interrupted mid-wave (shutdown or query cancellation): cancel
            # the child — its lease drains at the next cell boundary, every
            # completed cell already cached — and unwind the driver.
            self.cancel()
            raise JobCancelledError(
                f"query wave '{child.node}' interrupted by "
                f"{'shutdown' if manager._stop else 'cancellation'}"
            )
        if child.state == JobState.DONE:
            raw = child.raw or {}
            child.raw = None  # the driver owns the outcomes now; free them
            return raw
        if child.state == JobState.CANCELLED:
            raise JobCancelledError(
                f"query wave '{child.node}' was cancelled")
        raise ServiceError(
            child.error or f"query wave '{child.node}' failed")

    def cancel(self) -> None:
        try:
            self._manager.cancel(self._child.id)
        except ServiceError:
            # Already terminal (JobConflictError) or pruned: nothing to do.
            pass
