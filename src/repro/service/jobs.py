"""Job manager: the scenario service's queue, state machine and dispatcher.

Submitted specs become :class:`Job` records that move through a small state
machine::

    queued -> running -> done | failed
    queued -> cancelled

Jobs wait in a priority queue (higher ``priority`` first, FIFO within a
priority) and are executed one at a time by a background dispatcher thread —
the *sweep cells* of the running job still fan out across the shared process
pool, so a single dispatcher saturates the machine while keeping job
semantics simple (cancellation only applies to queued jobs; see
:meth:`JobManager.cancel`).

Results are cached at the scenario level: a whole-spec digest (spec JSON +
code epoch + ambient batching knob, via
:func:`repro.sim.result_cache.content_digest`) addresses the complete result
payload in the :class:`~repro.service.artifacts.ArtifactStore`, so submitting
an identical spec again completes instantly without touching the engine.
"""

from __future__ import annotations

import heapq
import threading
import time
import uuid
from dataclasses import dataclass

from repro.errors import JobConflictError, ServiceError
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.service.artifacts import ArtifactStore
from repro.sim.result_cache import content_digest, get_result_cache

__all__ = ["JobState", "Job", "JobManager", "scenario_digest"]


class JobState:
    """The per-job state machine's states."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


def scenario_digest(spec: ScenarioSpec) -> str:
    """Content digest addressing the complete result of one scenario spec.

    Folds in the same ambient knob the cell cache folds into task digests:
    a different co-simulation batch slack simulates different interleavings,
    so it must address different scenario artifacts too.
    """
    from repro.sim.system import resolved_batch_cycles

    return content_digest(
        "scenario-result", spec.to_dict(),
        extra=("batch_cycles", repr(resolved_batch_cycles())),
    )


@dataclass
class Job:
    """One submitted scenario and everything the API reports about it."""

    id: str
    spec: ScenarioSpec
    digest: str
    priority: int
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    cells_done: int = 0
    cells_total: int | None = None
    cached: bool = False
    error: str | None = None
    result: dict | None = None

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    def summary(self) -> dict:
        """The JSON status payload (everything but the result body)."""
        return {
            "id": self.id,
            "name": self.spec.name,
            "kind": self.spec.kind,
            "state": self.state,
            "priority": self.priority,
            "cached": self.cached,
            "progress": {"done": self.cells_done, "total": self.cells_total},
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


def _default_runner(spec: ScenarioSpec, jobs: int | None, progress) -> dict:
    """Execute a spec through the scenario engine; returns the result payload."""
    return run_scenario(spec, jobs=jobs, progress=progress).to_dict()


class JobManager:
    """Priority queue + dispatcher thread + scenario-level result cache.

    ``sweep_jobs`` is forwarded to the engine as the process-pool worker
    count; ``artifacts=None`` builds the environment-configured store;
    ``scenario_cache=False`` disables the scenario-level (artifact) cache
    while leaving cell-level caching to ``REPRO_CACHE`` as usual.  ``runner``
    is injectable for tests: a callable ``(spec, jobs, progress) -> dict``.

    Terminal job records (and their in-memory result payloads) are bounded:
    once more than ``max_finished_jobs`` jobs have finished, the oldest are
    dropped — their ids answer 404 afterwards, as a long-lived server must
    not grow without bound.  Whole-scenario payloads stay available through
    the (disk-backed, LRU-bounded) artifact store regardless: resubmitting
    the same spec is a cache hit.
    """

    def __init__(self, sweep_jobs: int | None = None,
                 artifacts: ArtifactStore | None = None,
                 scenario_cache: bool = True,
                 runner=None,
                 max_finished_jobs: int = 256):
        self.sweep_jobs = sweep_jobs
        self.artifacts = artifacts if artifacts is not None else ArtifactStore()
        self.scenario_cache = scenario_cache
        self.max_finished_jobs = max(1, max_finished_jobs)
        self.scenario_hits = 0
        self.scenario_misses = 0
        self.started_at = time.time()
        self.busy_seconds = 0.0
        self._runner = runner if runner is not None else _default_runner
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queue: list[tuple[int, int, str]] = []
        self._sequence = 0
        self._running_id: str | None = None
        self._stop = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="scenario-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ client API

    def submit(self, spec: ScenarioSpec, priority: int = 0) -> Job:
        """Validate and enqueue a spec; returns the (possibly finished) job.

        An identical spec whose result is already in the artifact store
        completes instantly: the job is born ``done`` with ``cached=True``.
        """
        spec.validate()
        digest = scenario_digest(spec)
        job = Job(
            id=uuid.uuid4().hex[:12],
            spec=spec,
            digest=digest,
            priority=priority,
            submitted_at=time.time(),
        )
        cached = self.artifacts.get(digest) if self.scenario_cache else None
        with self._condition:
            if self._stop:
                raise ServiceError("the job manager is shut down")
            self._jobs[job.id] = job
            if cached is not None:
                self.scenario_hits += 1
                job.result = cached
                job.cached = True
                job.state = JobState.DONE
                job.finished_at = job.submitted_at
                self._prune_finished_locked()
                self._condition.notify_all()
            else:
                self.scenario_misses += 1
                self._sequence += 1
                heapq.heappush(self._queue, (-priority, self._sequence, job.id))
                self._condition.notify_all()
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job '{job_id}'")
        return job

    def jobs(self) -> list[Job]:
        """All known jobs, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job.

        The check-and-transition happens under the same lock the dispatcher
        uses to move a job to ``running``, so a job that just started cannot
        be half-cancelled: the caller gets :class:`JobConflictError` (HTTP
        409) and the job runs to completion untouched.
        """
        with self._condition:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job '{job_id}'")
            if job.state != JobState.QUEUED:
                raise JobConflictError(
                    f"job '{job_id}' is {job.state}; only queued jobs can be cancelled"
                )
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            # The queue entry stays; the dispatcher skips cancelled jobs.
            self._prune_finished_locked()
            self._condition.notify_all()
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job reaches a terminal state (or the timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job '{job_id}'")
            while not job.finished:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._condition.wait(timeout=remaining)
        return job

    def stats(self) -> dict:
        """Queue depth, per-state counts, cache hit rates, utilisation."""
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            queue_depth = by_state.get(JobState.QUEUED, 0)
            running_id = self._running_id
            busy = self.busy_seconds
            if running_id is not None:
                running = self._jobs.get(running_id)
                if running is not None and running.started_at is not None:
                    busy += time.time() - running.started_at
            total = len(self._jobs)
        uptime = max(time.time() - self.started_at, 1e-9)
        cell_cache = get_result_cache()
        return {
            "uptime_seconds": uptime,
            "queue_depth": queue_depth,
            "running": running_id,
            "jobs_total": total,
            "jobs_by_state": by_state,
            "scenario_cache": {
                "hits": self.scenario_hits,
                "misses": self.scenario_misses,
                **self.artifacts.stats.as_dict(),
            },
            "cell_cache": {
                "enabled": cell_cache.enabled,
                **cell_cache.stats.as_dict(),
            },
            "worker_utilisation": min(1.0, busy / uptime),
            "busy_seconds": busy,
        }

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher; queued jobs stay queued (service is ending)."""
        with self._condition:
            self._stop = True
            self._condition.notify_all()
        self._dispatcher.join(timeout=timeout)

    # ------------------------------------------------------------------ dispatcher

    def _dispatch_loop(self) -> None:
        while True:
            with self._condition:
                while not self._stop and not self._queue:
                    self._condition.wait()
                if self._stop:
                    return
                _neg_priority, _sequence, job_id = heapq.heappop(self._queue)
                job = self._jobs[job_id]
                if job.state != JobState.QUEUED:
                    continue  # cancelled while waiting
                job.state = JobState.RUNNING
                job.started_at = time.time()
                self._running_id = job.id
            self._execute(job)

    def _execute(self, job: Job) -> None:
        def progress(done: int, total: int) -> None:
            job.cells_done = done
            job.cells_total = total

        try:
            payload = self._runner(job.spec, self.sweep_jobs, progress)
        except Exception as error:  # noqa: BLE001 — a job must never kill the dispatcher
            with self._condition:
                job.state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                job.finished_at = time.time()
                self.busy_seconds += job.finished_at - (job.started_at or job.finished_at)
                self._running_id = None
                self._prune_finished_locked()
                self._condition.notify_all()
            return
        if self.scenario_cache:
            self.artifacts.put(job.digest, payload)
        with self._condition:
            job.result = payload
            job.state = JobState.DONE
            job.finished_at = time.time()
            self.busy_seconds += job.finished_at - (job.started_at or job.finished_at)
            self._running_id = None
            self._prune_finished_locked()
            self._condition.notify_all()

    def _prune_finished_locked(self) -> None:
        """Drop the oldest terminal job records beyond ``max_finished_jobs``.

        Called with the lock held.  ``self._jobs`` preserves submission
        order, so the oldest finished jobs go first; queued and running jobs
        are never touched.
        """
        finished = [job_id for job_id, job in self._jobs.items() if job.finished]
        excess = len(finished) - self.max_finished_jobs
        for job_id in finished[:excess] if excess > 0 else ():
            del self._jobs[job_id]
