"""Job manager: the scenario service's queue, state machine and dispatcher.

Submitted specs become :class:`Job` records that move through a small state
machine::

    queued -> running -> done | failed
    queued -> cancelled
    running -> cancelling -> cancelled | done | failed

Jobs wait in a priority queue (higher ``priority`` first, FIFO within a
priority) and are executed one at a time by a background dispatcher thread —
the *sweep cells* of the running job still fan out across the shared process
pool, so a single dispatcher saturates the machine while keeping job
semantics simple.  Cancelling a queued job is immediate; cancelling a
*running* job is cooperative: the job enters ``cancelling``, its
:class:`~repro.experiments.supervisor.CancelToken` is set, and the engine
observes it at the next cell boundary (see :meth:`JobManager.cancel`).

Results are cached at the scenario level: a whole-spec digest (spec JSON +
code epoch + ambient batching knob, via
:func:`repro.sim.result_cache.content_digest`) addresses the complete result
payload in the :class:`~repro.service.artifacts.ArtifactStore`, so submitting
an identical spec again completes instantly without touching the engine.

Composite scenarios (:mod:`repro.scenarios.composite`) extend the manager
with DAG-aware dispatch: :meth:`JobManager.submit_composite` creates a
*parent* job that fans out one child job per member node as the node's
dependencies finish, resolving parameter references against the upstream
results at readiness time.  Children ride the normal priority queue (and the
scenario-level cache — a member whose whole-spec digest is stored completes
instantly), parent cancellation propagates to queued descendants, a member
failure fails the composite fast with the partial results attached, and the
assembled composite payload is itself cached under a whole-composite digest.

Every job also carries an append-only *event log* — queued/running/progress/
terminal transitions, plus per-node events on composite parents — consumed by
the HTTP layer's SSE endpoint through :meth:`JobManager.iter_events`.
"""

from __future__ import annotations

import heapq
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.errors import JobCancelledError, JobConflictError, ServiceError
from repro.experiments.supervisor import CancelToken, supervisor_stats
from repro.scenarios.composite import (
    NODE_DONE,
    NODE_FAILED,
    NODE_PENDING,
    NODE_RUNNING,
    NODE_SKIPPED,
    CompositeSpec,
    assemble_payload,
    composite_digest,
    resolve_node_spec,
)
from repro.scenarios.runner import run_scenario, scenario_digest
from repro.scenarios.spec import ScenarioSpec
from repro.service.artifacts import ArtifactStore
from repro.service.journal import JobJournal
from repro.sim.result_cache import get_result_cache

__all__ = ["JobState", "Job", "JobManager", "scenario_digest"]

# A job's event log is bounded; once full, the oldest events are dropped and
# late subscribers simply start further into the stream.  Terminal events are
# appended last, so they are never the ones dropped.
EVENT_BUFFER_LIMIT = 4096


class JobState:
    """The per-job state machine's states."""

    QUEUED = "queued"
    RUNNING = "running"
    CANCELLING = "cancelling"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted scenario (or composite) and everything the API reports.

    Plain jobs carry a ``spec``; composite parents carry a ``composite`` and
    track their member jobs through ``children`` (node name -> child job id)
    and ``node_states``.  Children point back via ``parent_id``/``node``.
    """

    id: str
    digest: str
    priority: int
    spec: ScenarioSpec | None = None
    composite: CompositeSpec | None = None
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    cells_done: int = 0
    cells_total: int | None = None
    cached: bool = False
    error: str | None = None
    result: dict | None = None
    parent_id: str | None = None
    node: str | None = None
    children: dict[str, str] = field(default_factory=dict)
    node_states: dict[str, str] = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    events_base: int = 0
    # Cooperative-cancellation token; assigned when the job starts running.
    cancel: CancelToken | None = field(default=None, repr=False)
    # A parked job was interrupted by a graceful drain: its terminal record
    # is withheld from the journal so a restarted server replays it.
    parked: bool = False

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def name(self) -> str:
        return self.composite.name if self.composite is not None else self.spec.name

    @property
    def kind(self) -> str:
        return "composite" if self.composite is not None else self.spec.kind

    def events_after(self, index: int) -> tuple[list[dict], int]:
        """Buffered events with absolute index >= ``index``, plus the next index."""
        start = max(0, index - self.events_base)
        return self.events[start:], self.events_base + len(self.events)

    def summary(self) -> dict:
        """The JSON status payload (everything but the result body)."""
        payload = {
            "id": self.id,
            "name": self.name,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "cached": self.cached,
            "progress": {"done": self.cells_done, "total": self.cells_total},
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if self.composite is not None:
            payload["children"] = dict(self.children)
            payload["nodes"] = dict(self.node_states)
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
            payload["node"] = self.node
        return payload


def _default_runner(spec: ScenarioSpec, jobs: int | None, progress, cancel) -> dict:
    """Execute a spec through the scenario engine; returns the result payload."""
    return run_scenario(spec, jobs=jobs, progress=progress, cancel=cancel).to_dict()


class JobManager:
    """Priority queue + dispatcher thread + scenario-level result cache.

    ``sweep_jobs`` is forwarded to the engine as the process-pool worker
    count; ``artifacts=None`` builds the environment-configured store;
    ``scenario_cache=False`` disables the scenario-level (artifact) cache
    while leaving cell-level caching to ``REPRO_CACHE`` as usual.  ``runner``
    is injectable for tests: a callable ``(spec, jobs, progress, cancel) ->
    dict`` that should raise :class:`JobCancelledError` when the cancel token
    fires.  ``journal`` is an optional :class:`JobJournal`: parentless
    submissions are recorded durably and :meth:`replay_journal` resubmits
    whatever a killed server never finished.

    Terminal job records (and their in-memory result payloads) are bounded:
    once more than ``max_finished_jobs`` *parentless* jobs have finished, the
    oldest are dropped — their ids answer 404 afterwards, as a long-lived
    server must not grow without bound.  A finished composite *child* is kept
    as long as its parent record lives (clients navigate parent -> children)
    and is evicted together with the parent.  Whole-scenario payloads stay
    available through the (disk-backed, LRU-bounded) artifact store
    regardless: resubmitting the same spec is a cache hit.
    """

    def __init__(self, sweep_jobs: int | None = None,
                 artifacts: ArtifactStore | None = None,
                 scenario_cache: bool = True,
                 runner=None,
                 max_finished_jobs: int = 256,
                 journal: JobJournal | None = None):
        self.sweep_jobs = sweep_jobs
        self.artifacts = artifacts if artifacts is not None else ArtifactStore()
        self.scenario_cache = scenario_cache
        self.max_finished_jobs = max(1, max_finished_jobs)
        self.journal = journal
        self.scenario_hits = 0
        self.scenario_misses = 0
        self.started_at = time.time()
        self.busy_seconds = 0.0
        self._runner = runner if runner is not None else _default_runner
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queue: list[tuple[int, int, str]] = []
        self._sequence = 0
        self._running_id: str | None = None
        self._stop = False
        self._draining = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="scenario-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ events

    def _emit_locked(self, job: Job, event: str, **payload) -> None:
        """Append one event to a job's log (lock held) and wake subscribers.

        ``seq`` is the event's absolute position in the job's log (stable
        across buffer overflow), so SSE clients can resume a cut stream with
        ``Last-Event-ID`` without replaying what they already saw.
        """
        record = {"event": event, "job": job.id,
                  "seq": job.events_base + len(job.events),
                  "time": time.time(), **payload}
        job.events.append(record)
        overflow = len(job.events) - EVENT_BUFFER_LIMIT
        if overflow > 0:
            del job.events[:overflow]
            job.events_base += overflow
        self._condition.notify_all()

    def _emit_terminal_locked(self, job: Job) -> None:
        self._emit_locked(job, job.state, cached=job.cached, error=job.error)
        # Parked jobs keep their submit record live so a restart replays them.
        if (self.journal is not None and job.parent_id is None
                and not job.parked):
            self.journal.record_terminal(job.id, job.state)

    def iter_events(self, job_id: str, heartbeat_seconds: float = 10.0,
                    start_index: int = 0):
        """Yield a job's events as they happen; a generator that ends after
        the terminal event.

        Events already buffered are replayed first, so subscribing after
        completion yields the full (bounded) history immediately.
        ``start_index`` skips events whose absolute index (the ``seq`` field)
        is below it — the server side of SSE ``Last-Event-ID`` resumption.
        When no event arrives within ``heartbeat_seconds`` a synthetic
        ``{"event": "heartbeat"}`` is yielded so SSE consumers can detect a
        dead connection.  An unknown (or already pruned) job id raises
        :class:`ServiceError` up front; the job record is then *held* for the
        stream's lifetime, so a subscriber always receives the terminal event
        even if retention prunes the job mid-stream (pruning happens after
        the terminal emission, in the same locked transition).
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job '{job_id}'")
        index = max(0, start_index)
        while True:
            with self._condition:
                events, index = job.events_after(index)
                if not events and not job.finished and not self._stop:
                    self._condition.wait(timeout=heartbeat_seconds)
                    events, index = job.events_after(index)
                finished = job.finished
                stopping = self._stop
            yield from events
            if events and events[-1]["event"] in JobState.TERMINAL:
                return
            if not events:
                if finished or stopping:
                    # Terminal event already replayed to this subscriber (or
                    # the manager is shutting down): end the stream.
                    return
                yield {"event": "heartbeat", "job": job_id, "time": time.time()}

    # ------------------------------------------------------------------ client API

    def submit(self, spec: ScenarioSpec, priority: int = 0,
               job_id: str | None = None) -> Job:
        """Validate and enqueue a spec; returns the (possibly finished) job.

        An identical spec whose result is already in the artifact store
        completes instantly: the job is born ``done`` with ``cached=True``.
        ``job_id`` preserves a replayed job's original id so clients polling
        across a server restart keep working.
        """
        spec.validate()
        self._reject_if_unavailable()
        digest = scenario_digest(spec)
        # The artifact read is disk I/O — do it before taking the lock that
        # the dispatcher, status queries and SSE emitters all share.
        cached = self.artifacts.get(digest) if self.scenario_cache else None
        if self.journal is not None and cached is None:
            # Journal *before* enqueueing: a crash in between replays an
            # accepted-but-lost job, never loses an acknowledged one.
            job_id = job_id or uuid.uuid4().hex[:12]
            self.journal.record_submit(job_id, "scenario", spec.to_dict(),
                                       priority)
        with self._condition:
            if self._stop:
                raise ServiceError("the job manager is shut down")
            return self._submit_spec_locked(spec, digest, priority,
                                            cached=cached, job_id=job_id)

    def _reject_if_unavailable(self) -> None:
        if self._stop:
            raise ServiceError("the job manager is shut down")
        if self._draining:
            raise ServiceError("the job manager is draining")

    def _submit_spec_locked(self, spec: ScenarioSpec, digest: str, priority: int,
                            cached: dict | None,
                            parent: Job | None = None,
                            node: str | None = None,
                            job_id: str | None = None) -> Job:
        """Create and enqueue one spec job (lock held).

        ``cached`` is the pre-fetched artifact payload (or None); a cached
        job is born done.  Parent bookkeeping for an instantly-done child is
        the *caller's* job — :meth:`_launch_ready_nodes_locked` drives its
        worklist with it — so this method never re-enters composite code.
        """
        job = Job(
            id=job_id or uuid.uuid4().hex[:12],
            spec=spec,
            digest=digest,
            priority=priority,
            submitted_at=time.time(),
            parent_id=parent.id if parent is not None else None,
            node=node,
        )
        self._jobs[job.id] = job
        if parent is not None:
            parent.children[node] = job.id
            parent.node_states[node] = NODE_RUNNING
            self._emit_locked(parent, "node_start", node=node, child=job.id)
        if cached is not None:
            self.scenario_hits += 1
            job.result = cached
            job.cached = True
            job.state = JobState.DONE
            job.finished_at = job.submitted_at
            self._emit_terminal_locked(job)
            self._prune_finished_locked()
            self._condition.notify_all()
        else:
            self.scenario_misses += 1
            self._sequence += 1
            heapq.heappush(self._queue, (-priority, self._sequence, job.id))
            self._emit_locked(job, JobState.QUEUED)
            self._condition.notify_all()
        return job

    def submit_composite(self, composite: CompositeSpec, priority: int = 0,
                         job_id: str | None = None) -> Job:
        """Validate a composite DAG and fan out its ready member jobs.

        The returned parent job coordinates the DAG: members are submitted as
        child jobs the moment their dependencies finish (parameter references
        resolved against the upstream results), and the parent completes when
        every node has.  An identical composite whose assembled payload is
        already in the artifact store completes instantly with
        ``cached=True``, without touching any member.  Only the *parent* is
        journaled: replaying it re-fans-out the members, and those already
        completed are answered by the artifact store.
        """
        composite.validate()
        self._reject_if_unavailable()
        digest = composite_digest(composite)
        cached = self.artifacts.get(digest) if self.scenario_cache else None
        if self.journal is not None and cached is None:
            job_id = job_id or uuid.uuid4().hex[:12]
            self.journal.record_submit(job_id, "composite", composite.to_dict(),
                                       priority)
        with self._condition:
            if self._stop:
                raise ServiceError("the job manager is shut down")
            parent = Job(
                id=job_id or uuid.uuid4().hex[:12],
                composite=composite,
                digest=digest,
                priority=priority,
                submitted_at=time.time(),
                cells_total=len(composite.nodes),
                node_states={node.name: NODE_PENDING for node in composite.nodes},
            )
            self._jobs[parent.id] = parent
            if cached is not None:
                self.scenario_hits += 1
                parent.result = cached
                parent.cached = True
                parent.state = JobState.DONE
                parent.cells_done = len(composite.nodes)
                parent.finished_at = parent.submitted_at
                parent.node_states = {
                    node.name: NODE_DONE for node in composite.nodes
                }
                self._emit_terminal_locked(parent)
                self._prune_finished_locked()
                self._condition.notify_all()
                return parent
            self.scenario_misses += 1
            parent.state = JobState.RUNNING
            parent.started_at = parent.submitted_at
            self._emit_locked(parent, JobState.RUNNING)
            self._launch_ready_nodes_locked(parent)
            return parent

    def replay_journal(self) -> list[Job]:
        """Resubmit every journaled job the previous server life never
        finished, preserving the original job ids.

        Called once at ``serve`` startup.  The journal is compacted first so
        the dead life's terminal records don't accumulate.  A record that no
        longer parses (the spec schema moved underneath it) is skipped — the
        journal is a recovery aid, not a suicide pact.
        """
        if self.journal is None:
            return []
        pending = self.journal.pending()
        self.journal.compact()
        replayed: list[Job] = []
        for record in pending:
            try:
                priority = int(record.get("priority", 0))
                if record.get("kind") == "composite":
                    composite = CompositeSpec.from_dict(record["spec"])
                    job = self.submit_composite(composite, priority=priority,
                                                job_id=record["job"])
                else:
                    spec = ScenarioSpec.from_dict(record["spec"])
                    job = self.submit(spec, priority=priority,
                                      job_id=record["job"])
            except Exception:  # noqa: BLE001 — one bad record must not kill recovery
                # Retire the record: a spec that no longer parses would
                # otherwise be re-attempted (and re-skipped) on every restart.
                if record.get("job"):
                    self.journal.record_terminal(record["job"], JobState.FAILED)
                continue
            replayed.append(job)
        return replayed

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job '{job_id}'")
        return job

    def jobs(self) -> list[Job]:
        """All known jobs, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued jobs immediately, running jobs cooperatively.

        The check-and-transition happens under the same lock the dispatcher
        uses to move a job to ``running``, so the two can never half-cancel a
        job between them.  A queued job goes straight to ``cancelled``.  A
        *running* job enters ``cancelling``: its cancel token is set and the
        engine raises :class:`JobCancelledError` at the next cell boundary
        (a run that completes before noticing still finishes ``done`` — the
        work was already paid for).  Cancelling again while ``cancelling`` is
        idempotent; only a finished job raises :class:`JobConflictError`
        (HTTP 409).  Cancelling a composite parent propagates to its
        descendants: queued children are cancelled, unlaunched nodes are
        skipped, and running children get their tokens set — the parent stays
        ``cancelling`` until the last one drains.
        """
        with self._condition:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job '{job_id}'")
            if job.composite is not None:
                if job.finished:
                    raise JobConflictError(
                        f"job '{job_id}' is {job.state}; a finished composite "
                        f"cannot be cancelled"
                    )
                if job.state != JobState.CANCELLING:
                    self._cancel_composite_locked(job)
                return job
            if job.state == JobState.CANCELLING:
                return job  # idempotent: already being cancelled
            if job.state == JobState.RUNNING:
                job.state = JobState.CANCELLING
                if job.cancel is not None:
                    job.cancel.cancel()
                self._emit_locked(job, JobState.CANCELLING)
                self._condition.notify_all()
                return job
            if job.state != JobState.QUEUED:
                raise JobConflictError(
                    f"job '{job_id}' is {job.state}; a finished job "
                    f"cannot be cancelled"
                )
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            # The queue entry stays; the dispatcher skips cancelled jobs.
            self._emit_terminal_locked(job)
            if job.parent_id is not None:
                self._on_child_terminal_locked(job)
            self._prune_finished_locked()
            self._condition.notify_all()
        return job

    def _cancel_composite_locked(self, parent: Job) -> None:
        """Cancel a composite parent and propagate to its descendants.

        Queued children are cancelled and unlaunched nodes skipped outright;
        running children are switched to ``cancelling`` with their tokens
        set.  The parent goes terminal immediately when nothing is in
        flight, otherwise it waits in ``cancelling`` for the last member to
        drain (:meth:`_on_child_terminal_locked` finalises it).
        """
        self._skip_descendants_locked(parent)
        draining = False
        for child_id in parent.children.values():
            child = self._jobs.get(child_id)
            if child is None:
                continue
            if child.state == JobState.RUNNING:
                child.state = JobState.CANCELLING
                if child.cancel is not None:
                    child.cancel.cancel()
                self._emit_locked(child, JobState.CANCELLING)
                draining = True
            elif child.state == JobState.CANCELLING:
                draining = True
        if draining:
            parent.state = JobState.CANCELLING
            self._emit_locked(parent, JobState.CANCELLING)
            self._condition.notify_all()
            return
        parent.state = JobState.CANCELLED
        parent.finished_at = time.time()
        self._emit_terminal_locked(parent)
        self._prune_finished_locked()
        self._condition.notify_all()

    def _skip_descendants_locked(self, parent: Job) -> None:
        """Cancel queued children and mark unlaunched nodes skipped (lock held).

        Shared by composite cancellation and fail-fast: running members are
        left to drain (their outcome is mirrored into the node table when
        they finish), queued members are cancelled, never-launched nodes are
        skipped.
        """
        now = time.time()
        for node, child_id in parent.children.items():
            child = self._jobs.get(child_id)
            if child is None or child.state != JobState.QUEUED:
                continue
            child.state = JobState.CANCELLED
            child.finished_at = now
            parent.node_states[node] = NODE_SKIPPED
            self._emit_terminal_locked(child)
            self._emit_locked(parent, "node_skipped", node=node)
        for node, state in parent.node_states.items():
            if state == NODE_PENDING:
                parent.node_states[node] = NODE_SKIPPED
                self._emit_locked(parent, "node_skipped", node=node)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job reaches a terminal state (or the timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job '{job_id}'")
            while not job.finished:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._condition.wait(timeout=remaining)
        return job

    def stats(self) -> dict:
        """Queue depth, per-state counts, cache hit rates, utilisation."""
        with self._lock:
            by_state: dict[str, int] = {}
            composites = 0
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
                if job.composite is not None:
                    composites += 1
            queue_depth = by_state.get(JobState.QUEUED, 0)
            running_id = self._running_id
            busy = self.busy_seconds
            if running_id is not None:
                running = self._jobs.get(running_id)
                if running is not None and running.started_at is not None:
                    busy += time.time() - running.started_at
            total = len(self._jobs)
        uptime = max(time.time() - self.started_at, 1e-9)
        cell_cache = get_result_cache()
        return {
            "uptime_seconds": uptime,
            "queue_depth": queue_depth,
            "running": running_id,
            "jobs_total": total,
            "jobs_by_state": by_state,
            "composites_total": composites,
            "scenario_cache": {
                "hits": self.scenario_hits,
                "misses": self.scenario_misses,
                **self.artifacts.stats.as_dict(),
            },
            "cell_cache": {
                "enabled": cell_cache.enabled,
                **cell_cache.stats.as_dict(),
            },
            "worker_utilisation": min(1.0, busy / uptime),
            "busy_seconds": busy,
            "supervisor": supervisor_stats().as_dict(),
            "journal": self.journal.stats() if self.journal is not None else None,
        }

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the dispatcher; queued jobs stay queued (service is ending)."""
        with self._condition:
            self._stop = True
            self._condition.notify_all()
        self._dispatcher.join(timeout=timeout)

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful SIGTERM path: stop accepting, finish or park, flush.

        New submissions are rejected and the dispatcher launches nothing
        further.  The running job gets up to ``timeout`` seconds to finish
        normally; past that it is *parked* — its cancel token fires, every
        completed cell already persisted in the result cache, and its journal
        submit record stays live so the next server life replays it and the
        cache answers the cells it finished.  Queued jobs simply stay in the
        journal.  Ends with a journal compaction.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        with self._condition:
            self._draining = True
            self._condition.notify_all()
        self._await_idle(deadline)
        with self._condition:
            running = (self._jobs.get(self._running_id)
                       if self._running_id is not None else None)
            if running is not None and not running.finished:
                running.parked = True
                if running.parent_id is not None:
                    parent = self._jobs.get(running.parent_id)
                    if parent is not None:
                        parent.parked = True
                if running.cancel is not None:
                    running.cancel.cancel()
        # Give a parked job one cell boundary to unwind before stopping.
        self._await_idle(time.monotonic() + 5.0)
        self.shutdown()
        if self.journal is not None:
            self.journal.compact()

    def _await_idle(self, deadline: float) -> None:
        with self._condition:
            while self._running_id is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                self._condition.wait(timeout=min(remaining, 0.25))

    # ------------------------------------------------------------------ composites

    def _launch_ready_nodes_locked(self, parent: Job) -> None:
        """Submit every pending node whose dependencies are done (lock held).

        Parameter references resolve against the finished children's result
        payloads.  A resolution failure (bad selector output, spec made
        invalid by the injected values) fails the composite like a member
        failure would.  A ready child may complete instantly (artifact-store
        hit), unblocking its dependents in turn — the worklist loop rescans
        until a pass launches nothing, iteratively rather than recursively,
        so an arbitrarily deep all-cached chain cannot exhaust the stack.
        Finishes the parent when the last node completes.
        """
        progressed = True
        while progressed and not parent.finished:
            progressed = False
            upstream: dict[str, dict] = {}
            for node_name, child_id in parent.children.items():
                child = self._jobs.get(child_id)
                if child is not None and child.state == JobState.DONE:
                    upstream[node_name] = child.result
            for node in parent.composite.nodes:
                if parent.node_states.get(node.name) != NODE_PENDING:
                    continue
                if not all(parent.node_states.get(dep) == NODE_DONE
                           for dep in node.depends_on):
                    continue
                try:
                    spec = resolve_node_spec(node, upstream)
                    digest = scenario_digest(spec)
                except Exception as error:  # noqa: BLE001 — resolution must fail the composite, not the caller
                    reason = f"{type(error).__name__}: {error}"
                    parent.node_states[node.name] = NODE_FAILED
                    self._emit_locked(parent, "node_failed", node=node.name,
                                      error=reason)
                    self._fail_composite_locked(
                        parent,
                        f"node '{node.name}' failed to resolve: {reason}",
                        failed_node=node.name, reason=reason,
                    )
                    return
                # Member artifacts are small summary payloads; reading one
                # under the lock is bounded by the node count per pass.
                cached = (self.artifacts.get(digest)
                          if self.scenario_cache else None)
                child = self._submit_spec_locked(spec, digest, parent.priority,
                                                 cached, parent=parent,
                                                 node=node.name)
                if child.state == JobState.DONE:
                    parent.node_states[node.name] = NODE_DONE
                    parent.cells_done += 1
                    self._emit_locked(parent, "node_cached", node=node.name,
                                      child=child.id)
                    progressed = True  # dependents may have become ready
        if not parent.finished and all(
            state == NODE_DONE for state in parent.node_states.values()
        ):
            self._finish_composite_locked(parent)

    def _on_child_terminal_locked(self, child: Job) -> None:
        """Advance (or fail) the parent composite after a child finishes."""
        parent = self._jobs.get(child.parent_id or "")
        if parent is None:
            return
        node = child.node
        if parent.finished:
            # The parent reached a terminal state (cancellation, fail-fast)
            # while this member drained: mirror the member's real outcome in
            # the node table so the two never contradict, but emit nothing —
            # the parent's terminal event must stay last in its log.
            parent.node_states[node] = {
                JobState.DONE: NODE_DONE,
                JobState.FAILED: NODE_FAILED,
            }.get(child.state, NODE_SKIPPED)
            return
        if parent.state == JobState.CANCELLING:
            # A cancelled parent drains its in-flight members: mirror each
            # outcome, never launch dependents, and go terminal when the
            # last one lands.
            parent.node_states[node] = {
                JobState.DONE: NODE_DONE,
                JobState.FAILED: NODE_FAILED,
            }.get(child.state, NODE_SKIPPED)
            if child.state == JobState.DONE:
                parent.cells_done += 1
                self._emit_locked(parent, "node_done", node=node, child=child.id)
            active = any(
                (sibling := self._jobs.get(child_id)) is not None
                and not sibling.finished
                for child_id in parent.children.values()
            )
            if not active:
                parent.state = JobState.CANCELLED
                parent.finished_at = time.time()
                self._emit_terminal_locked(parent)
                self._prune_finished_locked()
                self._condition.notify_all()
            return
        if child.state == JobState.DONE:
            parent.node_states[node] = NODE_DONE
            parent.cells_done += 1
            self._emit_locked(parent, "node_cached" if child.cached else "node_done",
                              node=node, child=child.id)
            self._launch_ready_nodes_locked(parent)
            return
        parent.node_states[node] = NODE_FAILED
        reason = child.error or f"member job was {child.state}"
        self._emit_locked(parent, "node_failed", node=node, child=child.id,
                          error=reason)
        self._fail_composite_locked(parent, f"node '{node}' failed: {reason}",
                                    failed_node=node, reason=reason)

    def _partial_payload_locked(self, parent: Job) -> dict:
        """The assembled payload of whatever members finished (lock held)."""
        payloads: dict[str, dict] = {}
        resolved: dict[str, ScenarioSpec] = {}
        cached: dict[str, bool] = {}
        for node, child_id in parent.children.items():
            child = self._jobs.get(child_id)
            if child is None or child.state != JobState.DONE:
                continue
            payloads[node] = child.result
            resolved[node] = child.spec
            cached[node] = child.cached
        return assemble_payload(parent.composite, payloads, resolved, cached)

    def _finish_composite_locked(self, parent: Job) -> None:
        parent.result = self._partial_payload_locked(parent)
        if self.scenario_cache:
            # One bounded write at composite completion; member payloads were
            # each persisted outside the lock when their jobs executed.
            self.artifacts.put(parent.digest, parent.result)
        parent.state = JobState.DONE
        parent.finished_at = time.time()
        self._emit_terminal_locked(parent)
        self._prune_finished_locked()
        self._condition.notify_all()

    def _fail_composite_locked(self, parent: Job, message: str,
                               failed_node: str, reason: str) -> None:
        """Fail fast: cancel queued descendants, keep the partial results.

        The partial payload mirrors :meth:`CompositeResult.to_dict`'s failure
        shape — ``node_states`` plus per-node ``node_errors`` — so service
        and CLI clients see the same structure.
        """
        self._skip_descendants_locked(parent)
        partial = self._partial_payload_locked(parent)
        partial["node_states"] = dict(parent.node_states)
        partial["node_errors"] = {failed_node: reason}
        parent.result = partial
        parent.state = JobState.FAILED
        parent.error = message
        parent.finished_at = time.time()
        self._emit_terminal_locked(parent)
        self._prune_finished_locked()
        self._condition.notify_all()

    # ------------------------------------------------------------------ dispatcher

    def _dispatch_loop(self) -> None:
        while True:
            with self._condition:
                # A draining manager launches nothing further: queued jobs
                # stay queued (and journaled) for the next server life.
                while not self._stop and (self._draining or not self._queue):
                    self._condition.wait()
                if self._stop:
                    return
                _neg_priority, _sequence, job_id = heapq.heappop(self._queue)
                job = self._jobs.get(job_id)
                if job is None or job.state != JobState.QUEUED:
                    continue  # cancelled (or pruned with its parent) while waiting
                job.state = JobState.RUNNING
                job.started_at = time.time()
                job.cancel = CancelToken()
                self._running_id = job.id
                self._emit_locked(job, JobState.RUNNING)
            self._execute(job)

    def _execute(self, job: Job) -> None:
        def progress(done: int, total: int) -> None:
            job.cells_done = done
            job.cells_total = total
            with self._condition:
                self._emit_locked(job, "progress", done=done, total=total)
                if job.parent_id is not None:
                    parent = self._jobs.get(job.parent_id)
                    # A parent that went terminal (cancelled / failed fast)
                    # while this member drains must not receive events after
                    # its terminal event.
                    if parent is not None and not parent.finished:
                        self._emit_locked(parent, "node_progress", node=job.node,
                                          done=done, total=total)

        try:
            payload = self._runner(job.spec, self.sweep_jobs, progress, job.cancel)
        except JobCancelledError:
            # The engine honoured the cancel token at a cell boundary.
            with self._condition:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                self.busy_seconds += job.finished_at - (job.started_at or job.finished_at)
                self._running_id = None
                self._emit_terminal_locked(job)
                if job.parent_id is not None:
                    self._on_child_terminal_locked(job)
                self._prune_finished_locked()
                self._condition.notify_all()
            return
        except Exception as error:  # noqa: BLE001 — a job must never kill the dispatcher
            with self._condition:
                job.state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                job.finished_at = time.time()
                self.busy_seconds += job.finished_at - (job.started_at or job.finished_at)
                self._running_id = None
                self._emit_terminal_locked(job)
                if job.parent_id is not None:
                    self._on_child_terminal_locked(job)
                self._prune_finished_locked()
                self._condition.notify_all()
            return
        if self.scenario_cache:
            self.artifacts.put(job.digest, payload)
        with self._condition:
            job.result = payload
            job.state = JobState.DONE
            job.finished_at = time.time()
            self.busy_seconds += job.finished_at - (job.started_at or job.finished_at)
            self._running_id = None
            self._emit_terminal_locked(job)
            if job.parent_id is not None:
                self._on_child_terminal_locked(job)
            self._prune_finished_locked()
            self._condition.notify_all()

    def _prune_finished_locked(self) -> None:
        """Drop the oldest *parentless* terminal job records beyond the bound.

        Called with the lock held.  ``self._jobs`` preserves submission
        order, so the oldest finished jobs go first; queued and running jobs
        are never touched.  A composite child with a live parent record does
        not count against the bound and is never evicted on its own — clients
        reach children through the parent summary, so evicting a child while
        its parent is still queryable would 404 a referenced id.  Evicting a
        parent evicts its (terminal) children with it.
        """
        finished = [
            job_id for job_id, job in self._jobs.items()
            if job.finished and (job.parent_id is None
                                 or job.parent_id not in self._jobs)
        ]
        excess = len(finished) - self.max_finished_jobs
        for job_id in finished[:excess] if excess > 0 else ():
            job = self._jobs.pop(job_id)
            for child_id in job.children.values():
                child = self._jobs.get(child_id)
                if child is not None and child.finished:
                    del self._jobs[child_id]
