"""Crash-safe job journal: the scenario service's durable queue.

The :class:`~repro.service.jobs.JobManager` keeps its queue in memory; a
killed server would silently forget every queued and running job.  The
journal closes that hole with an append-only JSONL file under the artifact
directory: one ``submit`` record when a (parentless) job is accepted, one
``terminal`` record when it finishes.  On startup, :func:`JobJournal.pending`
replays the file — any job submitted but never terminal is resubmitted with
its *original id*, so clients polling across the restart keep working.

Durability over elegance: every append is flushed and fsynced (a job
submission is rare and precious next to sweep cells), records are one JSON
object per line so a torn final line — the kill arriving mid-write — is
detected and ignored rather than poisoning the replay, and compaction
rewrites the file atomically (temp + ``os.replace``) keeping only live
records.

Composite *children* are never journaled: the parent record carries the
whole DAG, and replaying the parent re-fans-out its members — those already
completed are answered instantly by the artifact store and result cache.

``REPRO_JOB_JOURNAL`` selects the journal file (default:
``jobs.journal`` inside the artifact directory when serving; ``0``/``off``
disables journaling entirely).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.service.artifacts import artifact_dir_from_env

__all__ = ["JobJournal", "journal_path_from_env"]

_DISABLED = {"0", "false", "no", "off"}


def journal_path_from_env() -> Path | None:
    """The journal file selected by ``REPRO_JOB_JOURNAL``.

    Unset/empty means the default location under the artifact directory; a
    falsey value (``0``/``false``/``no``/``off``) disables journaling.
    """
    raw = os.environ.get("REPRO_JOB_JOURNAL", "").strip()
    if raw.lower() in _DISABLED and raw != "":
        return None
    if not raw:
        return artifact_dir_from_env() / "jobs.journal"
    path = Path(raw).expanduser()
    return path if path.is_absolute() else Path.cwd() / path


class JobJournal:
    """An append-only JSONL record of submitted and finished jobs."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._lock = threading.Lock()
        self.appends = 0
        self.append_errors = 0

    # ------------------------------------------------------------------ writes

    def record_submit(self, job_id: str, kind: str, spec: dict,
                      priority: int = 0) -> None:
        """Journal one accepted job (``kind`` is ``scenario`` or ``composite``)."""
        self._append({
            "type": "submit", "job": job_id, "kind": kind,
            "priority": priority, "spec": spec, "time": time.time(),
        })

    def record_terminal(self, job_id: str, state: str) -> None:
        """Journal one finished job; replay will skip it from now on."""
        self._append({
            "type": "terminal", "job": job_id, "state": state,
            "time": time.time(),
        })

    def _append(self, record: dict) -> None:
        """Append one record, flushed and fsynced (best-effort on failure).

        A journal write must never fail the submission it records — a full
        disk degrades to "no durability", counted in ``append_errors``.
        """
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                    handle.flush()
                    os.fsync(handle.fileno())
                self.appends += 1
            except OSError:
                self.append_errors += 1

    # ------------------------------------------------------------------- reads

    def records(self) -> list[dict]:
        """Every parseable record, in append order.

        A torn trailing line (the server was killed mid-append) and any other
        unparseable line are skipped: the journal is a recovery aid, and one
        bad line must not discard the rest.
        """
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "type" in record:
                records.append(record)
        return records

    def pending(self) -> list[dict]:
        """Submit records with no matching terminal record, in submit order."""
        finished = set()
        submits: dict[str, dict] = {}
        for record in self.records():
            if record.get("type") == "terminal":
                finished.add(record.get("job"))
            elif record.get("type") == "submit" and record.get("job"):
                submits[record["job"]] = record
        return [record for job_id, record in submits.items()
                if job_id not in finished]

    # -------------------------------------------------------------- compaction

    def compact(self) -> int:
        """Atomically rewrite the journal keeping only pending submits.

        Returns the number of live records kept.  Called at replay time (the
        terminal records of the previous life are dead weight) and after a
        graceful drain.
        """
        live = self.pending()
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                descriptor, temp_name = tempfile.mkstemp(
                    dir=self.path.parent, suffix=".tmp"
                )
                try:
                    with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                        for record in live:
                            handle.write(json.dumps(
                                record, separators=(",", ":"), default=str
                            ) + "\n")
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(temp_name, self.path)
                except BaseException:
                    try:
                        os.unlink(temp_name)
                    except OSError:
                        pass
                    raise
            except OSError:
                self.append_errors += 1
        return len(live)

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "appends": self.appends,
            "append_errors": self.append_errors,
            "pending": len(self.pending()),
        }
