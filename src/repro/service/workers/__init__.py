"""Worker fleet: interchangeable executors behind the broker's lease API.

The :class:`~repro.service.jobs.JobManager` never executes anything itself —
it grants *leases*.  Two executors drain them:

:class:`~repro.service.workers.local.LocalPool`
    In-process worker threads (the single-node default).  Each thread pulls
    leases straight off the manager and runs cells through
    :func:`~repro.experiments.common.run_parallel` — the same supervised
    process-pool path, with retries, timeouts, fault injection, trace
    publication and ``REPRO_VEC_BATCH`` batching all intact.

:class:`~repro.service.workers.remote.RemoteWorker`
    The ``python -m repro worker`` process: long-polls a broker's HTTP lease
    endpoints, re-expands the spec locally, executes its leased cell slice
    through the identical supervised path, heartbeats within the lease TTL
    and posts outcomes back.  Imported lazily — its HTTP client pulls in the
    jobs module, which this package must not re-enter at import time (the
    broker imports :mod:`~repro.service.workers.config` while it is itself
    still loading).
"""

from repro.service.workers.config import (
    DEFAULT_LEASE_TTL,
    DEFAULT_WORKER_POLL,
    lease_ttl_from_env,
    worker_poll_from_env,
)
from repro.service.workers.local import LocalPool

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_WORKER_POLL",
    "LocalPool",
    "RemoteWorker",
    "lease_ttl_from_env",
    "worker_poll_from_env",
]


def __getattr__(name: str):
    if name == "RemoteWorker":
        from repro.service.workers.remote import RemoteWorker

        return RemoteWorker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
