"""Environment knobs of the worker fleet (strictly validated).

Mirrors the ``REPRO_VEC_BATCH``/``REPRO_JOBS`` philosophy: a typo in a knob
must fail loudly at startup with a did-you-mean hint, never be silently
clamped into behaviour nobody asked for — on a fleet, a silently-wrong lease
TTL shows up as mysterious requeue storms hours later.

``REPRO_LEASE_TTL``
    Seconds a lease stays valid without a heartbeat (default 30).  Workers
    heartbeat at a third of this; a worker that misses the deadline loses the
    lease and its cells requeue.  Must be a positive number — lease expiry
    cannot be disabled, it is what makes a dead worker harmless.
``REPRO_WORKER_POLL``
    Seconds a worker's lease request long-polls the broker before retrying
    (default 2).  Must be a positive number.
"""

from __future__ import annotations

import difflib
import os

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_WORKER_POLL",
    "lease_ttl_from_env",
    "worker_poll_from_env",
]

DEFAULT_LEASE_TTL = 30.0
DEFAULT_WORKER_POLL = 2.0

_OFF_WORDS = ("off", "false", "no", "none", "disabled", "0")
_ON_WORDS = ("on", "true", "yes", "enabled", "auto", "default")


def _word_hint(text: str, knob: str, example: str) -> str:
    matches = difflib.get_close_matches(text.lower(), _OFF_WORDS + _ON_WORDS, n=1)
    word = matches[0] if matches else None
    if word in _OFF_WORDS:
        return (f" — {knob} cannot be disabled; pick a larger value "
                f"such as '{example}'")
    if word in _ON_WORDS:
        return f" — did you mean a number of seconds such as '{example}'?"
    return ""


def _positive_seconds(name: str, value, default: float, example: str) -> float:
    if value is None:
        env = os.environ.get(name)
        if env is None or env.strip() == "":
            return default
        value = env
    if isinstance(value, bool):
        raise ConfigurationError(
            f"{name} must be a positive number of seconds, got {value!r}"
        )
    if isinstance(value, str):
        text = value.strip()
        try:
            value = float(text)
        except ValueError:
            raise ConfigurationError(
                f"{name} must be a positive number of seconds, got {value!r}"
                f"{_word_hint(text, name, example)}"
            ) from None
    if not isinstance(value, (int, float)) or value <= 0:
        raise ConfigurationError(
            f"{name} must be a positive number of seconds, got {value!r}"
        )
    return float(value)


def lease_ttl_from_env(value: float | str | None = None) -> float:
    """The lease heartbeat deadline: explicit ``value``, else ``REPRO_LEASE_TTL``."""
    return _positive_seconds("REPRO_LEASE_TTL", value, DEFAULT_LEASE_TTL, "30")


def worker_poll_from_env(value: float | str | None = None) -> float:
    """The worker's long-poll wait: explicit ``value``, else ``REPRO_WORKER_POLL``."""
    return _positive_seconds("REPRO_WORKER_POLL", value, DEFAULT_WORKER_POLL, "2")
