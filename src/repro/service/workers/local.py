"""The in-process worker pool: lease-driven threads sharing the broker's lock.

``LocalPool`` is what makes the lease broker backwards compatible: a
:class:`~repro.service.jobs.JobManager` with ``local_workers=1`` (the
default) behaves exactly like the old dispatcher-thread design — one worker,
pulling one job at a time, taking *all* of its pending cells in a single
lease and running them through :func:`~repro.experiments.common.
run_parallel` with the shared process pool, supervised retries, per-cell
timeouts, fault injection and trace publication unchanged.  More local
workers (or remote workers attaching over HTTP) simply mean more lease
holders draining the same queue.

The pool deliberately *duck-types* the manager — it calls only the public
lease API (``acquire_lease`` / ``heartbeat_lease`` / ``complete_lease``) and
imports nothing from :mod:`repro.service.jobs`, so the broker can construct
its pool while that module is still initialising.

Local leases are exempt from TTL expiry (an in-process thread cannot outlive
the broker) and are the only ones eligible for *whole-job* grants, which
carry an injected test runner — a process-local callable no remote worker
could execute.
"""

from __future__ import annotations

import threading

from repro.errors import JobCancelledError, ServiceError
from repro.experiments.common import run_parallel
from repro.faults import FaultPlan, plan_from_env
from repro.scenarios.runner import EVALUATORS, TRACE_KEY_BUILDERS

__all__ = ["LocalPool"]


class LocalPool:
    """``count`` daemon threads pulling leases from ``manager``.

    ``sweep_jobs`` is forwarded to the engine as the process-pool worker
    count, exactly as the manager's old dispatcher forwarded it.  The pool
    takes unbounded leases (``max_cells=None``): one local worker holds one
    whole job at a time, so cell scheduling (largest first, across the whole
    sweep) is identical to a single-node run.
    """

    def __init__(self, manager, count: int = 1, sweep_jobs: int | None = None,
                 name_prefix: str = "local"):
        self.manager = manager
        self.count = max(1, count)
        self.sweep_jobs = sweep_jobs
        self.name_prefix = name_prefix
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.count):
            name = f"{self.name_prefix}-{index}"
            thread = threading.Thread(target=self._run, args=(name,),
                                      name=f"worker-{name}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------ loop

    def _run(self, worker: str) -> None:
        while not self._stop.is_set():
            try:
                grant = self.manager.acquire_lease(
                    worker=worker, max_cells=None, wait=0.5, remote=False
                )
            except ServiceError:
                return  # manager shut down
            if grant is None:
                continue
            if grant.kind == "job":
                self._execute_job(grant)
            else:
                self._execute_cells(grant)

    # ------------------------------------------------------------- execution

    def _execute_job(self, grant) -> None:
        """Run a whole-job lease through the injected runner."""

        def progress(done: int, total: int) -> None:
            self._heartbeat(grant, done=done, total=total)

        try:
            payload = grant.runner(grant.spec, self.sweep_jobs, progress,
                                   grant.token)
        except JobCancelledError:
            self._complete(grant, cancelled=True)
        except Exception as error:  # noqa: BLE001 — a job must never kill the worker
            self._complete(grant, error=f"{type(error).__name__}: {error}")
        else:
            self._complete(grant, outcomes=payload)

    def _execute_cells(self, grant) -> None:
        """Run a cell lease through the supervised parallel path.

        The fault plan (spec-level winning over ``REPRO_FAULT_PLAN``, exactly
        as :func:`~repro.scenarios.runner.run_scenario` resolves it) is
        remapped to the lease's cell slice — plan indices address positions
        in the full expansion order, while ``run_parallel`` sees only the
        leased tasks.  An explicit empty plan is passed when there is none,
        so ``run_parallel`` never falls back to the environment with
        unremapped indices.
        """
        spec = grant.spec
        evaluator, cost_key = EVALUATORS[spec.kind]

        def progress(done: int, total: int) -> None:
            self._heartbeat(grant, done=done)

        try:
            plan = spec.fault_plan if spec.fault_plan is not None else plan_from_env()
            plan = (plan if plan is not None else FaultPlan()).for_cells(grant.cells)
            outcomes = run_parallel(
                evaluator, grant.tasks, jobs=self.sweep_jobs,
                cost_key=cost_key, cache=True, progress=progress,
                cancel=grant.token, fault_plan=plan,
                trace_keys=TRACE_KEY_BUILDERS[spec.kind],
            )
        except JobCancelledError:
            self._complete(grant, cancelled=True)
        except Exception as error:  # noqa: BLE001 — a job must never kill the worker
            self._complete(grant, error=f"{type(error).__name__}: {error}")
        else:
            self._complete(grant, outcomes=dict(zip(grant.cells, outcomes)))

    # ----------------------------------------------------------- broker calls

    def _heartbeat(self, grant, done: int | None = None,
                   total: int | None = None) -> None:
        try:
            self.manager.heartbeat_lease(grant.lease_id, done=done, total=total)
        except ServiceError:
            # Lease revoked (job failed or was cancelled elsewhere): the
            # shared token is already set, run_parallel unwinds at the next
            # cell boundary.
            pass

    def _complete(self, grant, outcomes=None, error: str | None = None,
                  cancelled: bool = False) -> None:
        try:
            self.manager.complete_lease(grant.lease_id, outcomes=outcomes,
                                        error=error, cancelled=cancelled)
        except ServiceError:
            pass  # lease already resolved; the broker decided without us
