"""The remote worker: ``python -m repro worker`` leasing cells over HTTP.

A :class:`RemoteWorker` long-polls a broker's ``POST /leases`` endpoint for
a chunk of sweep cells, re-expands the job's spec locally (the grant ships
the spec JSON plus cell *indices* —
:func:`~repro.scenarios.runner.expand_cells` is deterministic, so indices
are a complete, compact description of the work), executes the slice through
the exact same supervised :func:`~repro.experiments.common.run_parallel`
path a local run uses — retries, per-cell timeouts, fault injection,
``REPRO_VEC_BATCH`` batching, trace publication — and posts the pickled
outcomes back.

A background heartbeat thread refreshes the lease within its TTL and relays
progress; the broker's reply doubles as the cancellation channel (a remote
worker cannot share the broker's in-process
:class:`~repro.experiments.supervisor.CancelToken`, so the worker keeps a
local token and sets it when the broker says ``cancel`` — or answers 410,
meaning the lease was lost and the work is now someone else's).  A worker
that dies mid-lease simply stops heartbeating: the broker expires the lease
and requeues its unanswered cells.

Pointing ``REPRO_ARTIFACT_BACKEND=http`` / ``REPRO_ARTIFACT_URL`` at the
broker (the CLI's default) makes the worker read and write the *broker's*
cell cache, so no cell is ever computed twice across the fleet.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.errors import JobCancelledError, ServiceError
from repro.experiments.common import resolve_jobs, run_parallel
from repro.experiments.supervisor import CancelToken
from repro.faults import FaultPlan, plan_from_env
from repro.scenarios.runner import EVALUATORS, TRACE_KEY_BUILDERS, expand_cells
from repro.scenarios.spec import ScenarioSpec
from repro.service.client import ServiceClient
from repro.service.workers.config import DEFAULT_LEASE_TTL, worker_poll_from_env

__all__ = ["RemoteWorker", "default_worker_id"]

# Floor between heartbeat posts: progress events must not turn into a
# request-per-cell flood on fine-grained sweeps.
_HEARTBEAT_FLOOR_SECONDS = 0.2


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique per process, readable in ``/stats``."""
    host = socket.gethostname() or "worker"
    return f"{host}-{os.getpid()}"


class RemoteWorker:
    """One worker process's lease loop against a broker URL.

    ``jobs`` sizes the worker's local process pool (``None`` resolves
    ``REPRO_JOBS`` / CPU count as usual); ``lease_cells`` caps how many cells
    one lease claims (default: the worker's pool width, so a worker leases
    about as much as it can run at once and two workers interleave on one
    job); ``poll`` is the long-poll wait per acquisition round
    (``REPRO_WORKER_POLL`` by default).  ``client`` is injectable for tests.
    """

    def __init__(self, broker_url: str, worker_id: str | None = None,
                 jobs: int | None = None, lease_cells: int | None = None,
                 poll: float | str | None = None,
                 client: ServiceClient | None = None):
        self.client = client if client is not None else ServiceClient(broker_url)
        self.worker_id = worker_id or default_worker_id()
        self.jobs = jobs
        self.lease_cells = (lease_cells if lease_cells is not None
                            else resolve_jobs(jobs))
        self.poll = worker_poll_from_env(poll)
        self.leases_run = 0
        self.cells_run = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit after the current lease (thread-safe)."""
        self._stop.set()

    def run(self, max_leases: int | None = None) -> int:
        """Lease and execute until stopped (or ``max_leases`` leases ran).

        Returns the number of leases executed.  Broker connection failures
        back off one poll interval and retry — a worker outliving a broker
        restart simply re-attaches.
        """
        while not self._stop.is_set():
            if max_leases is not None and self.leases_run >= max_leases:
                break
            try:
                grant = self.client.acquire_lease(
                    self.worker_id, max_cells=self.lease_cells, wait=self.poll
                )
            except ServiceError:
                self._stop.wait(self.poll)
                continue
            if grant is None:
                continue
            self._execute(grant)
            self.leases_run += 1
        return self.leases_run

    # ------------------------------------------------------------- execution

    def _execute(self, grant: dict) -> None:
        lease_id = grant["lease"]
        try:
            spec = ScenarioSpec.from_dict(grant["spec"])
            cells = [int(index) for index in grant["cells"]]
            ttl = float(grant.get("ttl") or DEFAULT_LEASE_TTL)
            expanded = expand_cells(spec)
            tasks = [expanded[index].task for index in cells]
            evaluator, cost_key = EVALUATORS[spec.kind]
            plan = (spec.fault_plan if spec.fault_plan is not None
                    else plan_from_env())
            plan = (plan if plan is not None else FaultPlan()).for_cells(cells)
        except Exception as error:  # noqa: BLE001 — a bad grant must fail the job, not the worker
            self._post(lease_id,
                       error=f"{type(error).__name__}: {error}")
            return

        token = CancelToken()
        state = {"done": 0, "lost": False}
        finished = threading.Event()
        wake = threading.Event()

        def progress(done: int, total: int) -> None:
            state["done"] = done
            wake.set()

        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, ttl, token, state, finished, wake),
            name=f"heartbeat-{lease_id}", daemon=True,
        )
        heartbeat.start()
        try:
            outcomes = run_parallel(
                evaluator, tasks, jobs=self.jobs, cost_key=cost_key,
                cache=True, progress=progress, cancel=token,
                fault_plan=plan, trace_keys=TRACE_KEY_BUILDERS[spec.kind],
            )
        except JobCancelledError:
            result = ("cancelled", None)
        except Exception as error:  # noqa: BLE001 — a job must never kill the worker
            result = ("error", f"{type(error).__name__}: {error}")
        else:
            result = ("done", dict(zip(cells, outcomes)))
            self.cells_run += len(cells)
        finally:
            finished.set()
            wake.set()
            heartbeat.join(timeout=5.0)
        if state["lost"]:
            return  # the broker already requeued this lease's cells
        kind, payload = result
        if kind == "done":
            self._post(lease_id, cells=payload)
        elif kind == "error":
            self._post(lease_id, error=payload)
        else:
            self._post(lease_id, cancelled=True)

    def _heartbeat_loop(self, lease_id: str, ttl: float, token: CancelToken,
                        state: dict, finished: threading.Event,
                        wake: threading.Event) -> None:
        """Refresh the lease and relay progress until the work finishes.

        Posts at least every ``ttl / 3`` seconds (so two consecutive losses
        still fit inside the TTL) and at most every
        ``_HEARTBEAT_FLOOR_SECONDS`` (progress events arrive per cell).  A
        410 means the lease is lost: set the local token so ``run_parallel``
        unwinds at the next cell boundary, and mark the loss so the result
        is not posted — the cells are already requeued elsewhere.
        """
        interval = max(_HEARTBEAT_FLOOR_SECONDS, ttl / 3.0)
        last_post = 0.0
        while not finished.is_set():
            wake.wait(timeout=interval)
            wake.clear()
            if finished.is_set():
                return
            now = time.monotonic()
            if now - last_post < _HEARTBEAT_FLOOR_SECONDS:
                continue
            last_post = now
            try:
                reply = self.client.lease_heartbeat(lease_id,
                                                    done=state["done"])
            except ServiceError as error:
                if getattr(error, "status", None) == 410:
                    state["lost"] = True
                    token.cancel()
                    return
                continue  # transient broker hiccup: the TTL has slack
            if reply.get("cancel"):
                token.cancel()

    def _post(self, lease_id: str, cells: dict | None = None,
              error: str | None = None, cancelled: bool = False) -> None:
        try:
            self.client.lease_result(lease_id, cells=cells, error=error,
                                     cancelled=cancelled)
        except ServiceError:
            # Lease lost or broker gone: the broker has (or will have)
            # requeued the cells; nothing useful left to do here.
            pass
