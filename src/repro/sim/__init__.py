"""Simulation layer: configuration, CMP system assembly and experiment runners."""

from repro.config import (
    DDR2_800,
    DDR4_2666,
    AccountingConfig,
    CacheConfig,
    CMPConfig,
    CoreConfig,
    DRAMConfig,
    DRAMTimingConfig,
    RingConfig,
)
from repro.sim.system import CMPSystem, CoreResult, PeriodicHook, SystemResult
from repro.sim.result_cache import ResultCache, get_result_cache, task_digest
from repro.sim.runner import (
    PrivateModeResult,
    WorkloadRunResult,
    build_trace,
    run_private_mode,
    run_shared_mode,
    run_workload,
)

__all__ = [
    "CMPConfig",
    "CoreConfig",
    "CacheConfig",
    "RingConfig",
    "DRAMConfig",
    "DRAMTimingConfig",
    "AccountingConfig",
    "DDR2_800",
    "DDR4_2666",
    "CMPSystem",
    "CoreResult",
    "SystemResult",
    "PeriodicHook",
    "PrivateModeResult",
    "ResultCache",
    "WorkloadRunResult",
    "get_result_cache",
    "task_digest",
    "build_trace",
    "run_private_mode",
    "run_shared_mode",
    "run_workload",
]
