"""Compatibility shim: the configuration classes live in :mod:`repro.config`.

Importing them through ``repro.sim.config`` continues to work so existing
code and documentation referring to the simulation layer stay valid.
"""

from repro.config import (  # noqa: F401
    DDR2_800,
    DDR4_2666,
    AccountingConfig,
    CacheConfig,
    CMPConfig,
    CoreConfig,
    DRAMConfig,
    DRAMTimingConfig,
    RingConfig,
    KILOBYTE,
    MEGABYTE,
)

__all__ = [
    "CoreConfig",
    "CacheConfig",
    "RingConfig",
    "DRAMTimingConfig",
    "DRAMConfig",
    "AccountingConfig",
    "CMPConfig",
    "DDR2_800",
    "DDR4_2666",
    "KILOBYTE",
    "MEGABYTE",
]
