"""Content-addressed, cross-run memoisation of sweep cell results.

Every (workload, config) cell of the paper's evaluation is a pure function of
its arguments: the workload names the benchmarks, traces are regenerated
deterministically from stable hashes, and the simulator has no hidden state.
That makes each cell *content-addressable* — the result is fully determined
by a canonical digest of

* the evaluator function (module-qualified name),
* its argument tuple (workloads, ``CMPConfig``, instruction counts, seeds,
  technique/policy selections, batching knobs — anything reachable from the
  task tuple), and
* a *code epoch*: a digest over every source file of the ``repro`` package,
  so any code change invalidates all previously cached results.

Digests address pickled result payloads under an on-disk store
(``.repro_cache/`` by default), shared by all processes and runs on the
machine.  A warm rerun of ``repro.experiments.run_all`` therefore skips every
simulation and only replays the cheap figure assembly.

Knobs
-----
``REPRO_CACHE``
    Set to ``0``/``false``/``no``/``off`` to disable the cache entirely
    (default: enabled).
``REPRO_CACHE_DIR``
    Store directory (default ``.repro_cache`` under the current working
    directory).

Robustness
----------
Entries are written atomically (temp file + ``os.replace``) so concurrent
writers can never expose a torn entry.  Corrupted, truncated or
version-mismatched entries are treated as misses and *quarantined*: moved
aside into ``<cache dir>/quarantine/`` (best-effort) rather than silently
deleted, so repeated corruption — a flaky disk, a torn writer, an injected
fault — leaves evidence instead of a mystery of eternal recomputes.  The
recompute then overwrites the original entry path.  Every cache instance
keeps hit/miss/store/error/quarantine counters.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, fields, is_dataclass
from functools import lru_cache
from pathlib import Path

from repro.errors import CacheKeyError

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "cache_enabled_from_env",
    "canonical_key",
    "code_epoch",
    "content_digest",
    "get_result_cache",
    "is_cacheable_function",
    "task_digest",
]

# Bump when the entry layout (not the keyed inputs) changes; mismatched
# entries are discarded and recomputed.
CACHE_FORMAT_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"

_FALSEY = {"0", "false", "no", "off"}


# --------------------------------------------------------------------- keying


def _canonical(value):
    """Reduce ``value`` to a nested structure of primitives with a stable repr.

    The reduction must be stable across processes, platforms and Python
    versions: no ``hash()``, no ``id()``, dict/set iteration normalised by
    sorting.  Unknown types raise :class:`CacheKeyError` so callers fall back
    to computing instead of caching under an ambiguous key.
    """
    if value is None or value is True or value is False:
        return value
    kind = type(value)
    if kind is int or kind is str or kind is bytes:
        return value
    if kind is float:
        # repr() is the shortest round-tripping form, stable since CPython 3.1.
        return ("float", repr(value))
    if kind is tuple or kind is list:
        return ("seq", tuple(_canonical(item) for item in value))
    if kind is dict:
        items = tuple(
            sorted(
                ((_canonical(key), _canonical(item)) for key, item in value.items()),
                key=repr,
            )
        )
        return ("dict", items)
    if kind is set or kind is frozenset:
        return ("set", tuple(sorted((_canonical(item) for item in value), key=repr)))
    if is_dataclass(value) and not isinstance(value, type):
        payload = tuple(
            (field.name, _canonical(getattr(value, field.name)))
            for field in fields(value)
        )
        return ("dataclass", f"{kind.__module__}.{kind.__qualname__}", payload)
    try:
        from array import array

        if isinstance(value, array):
            return ("array", value.typecode, value.tobytes())
    except ImportError:  # pragma: no cover
        pass
    if callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if module and qualname and "<locals>" not in qualname and "<lambda>" not in qualname:
            return ("callable", f"{module}.{qualname}")
        raise CacheKeyError(f"cannot canonicalise local/lambda callable {value!r}")
    raise CacheKeyError(f"cannot canonicalise {kind.__module__}.{kind.__qualname__} for cache keying")


def canonical_key(value) -> str:
    """The canonical string form of ``value`` used for digesting."""
    return repr(_canonical(value))


@lru_cache(maxsize=1)
def code_epoch() -> str:
    """Digest of every ``repro`` source file: any code change is a new epoch.

    Computed once per process (a few milliseconds over the package sources);
    cached results carry the epoch inside their digest, so editing the
    simulator — or this module — invalidates the whole store without any
    manual versioning.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py"), key=lambda p: p.relative_to(package_root).as_posix()):
        digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()


def is_cacheable_function(function) -> bool:
    """Only functions defined inside the ``repro`` package are cacheable.

    The code epoch covers exactly the ``repro`` sources, so results of
    arbitrary user/test callables (whose bodies the epoch cannot see) are
    never cached — a monkeypatched or edited helper outside the package
    would otherwise serve stale results under an unchanged key.
    """
    module = getattr(function, "__module__", "") or ""
    return module == "repro" or module.startswith("repro.")


def task_digest(function, argument_tuple, extra=()) -> str:
    """Content digest addressing the result of ``function(*argument_tuple)``."""
    material = (
        "repro-result-cache",
        CACHE_FORMAT_VERSION,
        code_epoch(),
        _canonical(function),
        _canonical(tuple(argument_tuple)),
        _canonical(extra),
    )
    return hashlib.sha256(repr(material).encode("utf-8")).hexdigest()


def content_digest(namespace: str, material, extra=()) -> str:
    """Content digest of an arbitrary canonicalisable value.

    Like :func:`task_digest` but for payloads that are not a function call —
    e.g. the scenario service digests a whole :class:`ScenarioSpec` dict to
    address a complete scenario result.  The digest folds in the code epoch,
    so any change to the ``repro`` sources invalidates derived artifacts the
    same way it invalidates cell results.  ``namespace`` keeps digests of
    different payload families from colliding.
    """
    payload = (
        "repro-content",
        CACHE_FORMAT_VERSION,
        code_epoch(),
        str(namespace),
        _canonical(material),
        _canonical(extra),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


# -------------------------------------------------------------------- storage


@dataclass
class CacheStats:
    """Hit/miss statistics of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "errors": self.errors,
                "quarantined": self.quarantined}


class ResultCache:
    """Content-addressed store of pickled cell results.

    By default entries live on local disk under ``directory`` (sharded by
    the first two digest characters) with the quarantine machinery described
    in the module docstring.  An optional ``backend``
    (:class:`repro.backends.ArtifactBackend`) reroutes the entry *bytes*
    elsewhere — notably ``REPRO_ARTIFACT_BACKEND=http`` proxies them through
    a scenario broker so a fleet of remote workers shares one cell cache.
    Entry validation (format version, digest guard) always happens on this
    side, so a corrupted or stale remote blob degrades to a recompute
    exactly like a corrupted local file.
    """

    def __init__(self, directory: str | os.PathLike = DEFAULT_CACHE_DIR,
                 enabled: bool = True, backend=None):
        self.directory = Path(directory)
        self.enabled = enabled
        self.backend = backend
        self.stats = CacheStats()

    def entry_path(self, digest: str) -> Path:
        # Two-character shard keeps directory listings manageable for sweeps
        # with tens of thousands of cells.
        return self.directory / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> tuple[bool, object]:
        """Look up a digest; returns ``(hit, result)``.

        Anything unexpected on disk — missing shard, truncated pickle, a
        different format version, a digest collision guard failing — is a
        miss: the caller recomputes and overwrites.
        """
        if not self.enabled:
            return False, None
        if self.backend is not None:
            return self._get_via_backend(digest)
        path = self.entry_path(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (
                isinstance(entry, dict)
                and entry.get("version") == CACHE_FORMAT_VERSION
                and entry.get("digest") == digest
            ):
                self.stats.hits += 1
                return True, entry["result"]
            # Version or digest mismatch: stale layout, quarantine.
            self.stats.errors += 1
            self._quarantine(path)
        except FileNotFoundError:
            pass
        except Exception:
            # Corrupted or unreadable entry: fall back to recompute.
            self.stats.errors += 1
            self._quarantine(path)
        self.stats.misses += 1
        return False, None

    def _get_via_backend(self, digest: str) -> tuple[bool, object]:
        """Backend-routed lookup: same validation, no local quarantine."""
        data = self.backend.get(digest)
        if data is not None:
            try:
                entry = pickle.loads(data)
            except Exception:
                entry = None
            if (
                isinstance(entry, dict)
                and entry.get("version") == CACHE_FORMAT_VERSION
                and entry.get("digest") == digest
            ):
                self.stats.hits += 1
                return True, entry["result"]
            # A remote blob cannot be quarantined locally; dropping it lets
            # the recompute overwrite, which is all quarantine guarantees.
            self.stats.errors += 1
            self.backend.delete(digest)
        self.stats.misses += 1
        return False, None

    def put(self, digest: str, result: object) -> bool:
        """Persist a result under its digest (atomic, best-effort)."""
        if not self.enabled:
            return False
        if self.backend is not None:
            entry = {"version": CACHE_FORMAT_VERSION, "digest": digest,
                     "result": result}
            try:
                payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                self.stats.errors += 1
                return False
            if not self.backend.put(digest, payload):
                self.stats.errors += 1
                return False
            self.stats.stores += 1
            return True
        path = self.entry_path(digest)
        entry = {"version": CACHE_FORMAT_VERSION, "digest": digest, "result": result}
        try:
            payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except Exception:
            # A full disk or unpicklable payload must never fail the sweep.
            self.stats.errors += 1
            return False
        self.stats.stores += 1
        return True

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("??/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside (best-effort; falls back to deletion).

        The entry keeps its filename, so the quarantine holds at most one
        specimen per digest — later corruption of the same digest overwrites
        the old specimen rather than accumulating unboundedly.
        """
        try:
            quarantine = self.quarantine_dir()
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
            self.stats.quarantined += 1
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass


# ------------------------------------------------------------- configuration


def cache_enabled_from_env() -> bool:
    """True unless ``REPRO_CACHE`` is set to a falsey value."""
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _FALSEY


_DISABLED = ResultCache(enabled=False)
_instances: dict[tuple, ResultCache] = {}


def get_result_cache() -> ResultCache:
    """The process-wide cache configured by ``REPRO_CACHE``/``REPRO_CACHE_DIR``.

    Instances are memoised per resolved configuration so statistics
    accumulate across sweeps; a disabled cache is a shared no-op instance.
    The environment is re-read on every call, so tests (and long-lived
    services) can flip the knobs without reloading the module.

    ``REPRO_ARTIFACT_BACKEND=http`` (with ``REPRO_ARTIFACT_URL``) routes the
    entry bytes through a scenario broker's ``cells`` artifact namespace —
    the remote-worker configuration.  The local kinds (``directory``,
    ``sharded``) keep the historical on-disk layout, which is already
    sharded by digest prefix.
    """
    from repro.backends import HTTPArtifactBackend, artifact_url_from_env, resolve_artifact_backend

    if not cache_enabled_from_env():
        return _DISABLED
    directory = Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR).expanduser()
    resolved = directory if directory.is_absolute() else Path.cwd() / directory
    backend_kind = resolve_artifact_backend()
    url = artifact_url_from_env() if backend_kind == "http" else None
    if backend_kind == "http" and url is None:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            "REPRO_ARTIFACT_BACKEND=http requires REPRO_ARTIFACT_URL to "
            "point at a scenario broker (e.g. 'http://127.0.0.1:8642')"
        )
    key = (resolved, backend_kind if url is not None else "local", url)
    instance = _instances.get(key)
    if instance is None:
        backend = (HTTPArtifactBackend(url, "cells") if url is not None
                   else None)
        instance = ResultCache(directory=resolved, enabled=True,
                               backend=backend)
        _instances[key] = instance
    return instance
