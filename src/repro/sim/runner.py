"""Shared-mode and private-mode experiment runners.

The paper's methodology (Section VI) runs every multi-programmed workload in
shared mode, then reruns each benchmark alone on the same CMP (private mode)
over the same instructions, and compares per-interval shared-mode estimates
against the measured private-mode values.  These helpers encapsulate both
runs so experiments and tests only deal with results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import SimulationError
from repro.config import CMPConfig
from repro.sim.system import CMPSystem, CoreResult, SystemResult
from repro.workloads.mixes import Workload
from repro.workloads.synthetic import generate_trace, get_benchmark
from repro.workloads.trace import Trace

__all__ = [
    "PrivateModeResult",
    "WorkloadRunResult",
    "build_trace",
    "run_private_mode",
    "run_shared_mode",
    "run_workload",
]

DEFAULT_INSTRUCTIONS = 20_000


@dataclass
class PrivateModeResult:
    """Outcome of running one benchmark alone on the CMP."""

    benchmark: str
    core: CoreResult

    @property
    def cpi(self) -> float:
        return self.core.cpi

    @property
    def ipc(self) -> float:
        return self.core.ipc

    @property
    def intervals(self):
        return self.core.intervals


@dataclass
class WorkloadRunResult:
    """Shared-mode plus per-benchmark private-mode results for one workload."""

    workload: Workload
    shared: SystemResult
    private: dict[int, PrivateModeResult] = field(default_factory=dict)

    def shared_cpi(self, core: int) -> float:
        return self.shared.cores[core].cpi

    def private_cpi(self, core: int) -> float:
        return self.private[core].cpi

    def slowdown(self, core: int) -> float:
        private = self.private_cpi(core)
        return self.shared_cpi(core) / private if private > 0 else 1.0

    def system_throughput(self) -> float:
        """STP = sum over cores of private CPI / shared CPI."""
        total = 0.0
        for core in self.shared.cores:
            shared = self.shared_cpi(core)
            if shared > 0:
                total += self.private_cpi(core) / shared
        return total


@lru_cache(maxsize=128)
def build_trace(benchmark_name: str, num_instructions: int, seed: int = 0) -> Trace:
    """Generate the trace for one named benchmark.

    Trace generation is deterministic and traces are treated as read-only by
    the simulator, so identical (benchmark, length, seed) requests — which
    recur across experiments, techniques and partitioning policies — share
    one cached trace.  Sweep workers first consult the shared-memory trace
    directory installed by batched submissions (byte-identical to generating:
    the segments hold exactly the packed columns generation would produce),
    so forked workers never regenerate traces the parent already built.
    """
    from repro.workloads.shm import lookup_shared_trace

    shared = lookup_shared_trace((benchmark_name, num_instructions, seed))
    if shared is not None:
        return shared
    return generate_trace(get_benchmark(benchmark_name), num_instructions, seed=seed)


def run_private_mode(trace: Trace, config: CMPConfig, llc_ways: int | None = None,
                     core_id: int = 0, interval_instructions: int | None = None,
                     target_instructions: int | None = None,
                     record_events: bool = True) -> PrivateModeResult:
    """Run one trace alone on the CMP (private mode).

    ``llc_ways`` optionally restricts the LLC allocation, which is how the
    LLC-sensitivity profiling of Section VI varies the available ways.
    ``target_instructions`` defaults to the trace length; passing the same
    value as the shared-mode run keeps the two modes' intervals aligned.
    ``record_events=False`` skips materialising per-event records (timing and
    aggregate statistics are unaffected); callers that only consume CPI/stall
    aggregates use it to cut the dominant allocation cost of ground-truth
    runs.
    """
    system = CMPSystem(
        config,
        {core_id: trace},
        target_instructions=target_instructions or len(trace),
        interval_instructions=interval_instructions,
        record_events=record_events,
    )
    if llc_ways is not None:
        if llc_ways <= 0:
            raise SimulationError("private-mode runs need at least one LLC way")
        system.hierarchy.set_partition({core_id: llc_ways})
    result = system.run()
    return PrivateModeResult(benchmark=trace.name, core=result.cores[core_id])


def run_shared_mode(traces: dict[int, Trace], config: CMPConfig,
                    target_instructions: int,
                    interval_instructions: int | None = None,
                    configure_system=None,
                    record_events: bool = True) -> SystemResult:
    """Run a multi-programmed workload in shared mode.

    ``configure_system`` is an optional callable invoked with the constructed
    :class:`CMPSystem` before the run starts; accounting techniques and
    partitioning policies use it to install their hooks.  ``record_events``
    mirrors :func:`run_private_mode`: pass False when no consumer reads the
    per-event lists (only aggregate counters and epoch buckets).
    """
    system = CMPSystem(
        config,
        traces,
        target_instructions=target_instructions,
        interval_instructions=interval_instructions,
        record_events=record_events,
    )
    if configure_system is not None:
        configure_system(system)
    result = system.run()
    return result


def run_workload(workload: Workload, config: CMPConfig,
                 instructions_per_core: int = DEFAULT_INSTRUCTIONS,
                 interval_instructions: int | None = None,
                 seed: int = 0,
                 configure_system=None,
                 run_private: bool = True) -> WorkloadRunResult:
    """Run one workload in shared mode and (optionally) each benchmark in private mode.

    The private-mode runs execute exactly the same traces over the same
    instruction counts, which is the alignment the paper's error metrics
    require.
    """
    traces = {
        core: build_trace(name, instructions_per_core, seed=seed + core)
        for core, name in enumerate(workload.benchmarks)
    }
    shared = run_shared_mode(
        traces,
        config,
        target_instructions=instructions_per_core,
        interval_instructions=interval_instructions,
        configure_system=configure_system,
    )
    result = WorkloadRunResult(workload=workload, shared=shared)
    if run_private:
        for core, trace in traces.items():
            result.private[core] = run_private_mode(
                trace, config, core_id=core, interval_instructions=interval_instructions,
                target_instructions=instructions_per_core,
            )
    return result
