"""CMP system assembly and multi-core co-simulation.

A :class:`CMPSystem` wires traces, cores and the shared memory hierarchy
together and advances the cores in (approximate) global time order so the
shared resources observe requests in a realistic interleaving.  Hooks fire at
fixed-cycle boundaries so invasive accounting (ASM's epoch priority rotation)
and the cache-partitioning policies can act mid-run, exactly like the hardware
mechanisms they model.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cpu.core import OutOfOrderCore
from repro.cpu.events import IntervalStats
from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.config import CMPConfig
from repro.workloads.trace import Trace

__all__ = ["PeriodicHook", "CoreResult", "SystemResult", "CMPSystem"]


@dataclass
class PeriodicHook:
    """A callback invoked every ``period_cycles`` of global simulated time."""

    period_cycles: float
    callback: Callable[[float, "CMPSystem"], None]
    next_fire: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.period_cycles <= 0:
            raise SimulationError("hook period must be positive")
        if self.next_fire == 0.0:
            self.next_fire = self.period_cycles


@dataclass
class CoreResult:
    """Per-core outcome of a simulation."""

    core: int
    benchmark: str
    instructions: int
    cycles: float
    intervals: list[IntervalStats]

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class SystemResult:
    """Outcome of one multi-core (or single-core) simulation."""

    cores: dict[int, CoreResult]
    total_cycles: float

    def cpi(self, core: int) -> float:
        return self.cores[core].cpi

    def intervals(self, core: int) -> list[IntervalStats]:
        return self.cores[core].intervals


class CMPSystem:
    """A configured CMP running one trace per active core."""

    def __init__(self, config: CMPConfig, traces: dict[int, Trace],
                 target_instructions: int, interval_instructions: int | None = None):
        if not traces:
            raise SimulationError("at least one core must be given a trace")
        config.validate()
        self.config = config
        self.target_instructions = target_instructions
        self.hierarchy = MemoryHierarchy(config, active_cores=sorted(traces))
        self.cores: dict[int, OutOfOrderCore] = {
            core_id: OutOfOrderCore(
                core_id,
                trace,
                config,
                self.hierarchy,
                target_instructions=target_instructions,
                interval_instructions=interval_instructions,
            )
            for core_id, trace in traces.items()
        }
        self.benchmark_names = {core_id: trace.name for core_id, trace in traces.items()}
        self._hooks: list[PeriodicHook] = []
        self.global_time = 0.0

    # ------------------------------------------------------------------ hooks

    def add_periodic_hook(self, period_cycles: float,
                          callback: Callable[[float, "CMPSystem"], None]) -> PeriodicHook:
        """Register a callback fired every ``period_cycles`` of simulated time."""
        hook = PeriodicHook(period_cycles=period_cycles, callback=callback)
        self._hooks.append(hook)
        return hook

    def _fire_hooks(self, now: float) -> None:
        for hook in self._hooks:
            while now >= hook.next_fire:
                hook.callback(hook.next_fire, self)
                hook.next_fire += hook.period_cycles

    # ------------------------------------------------------------------ simulation

    def run(self) -> SystemResult:
        """Run until every core has committed its target instruction count.

        Cores whose trace ends before the target restart it (the paper
        restarts benchmarks that reach the end of their instruction sample).
        Cores that finish early keep generating no further requests; the
        remaining cores continue until they reach the target, so late
        finishers still experience interference from nothing but the still-
        running cores, mirroring the paper's stop condition.
        """
        heap: list[tuple[float, int]] = [
            (core.next_event_time(), core_id) for core_id, core in self.cores.items()
        ]
        heapq.heapify(heap)
        while heap:
            event_time, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            if core.finished:
                continue
            core.step()
            self.global_time = max(self.global_time, core.current_time)
            self._fire_hooks(self.global_time)
            if not core.finished:
                heapq.heappush(heap, (core.next_event_time(), core_id))
        return self._collect_results()

    def _collect_results(self) -> SystemResult:
        cores = {}
        for core_id, core in self.cores.items():
            cores[core_id] = CoreResult(
                core=core_id,
                benchmark=self.benchmark_names[core_id],
                instructions=core.committed_instructions,
                cycles=core.total_cycles,
                intervals=core.intervals,
            )
        return SystemResult(cores=cores, total_cycles=self.global_time)
