"""CMP system assembly and multi-core co-simulation.

A :class:`CMPSystem` wires traces, cores and the shared memory hierarchy
together and advances the cores in (approximate) global time order so the
shared resources observe requests in a realistic interleaving.  Hooks fire at
fixed-cycle boundaries so invasive accounting (ASM's epoch priority rotation)
and the cache-partitioning policies can act mid-run, exactly like the hardware
mechanisms they model.

Cores advance in *batches* (:meth:`OutOfOrderCore.step_until`): the scheduler
computes the next deadline — the earliest other core's event time plus the
``batch_cycles`` slack, or the next periodic-hook boundary, whichever comes
first — and lets the popped core run instructions in a tight loop until it
reaches that deadline.  ``batch_cycles`` bounds how far one core may run ahead
of the others between scheduling decisions; ``batch_cycles=0`` reproduces the
historical one-instruction-per-heap-pop interleaving exactly.  The default is
``DEFAULT_BATCH_CYCLES`` and can be overridden with the ``REPRO_BATCH_CYCLES``
environment variable.
"""

from __future__ import annotations

import heapq
import os
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cpu.core import OutOfOrderCore
from repro.cpu.events import IntervalStats
from repro.errors import ConfigurationError, SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.config import CMPConfig
from repro.workloads.trace import Trace

__all__ = [
    "DEFAULT_BATCH_CYCLES",
    "PeriodicHook",
    "CoreResult",
    "SystemResult",
    "CMPSystem",
    "resolved_batch_cycles",
]

# How far (in cycles of simulated time) one core may run ahead of the slowest
# other core between co-simulation scheduling decisions.  The heap ordering is
# based on dispatch-time estimates, and a single instruction can already slip
# by a full DRAM round trip (~200+ cycles), so a slack of this size adds
# skew comparable to the scheduler's inherent disorder while letting cores
# execute long instruction batches without per-instruction heap traffic.  It
# stays an order of magnitude below the hook periods (ASM epochs are 2000
# cycles), which still bound every batch exactly.
DEFAULT_BATCH_CYCLES = 1024.0

_INFINITY = float("inf")


@dataclass
class PeriodicHook:
    """A callback invoked every ``period_cycles`` of global simulated time."""

    period_cycles: float
    callback: Callable[[float, "CMPSystem"], None]
    next_fire: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.period_cycles <= 0:
            raise SimulationError("hook period must be positive")
        if self.next_fire == 0.0:
            self.next_fire = self.period_cycles


@dataclass
class CoreResult:
    """Per-core outcome of a simulation."""

    core: int
    benchmark: str
    instructions: int
    cycles: float
    intervals: list[IntervalStats]

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class SystemResult:
    """Outcome of one multi-core (or single-core) simulation."""

    cores: dict[int, CoreResult]
    total_cycles: float

    def cpi(self, core: int) -> float:
        return self.cores[core].cpi

    def intervals(self, core: int) -> list[IntervalStats]:
        return self.cores[core].intervals


def resolved_batch_cycles() -> float:
    """The effective co-simulation batch slack (``REPRO_BATCH_CYCLES`` or default).

    Public because the slack changes simulated interleavings: the result
    cache folds this value into every cell digest, so runs with different
    batching knobs never share cache entries.
    """
    env = os.environ.get("REPRO_BATCH_CYCLES")
    if env is not None and env.strip() != "":
        try:
            value = float(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_BATCH_CYCLES must be a number, got {env!r}"
            ) from None
        if value != value:  # NaN would defeat the < 0 guard and poison digests
            raise ConfigurationError(
                f"REPRO_BATCH_CYCLES must be a number, got {env!r}"
            )
        return value
    return DEFAULT_BATCH_CYCLES


class CMPSystem:
    """A configured CMP running one trace per active core."""

    def __init__(self, config: CMPConfig, traces: dict[int, Trace],
                 target_instructions: int, interval_instructions: int | None = None,
                 batch_cycles: float | None = None, record_events: bool = True):
        if not traces:
            raise SimulationError("at least one core must be given a trace")
        config.validate()
        self.config = config
        self.target_instructions = target_instructions
        if batch_cycles is None:
            batch_cycles = resolved_batch_cycles()
        if batch_cycles < 0:
            raise SimulationError("batch_cycles cannot be negative")
        self.batch_cycles = batch_cycles
        self.hierarchy = MemoryHierarchy(config, active_cores=sorted(traces))
        self.cores: dict[int, OutOfOrderCore] = {
            core_id: OutOfOrderCore(
                core_id,
                trace,
                config,
                self.hierarchy,
                target_instructions=target_instructions,
                interval_instructions=interval_instructions,
                record_events=record_events,
            )
            for core_id, trace in traces.items()
        }
        self.benchmark_names = {core_id: trace.name for core_id, trace in traces.items()}
        self._hooks: list[PeriodicHook] = []
        # Minimum next_fire across hooks, maintained incrementally so the
        # common no-hook-due case is one float compare per batch instead of a
        # loop over all hooks per instruction.
        self._next_hook_fire = _INFINITY
        self.global_time = 0.0

    # ------------------------------------------------------------------ hooks

    def add_periodic_hook(self, period_cycles: float,
                          callback: Callable[[float, "CMPSystem"], None]) -> PeriodicHook:
        """Register a callback fired every ``period_cycles`` of simulated time."""
        hook = PeriodicHook(period_cycles=period_cycles, callback=callback)
        self._hooks.append(hook)
        if hook.next_fire < self._next_hook_fire:
            self._next_hook_fire = hook.next_fire
        return hook

    def _fire_hooks(self, now: float) -> None:
        for hook in self._hooks:
            while now >= hook.next_fire:
                hook.callback(hook.next_fire, self)
                hook.next_fire += hook.period_cycles
        self._next_hook_fire = min(
            (hook.next_fire for hook in self._hooks), default=_INFINITY
        )

    # ------------------------------------------------------------------ simulation

    def run(self) -> SystemResult:
        """Run until every core has committed its target instruction count.

        Cores whose trace ends before the target restart it (the paper
        restarts benchmarks that reach the end of their instruction sample).
        Cores that finish early keep generating no further requests; the
        remaining cores continue until they reach the target, so late
        finishers still experience interference from nothing but the still-
        running cores, mirroring the paper's stop condition.
        """
        cores = self.cores
        if len(cores) == 1:
            # Private mode: no co-simulation ordering to maintain, so the
            # single core runs hook-boundary to hook-boundary (or straight to
            # completion when no hooks are installed) without touching a heap.
            ((_core_id, core),) = cores.items()
            while not core.finished:
                core.step_until(_INFINITY, self._next_hook_fire)
                now = core.current_time
                if now > self.global_time:
                    self.global_time = now
                if self.global_time >= self._next_hook_fire:
                    self._fire_hooks(self.global_time)
            return self._collect_results()

        slack = self.batch_cycles
        heap: list[tuple[float, int]] = [
            (core.next_event_time(), core_id) for core_id, core in cores.items()
        ]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            _event_time, core_id = heappop(heap)
            core = cores[core_id]
            if core.finished:
                continue
            time_limit = heap[0][0] + slack if heap else _INFINITY
            core.step_until(time_limit, self._next_hook_fire)
            now = core.current_time
            if now > self.global_time:
                self.global_time = now
            if self.global_time >= self._next_hook_fire:
                self._fire_hooks(self.global_time)
            if not core.finished:
                heappush(heap, (core.next_event_time(), core_id))
        return self._collect_results()

    def _collect_results(self) -> SystemResult:
        cores = {}
        for core_id, core in self.cores.items():
            cores[core_id] = CoreResult(
                core=core_id,
                benchmark=self.benchmark_names[core_id],
                instructions=core.committed_instructions,
                cycles=core.total_cycles,
                intervals=core.intervals,
            )
        return SystemResult(cores=cores, total_cycles=self.global_time)
