"""Synthetic workloads: traces, benchmarks, LLC-sensitivity classes and mixes."""

from repro.workloads.trace import InstrKind, Trace, TraceBuilder
from repro.workloads.synthetic import (
    SPEC_LIKE_BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    generate_trace,
    get_benchmark,
)
from repro.workloads.classification import (
    SensitivityProfile,
    classify_benchmark,
    classify_speedup,
    classify_suite,
)
from repro.workloads.mixes import (
    PAPER_WORKLOAD_COUNTS,
    Workload,
    benchmarks_by_category,
    generate_category_workloads,
    generate_mixed_workloads,
)

__all__ = [
    "InstrKind",
    "Trace",
    "TraceBuilder",
    "BenchmarkSpec",
    "SPEC_LIKE_BENCHMARKS",
    "benchmark_names",
    "generate_trace",
    "get_benchmark",
    "SensitivityProfile",
    "classify_benchmark",
    "classify_speedup",
    "classify_suite",
    "Workload",
    "PAPER_WORKLOAD_COUNTS",
    "benchmarks_by_category",
    "generate_category_workloads",
    "generate_mixed_workloads",
]
