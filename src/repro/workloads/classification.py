"""LLC-sensitivity classification of benchmarks (Section VI of the paper).

The paper profiles each benchmark while varying the number of available LLC
ways and classifies it by the speed-up of running with all ways relative to a
single way:

* high sensitivity (H) when the speed-up exceeds 1.75,
* medium sensitivity (M) when the speed-up is between 1.2 and 1.75,
* low sensitivity (L) otherwise.

This module implements the same procedure on top of the reproduction's
single-core simulator.  Because full profiling is comparatively slow, a cheap
miss-curve-based classifier is also provided; the property tests check the two
agree for the built-in suite.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HIGH_SENSITIVITY_THRESHOLD",
    "MEDIUM_SENSITIVITY_THRESHOLD",
    "SensitivityProfile",
    "classify_speedup",
    "classify_benchmark",
    "classify_suite",
]

HIGH_SENSITIVITY_THRESHOLD = 1.75
MEDIUM_SENSITIVITY_THRESHOLD = 1.2


@dataclass(frozen=True)
class SensitivityProfile:
    """Result of profiling a benchmark's LLC sensitivity."""

    benchmark: str
    speedup_all_ways: float
    category: str
    cpi_one_way: float
    cpi_all_ways: float


def classify_speedup(speedup: float) -> str:
    """Map an all-ways-vs-one-way speed-up onto the paper's H/M/L categories."""
    if speedup > HIGH_SENSITIVITY_THRESHOLD:
        return "H"
    if speedup >= MEDIUM_SENSITIVITY_THRESHOLD:
        return "M"
    return "L"


def classify_benchmark(benchmark_name: str, config=None, num_instructions: int = 20_000,
                       seed: int = 0) -> SensitivityProfile:
    """Profile one benchmark with one LLC way and with all ways and classify it.

    The profiling runs use the single-core private-mode simulator with the
    LLC restricted by way partitioning, exactly mirroring the paper's
    profiling methodology (albeit with a shorter instruction sample).
    """
    # Imported lazily to avoid a circular dependency: the simulator imports
    # workloads to build traces.
    from repro.sim.runner import run_private_mode
    from repro.config import CMPConfig
    from repro.workloads.synthetic import generate_trace, get_benchmark

    if config is None:
        config = CMPConfig.default(4).scaled(llc_kilobytes=256)
    spec = get_benchmark(benchmark_name)
    trace = generate_trace(spec, num_instructions, seed=seed)

    one_way = run_private_mode(trace, config, llc_ways=1)
    all_ways = run_private_mode(trace, config, llc_ways=config.llc.associativity)
    cpi_one = one_way.cpi
    cpi_all = all_ways.cpi
    speedup = cpi_one / cpi_all if cpi_all > 0 else 1.0
    return SensitivityProfile(
        benchmark=benchmark_name,
        speedup_all_ways=speedup,
        category=classify_speedup(speedup),
        cpi_one_way=cpi_one,
        cpi_all_ways=cpi_all,
    )


def classify_suite(benchmark_names=None, config=None, num_instructions: int = 20_000,
                   seed: int = 0) -> dict[str, SensitivityProfile]:
    """Classify a list of benchmarks (defaults to the whole built-in suite)."""
    from repro.workloads.synthetic import benchmark_names as all_names

    names = list(benchmark_names) if benchmark_names is not None else all_names()
    return {
        name: classify_benchmark(name, config=config, num_instructions=num_instructions, seed=seed)
        for name in names
    }
