"""Multi-programmed workload generation (Section VI of the paper).

The paper builds 30 H-workloads, 15 M-workloads and 5 L-workloads per core
count by randomly drawing benchmarks from each LLC-sensitivity category, plus
mixed workloads (HHML, HMML, HMLL) for the sensitivity analysis.  A benchmark
may appear at most once per workload on the 2- and 4-core CMPs and at most
twice on the 8-core CMP.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.workloads.seeding import stable_hash
from repro.workloads.synthetic import SPEC_LIKE_BENCHMARKS

__all__ = [
    "Workload",
    "benchmarks_by_category",
    "generate_category_workloads",
    "generate_mixed_workloads",
    "PAPER_WORKLOAD_COUNTS",
]

# Workload counts per category used by the paper (per core count).
PAPER_WORKLOAD_COUNTS = {"H": 30, "M": 15, "L": 5}


@dataclass(frozen=True)
class Workload:
    """One multi-programmed workload: an ordered list of benchmark names."""

    name: str
    benchmarks: tuple[str, ...]
    category: str
    n_cores: int = field(default=0)

    def __post_init__(self) -> None:
        if self.n_cores == 0:
            object.__setattr__(self, "n_cores", len(self.benchmarks))
        if len(self.benchmarks) != self.n_cores:
            raise TraceError("workload must name exactly one benchmark per core")


def benchmarks_by_category(categories: dict[str, str] | None = None) -> dict[str, list[str]]:
    """Group benchmark names by H/M/L category.

    ``categories`` maps benchmark name to category; when omitted, the declared
    ``expected_category`` of the built-in suite is used (the profiling-based
    classification of :mod:`repro.workloads.classification` verifies these).
    """
    if categories is None:
        categories = {
            name: spec.expected_category for name, spec in SPEC_LIKE_BENCHMARKS.items()
        }
    grouped: dict[str, list[str]] = {"H": [], "M": [], "L": []}
    for name, category in sorted(categories.items()):
        if category not in grouped:
            raise TraceError(f"benchmark {name} has unknown category {category}")
        grouped[category].append(name)
    return grouped


def generate_category_workloads(
    n_cores: int,
    category: str,
    count: int,
    seed: int = 0,
    categories: dict[str, str] | None = None,
) -> list[Workload]:
    """Generate ``count`` workloads whose benchmarks all belong to ``category``.

    Benchmarks are drawn without replacement per workload for 2- and 4-core
    CMPs; for the 8-core CMP each benchmark may be drawn at most twice,
    matching the paper's methodology (footnote 7).
    """
    if category not in ("H", "M", "L"):
        raise TraceError(f"unknown workload category '{category}'")
    pool = benchmarks_by_category(categories)[category]
    if not pool:
        raise TraceError(f"no benchmarks available in category {category}")
    max_repeats = 2 if n_cores >= 8 else 1
    if len(pool) * max_repeats < n_cores:
        raise TraceError(
            f"category {category} has too few benchmarks ({len(pool)}) for {n_cores} cores"
        )
    rng = random.Random(seed ^ (n_cores << 8) ^ stable_hash(category))
    workloads = []
    for index in range(count):
        bag = pool * max_repeats
        rng.shuffle(bag)
        selection = _draw_with_repeat_limit(bag, n_cores, max_repeats, rng)
        workloads.append(
            Workload(
                name=f"{n_cores}c-{category}-{index:02d}",
                benchmarks=tuple(selection),
                category=category,
                n_cores=n_cores,
            )
        )
    return workloads


def generate_mixed_workloads(
    n_cores: int,
    mix: str,
    count: int,
    seed: int = 0,
    categories: dict[str, str] | None = None,
) -> list[Workload]:
    """Generate workloads for a category mix such as ``"HHML"`` (Figure 7f).

    The mix string has one letter per core; e.g. ``"HMLL"`` on a 4-core CMP is
    one H benchmark, one M benchmark and two L benchmarks.
    """
    if len(mix) != n_cores:
        raise TraceError(f"mix '{mix}' must name one category per core ({n_cores})")
    grouped = benchmarks_by_category(categories)
    rng = random.Random(seed ^ (n_cores << 16) ^ stable_hash(mix))
    workloads = []
    for index in range(count):
        picked: list[str] = []
        used: dict[str, int] = {}
        for letter in mix:
            if letter not in grouped:
                raise TraceError(f"mix '{mix}' contains unknown category '{letter}'")
            candidates = [b for b in grouped[letter] if used.get(b, 0) < 1]
            if not candidates:
                candidates = grouped[letter]
            choice = rng.choice(candidates)
            used[choice] = used.get(choice, 0) + 1
            picked.append(choice)
        workloads.append(
            Workload(
                name=f"{n_cores}c-{mix}-{index:02d}",
                benchmarks=tuple(picked),
                category=mix,
                n_cores=n_cores,
            )
        )
    return workloads


def _draw_with_repeat_limit(bag: list[str], count: int, max_repeats: int,
                            rng: random.Random) -> list[str]:
    selection: list[str] = []
    used: dict[str, int] = {}
    for candidate in bag:
        if len(selection) == count:
            break
        if used.get(candidate, 0) >= max_repeats:
            continue
        selection.append(candidate)
        used[candidate] = used.get(candidate, 0) + 1
    if len(selection) < count:
        # Fall back to sampling with replacement; only reachable with very
        # small benchmark pools.
        while len(selection) < count:
            selection.append(rng.choice(bag))
    return selection
