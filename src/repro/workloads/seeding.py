"""Stable seed derivation for workload and trace generation.

Python's built-in ``hash()`` is randomized per process for strings, so
seeding an RNG with ``hash(name)`` makes "deterministic" generation differ
between interpreter invocations — and between the serial and process-parallel
sweep executors.  All generators derive their seeds through
:func:`stable_hash` instead, which is stable across processes, platforms and
Python versions.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_hash"]


def stable_hash(text: str) -> int:
    """A process-stable 32-bit hash of ``text`` (CRC-32)."""
    return zlib.crc32(text.encode("utf-8"))
