"""Zero-copy trace transport over POSIX shared memory.

Sweep workers need the same handful of traces over and over, yet every pool
submission used to re-pickle the ``PackedTrace`` buffers into the task
payload.  :class:`SharedTraceStore` publishes each unique trace **once** per
sweep as a named ``multiprocessing.shared_memory`` segment (the three packed
columns concatenated: kinds ‖ addresses ‖ deps); submissions then carry only
a small *directory* of ``{trace key: segment entry}`` and workers attach by
name, turning per-task trace transfer into a constant-size dict.

Lifecycle contract (the part that matters under PR 6's fault tolerance):

* The parent owns every segment: create on :meth:`publish`, destroy in
  :meth:`unlink_all` — ``run_parallel`` calls it in a ``finally`` so retries,
  cancellation and permanent failures all clean up.
* A module-level registry plus an ``atexit`` hook unlinks anything a crashed
  caller left behind, so pool rebuilds and interpreter exits leak nothing.
* Pool workers share the parent's ``resource_tracker`` process (both fork
  and spawn children inherit the tracker fd), so a worker's attach-time
  registration is an idempotent set-add of a name the parent already
  registered at create — workers must **not** unregister after attaching,
  or they would strip the parent's registration and every later
  ``unlink()`` would raise a ``KeyError`` inside the tracker.  Column bytes
  are copied out during attach, so the parent may unlink while worker
  traces live on.

Keys are ``(benchmark_name, num_instructions, seed)`` — the argument tuple of
:func:`repro.sim.runner.build_trace`, which consults
:func:`lookup_shared_trace` before falling back to generation.  Trace
generation is deterministic, so a shared-memory trace and a locally generated
one are byte-identical and results cannot depend on the transport.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import weakref

from repro.workloads.trace import PackedTrace, Trace

__all__ = [
    "SharedTraceStore",
    "TraceKey",
    "active_segment_names",
    "attach_trace",
    "clear_shared_traces",
    "install_shared_traces",
    "lookup_shared_trace",
    "shared_trace_count",
]

TraceKey = tuple  # (benchmark_name, num_instructions, seed)

_SEGMENT_COUNTER = itertools.count()
_STORES: "weakref.WeakSet[SharedTraceStore]" = weakref.WeakSet()
_STORES_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _cleanup_stores() -> None:
    """Unlink every live store's segments (interpreter-exit backstop)."""
    with _STORES_LOCK:
        stores = list(_STORES)
    for store in stores:
        store.unlink_all()


def _register_store(store: "SharedTraceStore") -> None:
    global _ATEXIT_REGISTERED
    with _STORES_LOCK:
        _STORES.add(store)
        if not _ATEXIT_REGISTERED:
            atexit.register(_cleanup_stores)
            _ATEXIT_REGISTERED = True


class SharedTraceStore:
    """Parent-side owner of one sweep's shared-memory trace segments."""

    def __init__(self) -> None:
        self._segments: dict = {}   # key -> SharedMemory
        self._entries: dict = {}    # key -> directory entry dict
        self._lock = threading.Lock()
        _register_store(self)

    def __enter__(self) -> "SharedTraceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def publish(self, key: TraceKey, trace: Trace) -> dict:
        """Publish one trace under ``key``; idempotent per store."""
        from multiprocessing import shared_memory

        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                return entry
            packed = trace.packed()
            payload = packed.kinds + packed.addresses + packed.deps
            segment = None
            while segment is None:
                name = f"repro-trace-{os.getpid()}-{next(_SEGMENT_COUNTER)}"
                try:
                    segment = shared_memory.SharedMemory(
                        name=name, create=True, size=max(1, len(payload))
                    )
                except FileExistsError:
                    continue  # stale leftover from a recycled pid; next name
            segment.buf[: len(payload)] = payload
            entry = {
                "segment": segment.name,
                "trace_name": packed.name,
                "kinds_len": len(packed.kinds),
                "addresses_len": len(packed.addresses),
                "deps_len": len(packed.deps),
            }
            self._segments[key] = segment
            self._entries[key] = entry
            return entry

    def directory(self) -> dict:
        """The ``{key: entry}`` mapping shipped inside batch payloads."""
        with self._lock:
            return dict(self._entries)

    def segment_names(self) -> list:
        with self._lock:
            return [segment.name for segment in self._segments.values()]

    def unlink_all(self) -> None:
        """Destroy every published segment; safe to call repeatedly."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._entries.clear()
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass  # already gone (e.g. the atexit backstop raced us)


def active_segment_names() -> list:
    """Names of all segments currently owned by live stores (tests)."""
    with _STORES_LOCK:
        stores = list(_STORES)
    names: list = []
    for store in stores:
        names.extend(store.segment_names())
    return names


# ------------------------------------------------------------------ worker side

_SHARED_DIRECTORY: dict = {}


def attach_trace(entry: dict) -> Trace:
    """Rebuild a :class:`Trace` from one directory entry.

    Copies the column bytes out of the segment and detaches immediately; the
    attach-time resource-tracker registration is deliberately left in place
    (see the module docstring — the tracker is shared with the parent, and
    the registration is an idempotent no-op the parent's ``unlink`` clears).
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=entry["segment"])
    try:
        kinds_len = entry["kinds_len"]
        addresses_len = entry["addresses_len"]
        view = segment.buf
        kinds = bytes(view[:kinds_len])
        addresses = bytes(view[kinds_len : kinds_len + addresses_len])
        deps = bytes(
            view[
                kinds_len + addresses_len : kinds_len
                + addresses_len
                + entry["deps_len"]
            ]
        )
    finally:
        segment.close()
    return PackedTrace(
        name=entry["trace_name"], kinds=kinds, addresses=addresses, deps=deps
    ).unpack()


def install_shared_traces(directory: dict) -> None:
    """Install a batch payload's trace directory in this worker process."""
    _SHARED_DIRECTORY.update(directory)


def clear_shared_traces() -> None:
    _SHARED_DIRECTORY.clear()


def shared_trace_count() -> int:
    return len(_SHARED_DIRECTORY)


def lookup_shared_trace(key: TraceKey) -> "Trace | None":
    """The shared trace for ``key``, or None (fall back to generation).

    A directory entry whose segment has already been unlinked (the parent
    finished the sweep while this worker still held the directory) degrades
    to generation rather than failing the cell.
    """
    entry = _SHARED_DIRECTORY.get(key)
    if entry is None:
        return None
    try:
        return attach_trace(entry)
    except FileNotFoundError:
        _SHARED_DIRECTORY.pop(key, None)
        return None
