"""Synthetic benchmark generation.

The paper evaluates GDP with 52 SPEC CPU2000/2006 benchmarks.  Those traces
are not available, so this module generates synthetic benchmarks that span the
behavioural axes the evaluation depends on:

* working-set size relative to the LLC (drives LLC sensitivity, i.e. the
  H/M/L categories of Section VI),
* memory-level parallelism (independent load bursts vs pointer chasing),
* memory intensity (compute instructions per load) and short-term line reuse
  (which determines how many loads the private L1/L2 filter out),
* phase behaviour (benchmarks such as facerec alternate compute-bound and
  memory-bound phases).

Each archetype is deterministic given a seed, so shared-mode and private-mode
runs replay exactly the same instruction stream, as the paper's methodology
requires.  Footprints are sized against the *scaled* cache hierarchy used by
this reproduction (4 KB L1 / 16 KB L2 / 256 KB LLC by default), not the
paper's 8-16 MB LLCs; what matters is the footprint relative to the LLC.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import TraceError
from repro.workloads.seeding import stable_hash
from repro.workloads.trace import InstrKind, Trace, TraceBuilder, _compute_fillers

__all__ = [
    "BenchmarkSpec",
    "generate_trace",
    "SPEC_LIKE_BENCHMARKS",
    "benchmark_names",
    "get_benchmark",
]

LINE_BYTES = 64


@dataclass(frozen=True)
class BenchmarkSpec:
    """Parameters of one synthetic benchmark.

    Attributes
    ----------
    name:
        Benchmark name; the built-in suite uses SPEC-reminiscent names purely
        as mnemonic labels for the behaviour each archetype imitates.
    pattern:
        One of ``"stream"``, ``"pointer_chase"``, ``"blocked"``, ``"random"``,
        ``"compute"`` or ``"phased"``.
    footprint_bytes:
        Total memory footprint touched by the benchmark.
    compute_per_load:
        Average number of compute instructions between memory operations.
    burst_length:
        Number of independent loads issued back-to-back (drives MLP).
    dependency_fraction:
        Fraction of loads that depend on the previous load (serialisation).
    store_fraction:
        Fraction of memory operations that are stores.
    line_reuse:
        Consecutive accesses issued to the same cache line before moving on;
        accesses after the first hit in the L1 and model short-term temporal
        locality.
    phase_length:
        For ``"phased"`` benchmarks, instructions per phase.
    expected_category:
        The LLC-sensitivity category the archetype is designed to land in
        (``"H"``, ``"M"`` or ``"L"``); the classification procedure in
        :mod:`repro.workloads.classification` verifies this empirically.
    """

    name: str
    pattern: str
    footprint_bytes: int
    compute_per_load: int = 6
    burst_length: int = 4
    dependency_fraction: float = 0.0
    store_fraction: float = 0.1
    line_reuse: int = 1
    phase_length: int = 4_000
    expected_category: str = "M"

    def validate(self) -> None:
        if self.pattern not in ("stream", "pointer_chase", "blocked", "random", "compute", "phased"):
            raise TraceError(f"unknown access pattern '{self.pattern}'")
        if self.footprint_bytes < LINE_BYTES:
            raise TraceError("footprint must cover at least one cache line")
        if not (0.0 <= self.dependency_fraction <= 1.0):
            raise TraceError("dependency_fraction must be within [0, 1]")
        if not (0.0 <= self.store_fraction <= 1.0):
            raise TraceError("store_fraction must be within [0, 1]")
        if self.line_reuse < 1:
            raise TraceError("line_reuse must be at least 1")
        if self.burst_length < 1 or self.compute_per_load < 0:
            raise TraceError("burst_length must be >= 1 and compute_per_load >= 0")


def generate_trace(spec: BenchmarkSpec, num_instructions: int, seed: int = 0) -> Trace:
    """Generate a deterministic trace of roughly ``num_instructions`` instructions."""
    spec.validate()
    if num_instructions <= 0:
        raise TraceError("num_instructions must be positive")
    rng = random.Random((stable_hash(spec.name) & 0xFFFF_FFFF) ^ seed)
    builder = TraceBuilder(name=spec.name)
    base_address = (stable_hash(spec.name) & 0xFF) * (1 << 26)
    generator = _PATTERN_GENERATORS[spec.pattern]
    generator(spec, builder, num_instructions, rng, base_address)
    # Pattern generators only emit structurally valid instruction streams;
    # skip the O(n) validation pass on this hot setup path.
    return builder.build(validate=False)


def _lines_in_footprint(spec: BenchmarkSpec) -> int:
    return max(1, spec.footprint_bytes // LINE_BYTES)


class _Emitter:
    """Shared helper that applies line reuse, stores and compute padding."""

    def __init__(self, spec: BenchmarkSpec, builder: TraceBuilder, rng: random.Random):
        self.spec = spec
        self.builder = builder
        self.rng = rng
        self.previous_load: int | None = None

    def touch_line(self, address: int, dependent: bool = False) -> None:
        """Emit ``line_reuse`` accesses to one line plus the trailing compute block.

        The builder's per-instruction methods are inlined here (plain list
        appends): this loop emits every instruction of every generated trace
        and the method-call overhead is measurable in experiment setup time.
        The RNG call sequence exactly matches the method-based formulation.
        """
        spec = self.spec
        rng = self.rng
        rng_random = rng.random
        builder = self.builder
        kinds = builder.kinds
        addresses = builder.addresses
        deps = builder.deps
        store_fraction = spec.store_fraction
        compute_per_load = spec.compute_per_load
        for repeat in range(spec.line_reuse):
            offset = (repeat * 8) % LINE_BYTES
            if rng_random() < store_fraction:
                kinds.append(InstrKind.STORE)
                addresses.append(address + offset)
                deps.append(-1)
            elif dependent and repeat == 0:
                previous = self.previous_load
                self.previous_load = len(kinds)
                kinds.append(InstrKind.LOAD)
                addresses.append(address + offset)
                deps.append(previous if previous is not None else -1)
            else:
                self.previous_load = len(kinds)
                kinds.append(InstrKind.LOAD)
                addresses.append(address + offset)
                deps.append(-1)
            if compute_per_load:
                fillers = _compute_fillers(_jitter(rng, compute_per_load))
                kinds.extend(fillers[0])
                addresses.extend(fillers[1])
                deps.extend(fillers[2])


def _gen_stream(spec, builder, num_instructions, rng, base_address) -> None:
    """Sequential sweeps over the footprint with independent loads (high MLP)."""
    lines = _lines_in_footprint(spec)
    emitter = _Emitter(spec, builder, rng)
    line = 0
    while len(builder) < num_instructions:
        for _ in range(spec.burst_length):
            if len(builder) >= num_instructions:
                break
            emitter.touch_line(base_address + (line % lines) * LINE_BYTES)
            line += 1


def _gen_pointer_chase(spec, builder, num_instructions, rng, base_address) -> None:
    """Each load's address depends on the previous load (no MLP)."""
    lines = _lines_in_footprint(spec)
    emitter = _Emitter(spec, builder, rng)
    while len(builder) < num_instructions:
        address = base_address + rng.randrange(lines) * LINE_BYTES
        emitter.touch_line(address, dependent=True)


def _gen_blocked(spec, builder, num_instructions, rng, base_address) -> None:
    """Repeated passes over a fixed working set (strong LLC sensitivity)."""
    lines = _lines_in_footprint(spec)
    emitter = _Emitter(spec, builder, rng)
    line = 0
    while len(builder) < num_instructions:
        for _ in range(spec.burst_length):
            if len(builder) >= num_instructions:
                break
            dependent = rng.random() < spec.dependency_fraction
            emitter.touch_line(base_address + (line % lines) * LINE_BYTES, dependent=dependent)
            line += 1


def _gen_random(spec, builder, num_instructions, rng, base_address) -> None:
    """Uniformly random accesses over the footprint with bursts of MLP."""
    lines = _lines_in_footprint(spec)
    emitter = _Emitter(spec, builder, rng)
    while len(builder) < num_instructions:
        for _ in range(spec.burst_length):
            if len(builder) >= num_instructions:
                break
            dependent = rng.random() < spec.dependency_fraction
            address = base_address + rng.randrange(lines) * LINE_BYTES
            emitter.touch_line(address, dependent=dependent)


def _gen_compute(spec, builder, num_instructions, rng, base_address) -> None:
    """Compute-bound: long compute stretches with occasional small-footprint loads."""
    lines = _lines_in_footprint(spec)
    emitter = _Emitter(spec, builder, rng)
    while len(builder) < num_instructions:
        builder.add_compute(_jitter(rng, spec.compute_per_load * 3))
        emitter.touch_line(base_address + rng.randrange(lines) * LINE_BYTES)


def _gen_phased(spec, builder, num_instructions, rng, base_address) -> None:
    """Alternating compute-bound and memory-bound phases (facerec-like)."""
    lines = _lines_in_footprint(spec)
    emitter = _Emitter(spec, builder, rng)
    memory_phase = False
    while len(builder) < num_instructions:
        phase_end = min(len(builder) + spec.phase_length, num_instructions)
        if memory_phase:
            line = rng.randrange(lines)
            while len(builder) < phase_end:
                dependent = rng.random() < spec.dependency_fraction
                emitter.touch_line(base_address + (line % lines) * LINE_BYTES, dependent=dependent)
                line += 1
        else:
            small_lines = max(1, lines // 16)
            while len(builder) < phase_end:
                builder.add_compute(_jitter(rng, spec.compute_per_load * 4))
                emitter.touch_line(base_address + rng.randrange(small_lines) * LINE_BYTES)
        memory_phase = not memory_phase


def _jitter(rng: random.Random, mean: int) -> int:
    """Small random variation around ``mean`` so commit periods vary in length.

    Equivalent to ``mean + rng.randint(-mean // 4, mean // 4)`` but invoking
    ``Random._randbelow`` directly: ``randint`` resolves to exactly one
    ``_randbelow(width)`` call internally, so the drawn sequence is identical
    while skipping two delegation frames on this very hot generation path
    (with a fallback when the private helper is unavailable).
    """
    if mean <= 1:
        return max(1, mean)
    # Note: ``-mean // 4`` floors towards negative infinity, so the range is
    # [-ceil(mean/4), floor(mean/4)] — preserved exactly.
    low = -mean // 4
    width = mean // 4 - low + 1
    randbelow = getattr(rng, "_randbelow", None)
    if randbelow is None:
        return max(1, mean + low + rng.randrange(width))
    return max(1, mean + low + randbelow(width))


_PATTERN_GENERATORS = {
    "stream": _gen_stream,
    "pointer_chase": _gen_pointer_chase,
    "blocked": _gen_blocked,
    "random": _gen_random,
    "compute": _gen_compute,
    "phased": _gen_phased,
}

KB = 1024
MB = 1024 * 1024

# The built-in benchmark suite, grouped by the LLC-sensitivity category each
# archetype is designed to land in.
SPEC_LIKE_BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # High LLC sensitivity (H): working sets that fit in the LLC with many
        # ways but thrash with few ways.
        BenchmarkSpec("art_like", "blocked", 48 * KB, compute_per_load=3,
                      line_reuse=2, dependency_fraction=0.5, burst_length=2,
                      expected_category="H"),
        BenchmarkSpec("ammp_like", "blocked", 64 * KB, compute_per_load=3,
                      line_reuse=2, dependency_fraction=0.3, expected_category="H"),
        BenchmarkSpec("galgel_like", "blocked", 40 * KB, compute_per_load=4,
                      line_reuse=2, dependency_fraction=0.1, expected_category="H"),
        BenchmarkSpec("facerec_like", "phased", 48 * KB, compute_per_load=3,
                      line_reuse=2, dependency_fraction=0.2, phase_length=2_500,
                      expected_category="H"),
        BenchmarkSpec("omnetpp_like", "random", 64 * KB, compute_per_load=3,
                      line_reuse=2, dependency_fraction=0.35, burst_length=2,
                      expected_category="M"),
        BenchmarkSpec("sphinx3_like", "blocked", 72 * KB, compute_per_load=3,
                      line_reuse=2, burst_length=6, expected_category="H"),
        BenchmarkSpec("apsi_like", "blocked", 44 * KB, compute_per_load=4,
                      line_reuse=2, dependency_fraction=0.55, burst_length=2,
                      expected_category="H"),
        BenchmarkSpec("lbm_like", "blocked", 64 * KB, compute_per_load=3,
                      line_reuse=2, burst_length=8, expected_category="H"),
        # Medium LLC sensitivity (M): working sets a little above the private
        # L2, where a handful of LLC ways already capture much of the reuse.
        BenchmarkSpec("astar_like", "random", 34 * KB, compute_per_load=6,
                      line_reuse=2, dependency_fraction=0.6, burst_length=2,
                      expected_category="M"),
        BenchmarkSpec("bzip2_like", "blocked", 26 * KB, compute_per_load=8,
                      line_reuse=2, dependency_fraction=0.2, expected_category="M"),
        BenchmarkSpec("hmmer_like", "blocked", 24 * KB, compute_per_load=9,
                      line_reuse=2, dependency_fraction=0.1, expected_category="M"),
        BenchmarkSpec("gromacs_like", "random", 32 * KB, compute_per_load=7,
                      line_reuse=2, dependency_fraction=0.3, burst_length=3,
                      expected_category="M"),
        BenchmarkSpec("twolf_like", "pointer_chase", 30 * KB, compute_per_load=7,
                      line_reuse=2, expected_category="M"),
        BenchmarkSpec("parser_like", "pointer_chase", 34 * KB, compute_per_load=7,
                      line_reuse=2, expected_category="M"),
        BenchmarkSpec("vpr_like", "random", 34 * KB, compute_per_load=6,
                      line_reuse=2, dependency_fraction=0.4, burst_length=2,
                      expected_category="M"),
        BenchmarkSpec("equake_like", "blocked", 26 * KB, compute_per_load=8,
                      line_reuse=2, burst_length=4, expected_category="M"),
        # Low LLC sensitivity (L): compute-bound benchmarks whose working sets
        # fit in the private caches, plus streaming benchmarks whose footprint
        # dwarfs any realistic LLC allocation.
        BenchmarkSpec("wrf_like", "compute", 4 * KB, compute_per_load=30,
                      line_reuse=2, expected_category="L"),
        BenchmarkSpec("h264ref_like", "compute", 6 * KB, compute_per_load=24,
                      line_reuse=2, expected_category="L"),
        BenchmarkSpec("gcc_like", "compute", 8 * KB, compute_per_load=18,
                      line_reuse=2, expected_category="L"),
        BenchmarkSpec("namd_like", "compute", 4 * KB, compute_per_load=26,
                      line_reuse=2, expected_category="L"),
        BenchmarkSpec("tonto_like", "compute", 10 * KB, compute_per_load=14,
                      line_reuse=2, expected_category="L"),
        BenchmarkSpec("applu_like", "stream", 2 * MB, compute_per_load=8,
                      line_reuse=1, burst_length=4, expected_category="L"),
        BenchmarkSpec("libquantum_like", "stream", 4 * MB, compute_per_load=6,
                      line_reuse=1, burst_length=5, expected_category="L"),
        BenchmarkSpec("milc_like", "stream", 3 * MB, compute_per_load=9,
                      line_reuse=1, burst_length=4, expected_category="L"),
    ]
}


def benchmark_names() -> list[str]:
    """Names of all built-in synthetic benchmarks."""
    return sorted(SPEC_LIKE_BENCHMARKS)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a built-in benchmark by name."""
    try:
        return SPEC_LIKE_BENCHMARKS[name]
    except KeyError:
        raise TraceError(f"unknown benchmark '{name}'") from None
