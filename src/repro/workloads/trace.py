"""Instruction traces consumed by the trace-driven core model.

A trace is a flat sequence of instructions.  Each instruction is either a
compute instruction, a load or a store.  Loads carry a byte address and an
optional data dependency on an earlier load (by instruction index), which is
how pointer-chasing and other serialising access patterns are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import TraceError

__all__ = ["InstrKind", "Trace", "TraceBuilder"]


class InstrKind:
    """Instruction kind encodings used in :class:`Trace` arrays."""

    COMPUTE = 0
    LOAD = 1
    STORE = 2


@dataclass
class Trace:
    """A flat instruction trace.

    Attributes
    ----------
    kinds:
        One entry per instruction, an :class:`InstrKind` value.
    addresses:
        Byte address per instruction (0 for compute instructions).
    deps:
        For loads, the instruction index of the earlier load whose data this
        load's address depends on, or -1 when the address is independent.
    name:
        Human-readable benchmark name.
    """

    kinds: list[int] = field(default_factory=list)
    addresses: list[int] = field(default_factory=list)
    deps: list[int] = field(default_factory=list)
    name: str = "anonymous"

    def __post_init__(self) -> None:
        if not (len(self.kinds) == len(self.addresses) == len(self.deps)):
            raise TraceError("trace arrays must have identical lengths")

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def num_instructions(self) -> int:
        return len(self.kinds)

    @property
    def num_loads(self) -> int:
        return sum(1 for kind in self.kinds if kind == InstrKind.LOAD)

    @property
    def num_stores(self) -> int:
        return sum(1 for kind in self.kinds if kind == InstrKind.STORE)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TraceError` on violation."""
        for index, (kind, dep) in enumerate(zip(self.kinds, self.deps)):
            if kind not in (InstrKind.COMPUTE, InstrKind.LOAD, InstrKind.STORE):
                raise TraceError(f"instruction {index} has unknown kind {kind}")
            if dep >= index:
                raise TraceError(f"instruction {index} depends on a later instruction {dep}")
            if dep >= 0 and self.kinds[dep] != InstrKind.LOAD:
                raise TraceError(f"instruction {index} depends on a non-load instruction {dep}")
            if kind != InstrKind.LOAD and dep != -1:
                raise TraceError(f"non-load instruction {index} cannot carry a dependency")

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace covering instructions ``[start, stop)``.

        Load dependencies that point before ``start`` are dropped (turned into
        independent loads), mirroring what a checkpoint boundary does.
        """
        if not (0 <= start <= stop <= len(self)):
            raise TraceError(f"invalid slice [{start}, {stop}) of trace with {len(self)} instructions")
        deps = []
        for index in range(start, stop):
            dep = self.deps[index]
            deps.append(dep - start if dep >= start else -1)
        return Trace(
            kinds=self.kinds[start:stop],
            addresses=self.addresses[start:stop],
            deps=deps,
            name=self.name,
        )

    def repeated(self, times: int) -> "Trace":
        """Return the trace concatenated with itself ``times`` times.

        Used to restart a benchmark when it reaches the end of its
        instruction sample (as the paper does for multi-programmed runs).
        """
        if times <= 0:
            raise TraceError("repeat count must be positive")
        result = TraceBuilder(name=self.name)
        for _ in range(times):
            offset = len(result)
            for index in range(len(self)):
                dep = self.deps[index]
                result.kinds.append(self.kinds[index])
                result.addresses.append(self.addresses[index])
                result.deps.append(dep + offset if dep >= 0 else -1)
        return result.build()

    def load_addresses(self) -> list[int]:
        """Return the addresses of all loads, in program order."""
        return [
            address
            for kind, address in zip(self.kinds, self.addresses)
            if kind == InstrKind.LOAD
        ]

    def memory_intensity(self) -> float:
        """Fraction of instructions that are loads or stores."""
        if not self.kinds:
            return 0.0
        memory_ops = sum(1 for kind in self.kinds if kind != InstrKind.COMPUTE)
        return memory_ops / len(self.kinds)


@lru_cache(maxsize=256)
def _compute_fillers(count: int) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
    """Cached (kinds, addresses, deps) filler tuples for compute blocks.

    Generators append millions of short compute runs; reusing immutable
    filler tuples avoids three throwaway list allocations per block.
    """
    return (
        (InstrKind.COMPUTE,) * count,
        (0,) * count,
        (-1,) * count,
    )


class TraceBuilder:
    """Incremental construction of a :class:`Trace`."""

    def __init__(self, name: str = "anonymous"):
        self.name = name
        self.kinds: list[int] = []
        self.addresses: list[int] = []
        self.deps: list[int] = []

    def __len__(self) -> int:
        return len(self.kinds)

    def add_compute(self, count: int = 1) -> None:
        """Append ``count`` compute instructions."""
        if count < 0:
            raise TraceError("compute count cannot be negative")
        fillers = _compute_fillers(count)
        self.kinds.extend(fillers[0])
        self.addresses.extend(fillers[1])
        self.deps.extend(fillers[2])

    def add_load(self, address: int, depends_on: int | None = None) -> int:
        """Append a load and return its instruction index."""
        index = len(self.kinds)
        if depends_on is not None and not (0 <= depends_on < index):
            raise TraceError(f"load dependency {depends_on} out of range at index {index}")
        self.kinds.append(InstrKind.LOAD)
        self.addresses.append(address)
        self.deps.append(depends_on if depends_on is not None else -1)
        return index

    def add_store(self, address: int) -> int:
        """Append a store and return its instruction index."""
        index = len(self.kinds)
        self.kinds.append(InstrKind.STORE)
        self.addresses.append(address)
        self.deps.append(-1)
        return index

    def build(self, validate: bool = True) -> Trace:
        """Return the built trace, validating it unless ``validate`` is False.

        Generators whose output is valid by construction (the synthetic
        benchmark patterns) pass ``validate=False``: the check is a full
        O(n) pass per trace and shows up in experiment setup time.
        """
        trace = Trace(
            kinds=list(self.kinds),
            addresses=list(self.addresses),
            deps=list(self.deps),
            name=self.name,
        )
        if validate:
            trace.validate()
        return trace
