"""Instruction traces consumed by the trace-driven core model.

A trace is a flat sequence of instructions.  Each instruction is either a
compute instruction, a load or a store.  Loads carry a byte address and an
optional data dependency on an earlier load (by instruction index), which is
how pointer-chasing and other serialising access patterns are expressed.

Storage is packed: the three per-instruction columns live in ``array``
buffers (one signed byte per kind, one signed 64-bit word per address and
dependency) instead of Python lists.  That cuts the resident size of a trace
by roughly 10x (no per-instruction boxed ints) and, because traces are
pickled into every sweep worker process, cuts the per-task serialisation cost
by a similar factor: pickling an ``array`` copies its raw buffer instead of
walking one object per instruction.  The list-like API — ``len``, indexing,
iteration, slicing and the :class:`TraceBuilder` append protocol — is
unchanged; ``Trace.packed()`` exposes the frozen wire form explicitly.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import TraceError

__all__ = ["InstrKind", "PackedTrace", "Trace", "TraceBuilder"]

# Column typecodes: kinds fit a signed byte, addresses and dependency indices
# use signed 64-bit words (addresses are byte addresses, deps may be -1).
KIND_TYPECODE = "b"
WORD_TYPECODE = "q"


class InstrKind:
    """Instruction kind encodings used in :class:`Trace` arrays."""

    COMPUTE = 0
    LOAD = 1
    STORE = 2


def _as_kind_array(values) -> array:
    return values if isinstance(values, array) and values.typecode == KIND_TYPECODE else array(KIND_TYPECODE, values)


def _as_word_array(values) -> array:
    return values if isinstance(values, array) and values.typecode == WORD_TYPECODE else array(WORD_TYPECODE, values)


@dataclass(frozen=True)
class PackedTrace:
    """The frozen wire form of a :class:`Trace`: name plus three raw buffers.

    The buffers are the native little/big-endian machine encoding of the
    backing ``array`` columns (``tobytes``), so packing and unpacking are
    plain memory copies.  This is the form traces travel in when pickled to
    sweep worker processes.
    """

    name: str
    kinds: bytes
    addresses: bytes
    deps: bytes

    def unpack(self) -> "Trace":
        return _trace_from_packed(self.name, self.kinds, self.addresses, self.deps)

    @property
    def num_instructions(self) -> int:
        return len(self.kinds)


def _trace_from_packed(name: str, kinds: bytes, addresses: bytes, deps: bytes) -> "Trace":
    """Rebuild a :class:`Trace` from its packed buffers (pickle entry point)."""
    trace = Trace.__new__(Trace)
    kind_column = array(KIND_TYPECODE)
    kind_column.frombytes(kinds)
    address_column = array(WORD_TYPECODE)
    address_column.frombytes(addresses)
    dep_column = array(WORD_TYPECODE)
    dep_column.frombytes(deps)
    trace.kinds = kind_column
    trace.addresses = address_column
    trace.deps = dep_column
    trace.name = name
    trace._hot = None
    return trace


@dataclass
class Trace:
    """A flat instruction trace.

    Attributes
    ----------
    kinds:
        One entry per instruction, an :class:`InstrKind` value
        (``array('b')``; list/tuple inputs are packed on construction).
    addresses:
        Byte address per instruction, 0 for compute instructions
        (``array('q')``).
    deps:
        For loads, the instruction index of the earlier load whose data this
        load's address depends on, or -1 when the address is independent
        (``array('q')``).
    name:
        Human-readable benchmark name.
    """

    kinds: array = field(default_factory=lambda: array(KIND_TYPECODE))
    addresses: array = field(default_factory=lambda: array(WORD_TYPECODE))
    deps: array = field(default_factory=lambda: array(WORD_TYPECODE))
    name: str = "anonymous"

    def __post_init__(self) -> None:
        self.kinds = _as_kind_array(self.kinds)
        self.addresses = _as_word_array(self.addresses)
        self.deps = _as_word_array(self.deps)
        if not (len(self.kinds) == len(self.addresses) == len(self.deps)):
            raise TraceError("trace arrays must have identical lengths")
        self._hot: tuple[bytes, list[int], list[int]] | None = None

    def __len__(self) -> int:
        return len(self.kinds)

    def __reduce__(self):
        # Pickle through the packed wire form: three buffer copies instead of
        # one object per instruction (the dominant cost of shipping tasks to
        # sweep workers before traces were packed).
        return (
            _trace_from_packed,
            (self.name, self.kinds.tobytes(), self.addresses.tobytes(), self.deps.tobytes()),
        )

    def hot(self) -> tuple[bytes, list[int], list[int]]:
        """Unboxed (kinds, addresses, deps) columns for the simulation kernel.

        Indexing an ``array`` re-boxes the value on every access, which is
        measurable in the per-instruction loop; the kernel instead reads a
        ``bytes`` view of the kinds and plain-list views of the addresses and
        dependencies, built once per trace per process and cached (traces are
        read-only once built).  Everything else — storage, pickling, the
        public columns — stays packed.
        """
        hot = self._hot
        if hot is None:
            hot = (self.kinds.tobytes(), self.addresses.tolist(), self.deps.tolist())
            self._hot = hot
        return hot

    def packed(self) -> PackedTrace:
        """Return the frozen wire form of this trace."""
        return PackedTrace(
            name=self.name,
            kinds=self.kinds.tobytes(),
            addresses=self.addresses.tobytes(),
            deps=self.deps.tobytes(),
        )

    @staticmethod
    def from_packed(packed: PackedTrace) -> "Trace":
        """Rebuild a trace from :meth:`packed` output."""
        return packed.unpack()

    @property
    def num_instructions(self) -> int:
        return len(self.kinds)

    @property
    def num_loads(self) -> int:
        return self.kinds.count(InstrKind.LOAD)

    @property
    def num_stores(self) -> int:
        return self.kinds.count(InstrKind.STORE)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TraceError` on violation."""
        for index, (kind, dep) in enumerate(zip(self.kinds, self.deps)):
            if kind not in (InstrKind.COMPUTE, InstrKind.LOAD, InstrKind.STORE):
                raise TraceError(f"instruction {index} has unknown kind {kind}")
            if dep >= index:
                raise TraceError(f"instruction {index} depends on a later instruction {dep}")
            if dep >= 0 and self.kinds[dep] != InstrKind.LOAD:
                raise TraceError(f"instruction {index} depends on a non-load instruction {dep}")
            if kind != InstrKind.LOAD and dep != -1:
                raise TraceError(f"non-load instruction {index} cannot carry a dependency")

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace covering instructions ``[start, stop)``.

        Load dependencies that point before ``start`` are dropped (turned into
        independent loads), mirroring what a checkpoint boundary does.
        """
        if not (0 <= start <= stop <= len(self)):
            raise TraceError(f"invalid slice [{start}, {stop}) of trace with {len(self)} instructions")
        deps = array(WORD_TYPECODE)
        for index in range(start, stop):
            dep = self.deps[index]
            deps.append(dep - start if dep >= start else -1)
        return Trace(
            kinds=self.kinds[start:stop],
            addresses=self.addresses[start:stop],
            deps=deps,
            name=self.name,
        )

    def repeated(self, times: int) -> "Trace":
        """Return the trace concatenated with itself ``times`` times.

        Used to restart a benchmark when it reaches the end of its
        instruction sample (as the paper does for multi-programmed runs).
        """
        if times <= 0:
            raise TraceError("repeat count must be positive")
        result = TraceBuilder(name=self.name)
        for _ in range(times):
            offset = len(result)
            for index in range(len(self)):
                dep = self.deps[index]
                result.kinds.append(self.kinds[index])
                result.addresses.append(self.addresses[index])
                result.deps.append(dep + offset if dep >= 0 else -1)
        return result.build()

    def load_addresses(self) -> list[int]:
        """Return the addresses of all loads, in program order."""
        return [
            address
            for kind, address in zip(self.kinds, self.addresses)
            if kind == InstrKind.LOAD
        ]

    def memory_intensity(self) -> float:
        """Fraction of instructions that are loads or stores."""
        if not self.kinds:
            return 0.0
        memory_ops = len(self.kinds) - self.kinds.count(InstrKind.COMPUTE)
        return memory_ops / len(self.kinds)


@lru_cache(maxsize=256)
def _compute_fillers(count: int) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
    """Cached (kinds, addresses, deps) filler tuples for compute blocks.

    Generators append millions of short compute runs; reusing immutable
    filler tuples avoids three throwaway allocations per block.
    """
    return (
        (InstrKind.COMPUTE,) * count,
        (0,) * count,
        (-1,) * count,
    )


class TraceBuilder:
    """Incremental construction of a :class:`Trace`.

    The builder appends straight into packed ``array`` columns, so building a
    trace never materialises per-instruction Python objects; generators that
    inline the appends (``repro.workloads.synthetic``) get the same
    ``append``/``extend`` protocol lists offered.
    """

    def __init__(self, name: str = "anonymous"):
        self.name = name
        self.kinds: array = array(KIND_TYPECODE)
        self.addresses: array = array(WORD_TYPECODE)
        self.deps: array = array(WORD_TYPECODE)

    def __len__(self) -> int:
        return len(self.kinds)

    def add_compute(self, count: int = 1) -> None:
        """Append ``count`` compute instructions."""
        if count < 0:
            raise TraceError("compute count cannot be negative")
        fillers = _compute_fillers(count)
        self.kinds.extend(fillers[0])
        self.addresses.extend(fillers[1])
        self.deps.extend(fillers[2])

    def add_load(self, address: int, depends_on: int | None = None) -> int:
        """Append a load and return its instruction index."""
        index = len(self.kinds)
        if depends_on is not None and not (0 <= depends_on < index):
            raise TraceError(f"load dependency {depends_on} out of range at index {index}")
        self.kinds.append(InstrKind.LOAD)
        self.addresses.append(address)
        self.deps.append(depends_on if depends_on is not None else -1)
        return index

    def add_store(self, address: int) -> int:
        """Append a store and return its instruction index."""
        index = len(self.kinds)
        self.kinds.append(InstrKind.STORE)
        self.addresses.append(address)
        self.deps.append(-1)
        return index

    def build(self, validate: bool = True) -> Trace:
        """Return the built trace, validating it unless ``validate`` is False.

        Generators whose output is valid by construction (the synthetic
        benchmark patterns) pass ``validate=False``: the check is a full
        O(n) pass per trace and shows up in experiment setup time.
        """
        trace = Trace(
            kinds=array(KIND_TYPECODE, self.kinds),
            addresses=array(WORD_TYPECODE, self.addresses),
            deps=array(WORD_TYPECODE, self.deps),
            name=self.name,
        )
        if validate:
            trace.validate()
        return trace
