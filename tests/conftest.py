"""Shared fixtures for the test suite.

The fixtures build deliberately tiny configurations and traces so individual
tests stay fast; integration tests that need realistic contention build their
own, slightly larger setups.
"""

from __future__ import annotations

import os

# The tier-1 suite must exercise the simulator, not replay pickles: without
# this guard the first `pytest tests/` run would populate the repo-level
# `.repro_cache` and every later run would serve integration-test sweeps from
# disk (mirrors the same default in benchmarks/conftest.py).  Cache tests
# opt back in explicitly with monkeypatch.
os.environ.setdefault("REPRO_CACHE", "0")

import pytest

from repro.config import CacheConfig, CMPConfig
from repro.cpu.events import CommitStall, IntervalStats, LoadRecord, StallCause, annotate_overlap
from repro.workloads.synthetic import BenchmarkSpec, generate_trace
from repro.workloads.trace import TraceBuilder

KILOBYTE = 1024


@pytest.fixture
def tiny_config() -> CMPConfig:
    """A 4-core CMP with a very small cache hierarchy (fast to simulate)."""
    return CMPConfig.default(4).scaled(llc_kilobytes=64)


@pytest.fixture
def two_core_config() -> CMPConfig:
    """A 2-core CMP with a small cache hierarchy."""
    return CMPConfig.default(2).scaled(llc_kilobytes=64)


@pytest.fixture
def llc_config() -> CacheConfig:
    """A small shared-LLC geometry used by cache and ATD tests."""
    return CacheConfig(size_bytes=64 * KILOBYTE, associativity=8, latency=16, mshrs=32, banks=4)


@pytest.fixture
def small_trace():
    """A short blocked-pattern trace touching a 16 KB working set."""
    spec = BenchmarkSpec(
        name="test_blocked",
        pattern="blocked",
        footprint_bytes=16 * KILOBYTE,
        compute_per_load=4,
        line_reuse=2,
    )
    return generate_trace(spec, 4_000, seed=7)


@pytest.fixture
def pointer_chase_trace():
    """A short pointer-chasing trace (every load depends on the previous one)."""
    spec = BenchmarkSpec(
        name="test_chase",
        pattern="pointer_chase",
        footprint_bytes=32 * KILOBYTE,
        compute_per_load=4,
    )
    return generate_trace(spec, 4_000, seed=11)


def build_interval(loads, stalls, *, core=0, index=0, start=0.0, end=1_000.0,
                   instructions=1_000, commit_cycles=None, sms_latency=None,
                   interference=0.0, llc_misses=None, **extra) -> IntervalStats:
    """Construct an IntervalStats for accounting unit tests from raw events."""
    annotate_overlap(loads, stalls)
    stall_sms = sum(s.cycles for s in stalls if s.cause == StallCause.SMS_LOAD)
    stall_pms = sum(s.cycles for s in stalls if s.cause == StallCause.PMS_LOAD)
    stall_ind = sum(s.cycles for s in stalls if s.cause == StallCause.INDEPENDENT)
    stall_other = sum(s.cycles for s in stalls if s.cause == StallCause.OTHER)
    total = end - start
    if commit_cycles is None:
        commit_cycles = max(0.0, total - stall_sms - stall_pms - stall_ind - stall_other)
    sms_loads = [load for load in loads if load.is_sms]
    latency_sum = sum(load.latency for load in sms_loads) if sms_latency is None else (
        sms_latency * len(sms_loads)
    )
    interval = IntervalStats(
        core=core,
        index=index,
        start_time=start,
        end_time=end,
        instructions=instructions,
        commit_cycles=commit_cycles,
        stall_sms=stall_sms,
        stall_pms=stall_pms,
        stall_independent=stall_ind,
        stall_other=stall_other,
        loads=loads,
        stalls=stalls,
        sms_loads=len(sms_loads),
        sms_latency_sum=latency_sum,
        interference_sum=interference * len(sms_loads),
        llc_accesses=len(sms_loads),
        llc_misses=len(sms_loads) if llc_misses is None else llc_misses,
    )
    for key, value in extra.items():
        setattr(interval, key, value)
    return interval


def make_load(address, issue, completion, *, is_sms=True, caused_stall=False,
              stall_start=0.0, stall_end=0.0, interference=0.0, llc_hit=False,
              interference_miss=None, instr_index=0) -> LoadRecord:
    """Shorthand LoadRecord constructor for accounting unit tests."""
    record = LoadRecord(
        instr_index=instr_index,
        address=address,
        issue_time=issue,
        completion_time=completion,
        is_sms=is_sms,
        latency=completion - issue,
        interference_cycles=interference,
        llc_hit=llc_hit,
        interference_miss=interference_miss,
    )
    if caused_stall:
        record.caused_stall = True
        record.stall_start = stall_start
        record.stall_end = stall_end
    return record


def make_stall(start, end, address, *, cause=StallCause.SMS_LOAD, is_sms=True) -> CommitStall:
    """Shorthand CommitStall constructor for accounting unit tests."""
    return CommitStall(start=start, end=end, cause=cause, load_address=address, load_is_sms=is_sms)


def simple_trace(num_loads: int = 20, compute_between: int = 3, line_bytes: int = 64,
                 stride_lines: int = 1, base: int = 0, dependent: bool = False):
    """Build a tiny synthetic trace directly with the TraceBuilder."""
    builder = TraceBuilder(name="unit")
    previous = None
    for index in range(num_loads):
        address = base + index * stride_lines * line_bytes
        previous = builder.add_load(address, depends_on=previous if dependent else None)
        builder.add_compute(compute_between)
    return builder.build()
