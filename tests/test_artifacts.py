"""Tests for the LRU-bounded scenario artifact store."""

import json
import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.service.artifacts import (
    DEFAULT_MAX_MEGABYTES,
    ArtifactStore,
    artifact_dir_from_env,
    artifact_limit_from_env,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts", max_bytes=4096)


class TestRoundTrip:
    def test_put_get(self, store):
        payload = {"tables": {"ipc_rms": {"2c-H": {"GDP": 0.25}}}}
        assert store.put("a" * 64, payload)
        assert store.get("a" * 64) == payload
        assert store.stats.hits == 1 and store.stats.stores == 1

    def test_miss_on_absent_digest(self, store):
        assert store.get("b" * 64) is None
        assert store.stats.misses == 1

    def test_floats_round_trip_exactly(self, store):
        payload = {"value": 0.1 + 0.2, "nested": [1.0 / 3.0]}
        store.put("c" * 64, payload)
        assert store.get("c" * 64) == payload

    def test_corrupted_artifact_is_a_miss_and_deleted(self, store):
        store.put("d" * 64, {"ok": True})
        path = store.entry_path("d" * 64)
        path.write_text("{not json")
        assert store.get("d" * 64) is None
        assert not path.exists()
        assert store.stats.errors == 1

    def test_non_object_artifact_rejected(self, store):
        path = store.entry_path("e" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps([1, 2, 3]))
        assert store.get("e" * 64) is None


class TestLRUBound:
    def _filler(self, index: int) -> dict:
        return {"index": index, "padding": "x" * 900}

    def test_eviction_drops_least_recently_used(self, tmp_path):
        store = ArtifactStore(tmp_path / "lru", max_bytes=2500)
        for index in range(3):
            digest = f"{index:064d}"
            store.put(digest, self._filler(index))
            # mtime granularity: make the LRU order unambiguous.
            past = time.time() - (10 - index)
            os.utime(store.entry_path(digest), (past, past))
        store.put("f" * 64, self._filler(99))
        assert store.total_bytes() <= 2500
        # Oldest entries were evicted, the newest survives.
        assert store.get("f" * 64) is not None
        assert store.get(f"{0:064d}") is None
        assert store.stats.evictions >= 1

    def test_get_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path / "touch", max_bytes=2500)
        for index in range(2):
            digest = f"{index:064d}"
            store.put(digest, self._filler(index))
            past = time.time() - (10 - index)
            os.utime(store.entry_path(digest), (past, past))
        # Touch the older entry: the *other* one should now be evicted first.
        assert store.get(f"{0:064d}") is not None
        store.put("f" * 64, self._filler(99))
        assert store.get(f"{0:064d}") is not None
        assert store.get(f"{1:064d}") is None

    def test_fresh_write_never_self_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path / "self", max_bytes=100)
        digest = "a" * 64
        store.put(digest, self._filler(0))  # bigger than the whole bound
        assert store.get(digest) is not None

    def test_clear(self, store):
        store.put("a" * 64, {"x": 1})
        store.put("b" * 64, {"x": 2})
        assert store.clear() == 2
        assert store.entries() == []

    def test_exact_budget_fit_evicts_nothing(self, tmp_path):
        """Entries summing to exactly the bound must all survive: eviction
        only triggers when the total *exceeds* the budget."""
        sizing = ArtifactStore(tmp_path / "sizing", max_bytes=1 << 20)
        for index in range(3):
            sizing.put(f"{index:064d}", self._filler(index))
        exact_total = sizing.total_bytes()
        store = ArtifactStore(tmp_path / "exact", max_bytes=exact_total)
        for index in range(3):
            store.put(f"{index:064d}", self._filler(index))
        assert store.total_bytes() == exact_total == store.max_bytes
        assert store.stats.evictions == 0
        for index in range(3):
            assert store.get(f"{index:064d}") is not None

    def test_oversized_artifact_evicts_everything_else_but_survives(self, tmp_path):
        store = ArtifactStore(tmp_path / "oversized", max_bytes=1200)
        store.put("a" * 64, self._filler(0))
        assert store.get("a" * 64) is not None
        huge = {"padding": "y" * 5000}
        assert store.put("b" * 64, huge)
        # The bound cannot hold both; the oversized newcomer is kept (never
        # self-evicted) and the older entry paid for it.
        assert store.get("b" * 64) == huge
        assert store.get("a" * 64) is None
        assert store.stats.evictions == 1


class TestCorruptStoreRecovery:
    """The store's on-disk index is the directory itself: every survivable
    corruption — torn temp files, hand-made subdirectories, unreadable
    artifacts — must degrade to a miss (and recompute), never an exception."""

    def test_stray_temp_files_are_ignored_by_the_index(self, store):
        store.put("a" * 64, {"x": 1})
        (store.directory / "leftover.tmp").write_text("torn write survivor")
        assert [path.name for path in store.entries()] == ["a" * 64 + ".json"]
        assert store.total_bytes() > 0
        assert store.get("a" * 64) == {"x": 1}

    def test_directory_masquerading_as_artifact_is_a_miss(self, store):
        store.put("a" * 64, {"x": 1})
        (store.directory / ("d" * 64 + ".json")).mkdir()
        assert store.get("d" * 64) is None
        assert store.stats.errors >= 1
        # The healthy neighbour is unaffected.
        assert store.get("a" * 64) == {"x": 1}

    def test_put_over_a_directory_degrades_to_no_artifact(self, store):
        (store.directory / ("e" * 64 + ".json")).mkdir(parents=True)
        assert store.put("e" * 64, {"x": 2}) is False
        assert store.stats.errors >= 1

    def test_eviction_survives_concurrent_deletion(self, tmp_path):
        """An entry vanishing between listing and unlink is skipped."""
        store = ArtifactStore(tmp_path / "race", max_bytes=1500)
        store.put("a" * 64, {"padding": "x" * 900})
        store.entry_path("a" * 64).unlink()  # someone else cleaned up
        assert store.put("b" * 64, {"padding": "y" * 900})
        assert store.get("b" * 64) is not None

    def test_every_artifact_corrupt_recovers_to_empty(self, store):
        for index in range(3):
            store.put(f"{index:064d}", {"index": index})
            store.entry_path(f"{index:064d}").write_text("{torn")
        for index in range(3):
            assert store.get(f"{index:064d}") is None
        assert store.entries() == []
        # The store still works after a full wipe.
        assert store.put("a" * 64, {"x": 1})
        assert store.get("a" * 64) == {"x": 1}


class TestEnvironmentKnobs:
    def test_default_directory(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        assert artifact_dir_from_env() == tmp_path / ".repro_artifacts"

    def test_directory_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "elsewhere"))
        assert artifact_dir_from_env() == tmp_path / "elsewhere"

    def test_default_limit(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_MAX_MB", raising=False)
        assert artifact_limit_from_env() == DEFAULT_MAX_MEGABYTES * 1024 * 1024

    def test_limit_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_MB", "3")
        assert artifact_limit_from_env() == 3 * 1024 * 1024

    @pytest.mark.parametrize("value", ["lots", "0", "-5", "2.5"])
    def test_invalid_limit_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_MB", value)
        with pytest.raises(ConfigurationError, match="REPRO_ARTIFACT_MAX_MB"):
            artifact_limit_from_env()

    def test_store_rejects_non_positive_bound(self, tmp_path):
        with pytest.raises(ConfigurationError, match="positive"):
            ArtifactStore(tmp_path, max_bytes=0)
